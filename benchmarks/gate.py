"""Perf-regression gate: compare a candidate bench result to a baseline.

CI's bench-gate job re-measures the EXP-SPEEDUP workload and then runs::

    python -m benchmarks.gate \
        --baseline BENCH_complexity.json \
        --candidate /tmp/BENCH_complexity.json \
        --section experiment_workload \
        --metric index_speedup \
        --tolerance 0.25

Exit codes follow the repo's CLI contract: ``0`` the candidate is
within tolerance of the baseline, ``1`` it regressed, ``2`` the inputs
are unusable (missing file, unknown section/metric, malformed JSON).

Baselines may be either a merged ``BENCH_<name>.json`` document
(``{section: {metric: value}}``) or the append-only
``BENCH_history.jsonl`` log — for history files the *latest* entry
carrying the requested section/metric wins, so the gate always compares
against the most recent recorded measurement.

Metrics are higher-is-better by default (speedups); pass
``--direction lower`` for timings where smaller is faster.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

__all__ = ["load_metric", "evaluate", "main"]


class GateError(Exception):
    """Unusable gate input (missing file/section/metric, bad JSON)."""


def load_metric(path: str, section: str, metric: str) -> float:
    """Read ``section.metric`` from a bench document or history log.

    Raises:
        GateError: When the file is unreadable, not valid JSON, or does
            not contain the requested section/metric.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
    except OSError as error:
        raise GateError(f"cannot read {path!r}: {error}") from error
    if path.endswith(".jsonl"):
        value: float | None = None
        for line_number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError as error:
                raise GateError(f"{path}:{line_number}: not valid JSON ({error})") from error
            if not isinstance(entry, dict) or entry.get("section") != section:
                continue
            values = entry.get("values")
            if isinstance(values, dict) and metric in values:
                value = values[metric]  # latest entry wins
        if value is None:
            raise GateError(
                f"{path}: no history entry carries {section}.{metric}"
            )
    else:
        try:
            document = json.loads(text)
        except ValueError as error:
            raise GateError(f"{path}: not valid JSON ({error})") from error
        try:
            value = document[section][metric]
        except (KeyError, TypeError):
            raise GateError(f"{path}: missing {section}.{metric}") from None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise GateError(f"{path}: {section}.{metric} is not a number: {value!r}")
    return float(value)


def evaluate(
    baseline: float, candidate: float, tolerance: float, direction: str
) -> tuple[bool, str]:
    """Judge ``candidate`` against ``baseline``; returns ``(ok, verdict)``.

    ``direction="higher"`` accepts ``candidate >= baseline * (1 - tol)``;
    ``direction="lower"`` accepts ``candidate <= baseline * (1 + tol)``.
    """
    if direction == "higher":
        floor = baseline * (1.0 - tolerance)
        ok = candidate >= floor
        bound = f"floor {floor:.4g}"
    else:
        ceiling = baseline * (1.0 + tolerance)
        ok = candidate <= ceiling
        bound = f"ceiling {ceiling:.4g}"
    if baseline != 0:
        delta = (candidate - baseline) / baseline * 100.0
        change = f"{delta:+.1f}%"
    else:
        change = "n/a"
    verdict = (
        f"candidate {candidate:.4g} vs baseline {baseline:.4g} "
        f"({change}, {bound}, tolerance {tolerance:.0%})"
    )
    return ok, verdict


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchmarks.gate",
        description="fail (exit 1) when a bench metric regressed past tolerance",
    )
    parser.add_argument("--baseline", required=True, help="baseline .json or .jsonl")
    parser.add_argument("--candidate", required=True, help="candidate .json or .jsonl")
    parser.add_argument("--section", required=True, help="bench section name")
    parser.add_argument("--metric", required=True, help="metric key inside the section")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative slack (default 0.25 = ±25%%)",
    )
    parser.add_argument(
        "--direction",
        choices=["higher", "lower"],
        default="higher",
        help="whether larger values are better (default: higher)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code (0 pass / 1 fail / 2 error)."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exit_request:
        return int(exit_request.code or 0)
    if args.tolerance < 0:
        print("bench-gate error: --tolerance must be >= 0", file=sys.stderr)
        return 2
    try:
        baseline = load_metric(args.baseline, args.section, args.metric)
        candidate = load_metric(args.candidate, args.section, args.metric)
    except GateError as error:
        print(f"bench-gate error: {error}", file=sys.stderr)
        return 2
    ok, verdict = evaluate(baseline, candidate, args.tolerance, args.direction)
    label = f"{args.section}.{args.metric}"
    if ok:
        print(f"bench-gate PASS: {label} {verdict}")
        return 0
    print(f"bench-gate FAIL: {label} {verdict}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
