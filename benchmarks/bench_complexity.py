"""EXP-CPLX — the Section 3 complexity claim: O(m) ALP/AMP vs O(m²) backfill.

The paper argues ALP and AMP are linear in the number of available
slots ``m`` because the scan only moves forward, while backfilling is
quadratic.  We time single-window searches over generated slot lists of
growing ``m`` with a *hard* request (many nodes, high performance
demand) so the scan cannot stop early, and assert the growth exponents:
doubling ``m`` should roughly double ALP/AMP's time but roughly
quadruple backfill's.

Each (algorithm, m) pair is its own pytest-benchmark entry, so the
``--benchmark-only`` table doubles as the scaling report; the exponent
assertion runs in a final summary test using the same measurements.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.baselines import backfill_find_window
from repro.core import ResourceRequest
from repro.core import alp, amp
from repro.sim import SlotGenerator, SlotGeneratorConfig, table

from benchmarks.conftest import report

SIZES = [250, 500, 1000, 2000]

#: A request no window can satisfy: the forward scan must consume the
#: entire list, exposing the true per-slot cost of each algorithm.
HARD_REQUEST = ResourceRequest(node_count=64, volume=100.0, min_performance=1.0, max_price=10.0)

FINDERS = {
    "ALP": lambda slots, request: alp.find_window(slots, request),
    "AMP": lambda slots, request: amp.find_window(slots, request),
    "backfill": backfill_find_window,
}


def _slots_of_size(size: int):
    config = SlotGeneratorConfig(slot_count_range=(size, size))
    return SlotGenerator(config, seed=11).generate()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", list(FINDERS))
def test_window_search_scaling(benchmark, algorithm, size):
    slots = _slots_of_size(size)
    finder = FINDERS[algorithm]
    benchmark.group = f"window-search m={size}"
    result = benchmark(lambda: finder(slots, HARD_REQUEST))
    assert result is None  # the hard request must exhaust the list


def _measure(finder, slots, *, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        finder(slots, HARD_REQUEST)
        best = min(best, time.perf_counter() - started)
    return best


def test_growth_exponents(benchmark, capsys):
    small, large = 400, 3200  # 8x growth separates O(m) from O(m²) cleanly
    slots_small = _slots_of_size(small)
    slots_large = _slots_of_size(large)
    benchmark.pedantic(
        lambda: FINDERS["ALP"](slots_large, HARD_REQUEST), rounds=1, iterations=1
    )

    rows = []
    exponents = {}
    for name, finder in FINDERS.items():
        t_small = _measure(finder, slots_small)
        t_large = _measure(finder, slots_large)
        exponent = math.log(t_large / t_small) / math.log(large / small)
        exponents[name] = exponent
        rows.append([name, f"{t_small * 1e3:.2f}", f"{t_large * 1e3:.2f}", f"{exponent:.2f}"])
    report(capsys, "=" * 72)
    report(capsys, "EXP-CPLX — empirical growth exponents (paper: 1 vs 2)")
    report(
        capsys,
        table(rows, header=["algorithm", f"m={small} (ms)", f"m={large} (ms)", "exponent"]),
    )

    assert exponents["ALP"] < 1.5, f"ALP should scale ~linearly, got m^{exponents['ALP']:.2f}"
    assert exponents["AMP"] < 1.6, f"AMP should scale ~linearly, got m^{exponents['AMP']:.2f}"
    assert exponents["backfill"] > 1.5, (
        f"backfill should scale ~quadratically, got m^{exponents['backfill']:.2f}"
    )
    assert exponents["backfill"] > exponents["ALP"] + 0.4
