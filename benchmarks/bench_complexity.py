"""EXP-CPLX — the Section 3 complexity claim: O(m) ALP/AMP vs O(m²) backfill.

The paper argues ALP and AMP are linear in the number of available
slots ``m`` because the scan only moves forward, while backfilling is
quadratic.  We time single-window searches over generated slot lists of
growing ``m`` with a *hard* request (many nodes, high performance
demand) so the scan cannot stop early, and assert the growth exponents:
doubling ``m`` should roughly double ALP/AMP's time but roughly
quadruple backfill's.

Each (algorithm, m) pair is its own pytest-benchmark entry, so the
``--benchmark-only`` table doubles as the scaling report; the exponent
assertion runs in a final summary test using the same measurements.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict

import pytest

from repro.baselines import backfill_find_window
from repro.core import ResourceRequest
from repro.core import alp, amp
from repro.core import search as search_module
from repro.core.optimize import DPMemo
from repro.sim import ExperimentConfig, ParallelRunner, SlotGenerator, SlotGeneratorConfig, table

from benchmarks.conftest import BENCH_SEED, BENCH_WORKERS, record_baseline, report

SIZES = [250, 500, 1000, 2000]

#: Iterations of the speedup workload — the paper's 25 000-iteration
#: series, scaled down to a CI-friendly slice with identical
#: per-iteration shape (same generators, both pipelines, both phases).
SPEEDUP_ITERATIONS = int(os.environ.get("REPRO_BENCH_SPEEDUP_ITERATIONS", "32"))

#: Timing repeats per configuration; the *minimum* wall time is
#: recorded.  A single-shot measurement is a lottery against background
#: machine load (observed swings of 2× between identical runs); the
#: min-of-k estimator damps that noise symmetrically for the naive and
#: indexed paths, so the recorded speedup ratio is stable enough for
#: the CI gate's tolerance.
SPEEDUP_REPEATS = int(os.environ.get("REPRO_BENCH_SPEEDUP_REPEATS", "3"))

#: Slot list size of the speedup workload: 2.5× the paper's [120, 150]
#: so that, like the full 25 000-iteration sweeps the engine exists for,
#: the run is dominated by phase-1 search (the naive path's rescans grow
#: ~quadratically with m: more slots ⇒ more windows found ⇒ more full
#: rescans), not by generation and the phase-2 DP.
SPEEDUP_SLOT_RANGE = (300, 375)

#: A request no window can satisfy: the forward scan must consume the
#: entire list, exposing the true per-slot cost of each algorithm.
HARD_REQUEST = ResourceRequest(node_count=64, volume=100.0, min_performance=1.0, max_price=10.0)

FINDERS = {
    "ALP": lambda slots, request: alp.find_window(slots, request),
    "AMP": lambda slots, request: amp.find_window(slots, request),
    "backfill": backfill_find_window,
}


def _slots_of_size(size: int):
    config = SlotGeneratorConfig(slot_count_range=(size, size))
    return SlotGenerator(config, seed=11).generate()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", list(FINDERS))
def test_window_search_scaling(benchmark, algorithm, size):
    slots = _slots_of_size(size)
    finder = FINDERS[algorithm]
    benchmark.group = f"window-search m={size}"
    result = benchmark(lambda: finder(slots, HARD_REQUEST))
    assert result is None  # the hard request must exhaust the list


def _measure(finder, slots, *, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        finder(slots, HARD_REQUEST)
        best = min(best, time.perf_counter() - started)
    return best


def test_growth_exponents(benchmark, capsys):
    small, large = 400, 3200  # 8x growth separates O(m) from O(m²) cleanly
    slots_small = _slots_of_size(small)
    slots_large = _slots_of_size(large)
    benchmark.pedantic(
        lambda: FINDERS["ALP"](slots_large, HARD_REQUEST), rounds=1, iterations=1
    )

    rows = []
    exponents = {}
    for name, finder in FINDERS.items():
        t_small = _measure(finder, slots_small)
        t_large = _measure(finder, slots_large)
        exponent = math.log(t_large / t_small) / math.log(large / small)
        exponents[name] = exponent
        rows.append([name, f"{t_small * 1e3:.2f}", f"{t_large * 1e3:.2f}", f"{exponent:.2f}"])
    report(capsys, "=" * 72)
    report(capsys, "EXP-CPLX — empirical growth exponents (paper: 1 vs 2)")
    report(
        capsys,
        table(rows, header=["algorithm", f"m={small} (ms)", f"m={large} (ms)", "exponent"]),
    )

    assert exponents["ALP"] < 1.5, f"ALP should scale ~linearly, got m^{exponents['ALP']:.2f}"
    assert exponents["AMP"] < 1.6, f"AMP should scale ~linearly, got m^{exponents['AMP']:.2f}"
    assert exponents["backfill"] > 1.5, (
        f"backfill should scale ~quadratically, got m^{exponents['backfill']:.2f}"
    )
    assert exponents["backfill"] > exponents["ALP"] + 0.4

    record_baseline(
        "complexity",
        "growth_exponents",
        {
            "sizes": {"small": small, "large": large},
            "exponents": {name: round(value, 3) for name, value in exponents.items()},
        },
    )


# --------------------------------------------------------------------- #
# EXP-SPEEDUP — indexed search + parallel engine vs the seed serial path #
# --------------------------------------------------------------------- #


def _timed_series(*, workers: int, use_index: bool, dp_memo=None):
    """Run the speedup workload once; returns (elapsed seconds, result).

    ``use_index=False`` flips :data:`repro.core.search.DEFAULT_USE_INDEX`
    for the duration — the escape hatch that restores the seed's naive
    O(m)-rescan behaviour.  Only the in-process (workers=1) run may be
    flipped: worker processes import the module fresh and would not see
    the override.  ``dp_memo`` is the runner's explicit cross-run DP
    memo (the global default memo is gone; sharing is opt-in).
    """
    assert use_index or workers == 1, "naive baseline must stay in-process"
    config = ExperimentConfig(
        iterations=SPEEDUP_ITERATIONS,
        seed=BENCH_SEED,
        slot_config=SlotGeneratorConfig(slot_count_range=SPEEDUP_SLOT_RANGE),
    )
    previous = search_module.DEFAULT_USE_INDEX
    search_module.DEFAULT_USE_INDEX = use_index
    try:
        started = time.perf_counter()
        result = ParallelRunner(config, workers=workers, dp_memo=dp_memo).run()
        elapsed = time.perf_counter() - started
    finally:
        search_module.DEFAULT_USE_INDEX = previous
    return elapsed, result


def _best_series(*, workers: int, use_index: bool, dp_memo=None):
    """Best-of-:data:`SPEEDUP_REPEATS` wall time for one configuration.

    Every repeat must produce the byte-identical series (the engine is
    deterministic for a fixed seed), so repeats only tighten the timing
    estimate — they cannot mask a result change.
    """
    best = math.inf
    result = None
    for _ in range(SPEEDUP_REPEATS):
        elapsed, current = _timed_series(
            workers=workers, use_index=use_index, dp_memo=dp_memo
        )
        if result is None:
            result = current
        else:
            assert _series_document(current) == _series_document(result)
        best = min(best, elapsed)
    return best, result


def _series_document(result) -> str:
    """Everything the series determined: samples and all drop/total
    counters.  At this workload's scale most iterations are dropped by
    the phase-2 feasibility filter, so the counters — which would
    diverge if the indexed search changed any job's coverage — carry the
    equivalence signal; the per-window proof is the differential suite
    in tests/test_reference_oracles.py."""
    return json.dumps(
        {
            "samples": [asdict(sample) for sample in result.samples],
            "dropped_uncovered": result.dropped_uncovered,
            "dropped_infeasible": result.dropped_infeasible,
            "total_slots_processed": result.total_slots_processed,
            "total_jobs_attempted": result.total_jobs_attempted,
        },
        sort_keys=True,
    )


@pytest.mark.bench
def test_experiment_workload_speedup(capsys):
    """The ISSUE-2 acceptance workload: a 25k-iteration-style experiment
    series must run ≥ 3× faster with the indexed search plus the
    parallel engine than on the seed's serial naive-rescan path — while
    producing byte-identical samples.  Each configuration is timed
    best-of-:data:`SPEEDUP_REPEATS` (see the constant's rationale)."""
    # One explicit memo shared across the serial timed runs — the same
    # cross-run reuse the retired process-global memo used to provide,
    # now visible and opt-in (worker runs build their own span-local
    # memos; the parent process does no DP there).
    serial_memo = DPMemo()
    naive_elapsed, naive_result = _best_series(
        workers=1, use_index=False, dp_memo=serial_memo
    )
    memo_before = serial_memo.stats()
    indexed_elapsed, indexed_result = _best_series(
        workers=1, use_index=True, dp_memo=serial_memo
    )
    memo_after = serial_memo.stats()
    # Cross-cycle DP memo traffic of the indexed repeats.
    dp_memo_hits = memo_after["hits"] - memo_before["hits"]
    dp_memo_misses = memo_after["misses"] - memo_before["misses"]
    parallel_elapsed, parallel_result = _best_series(
        workers=BENCH_WORKERS, use_index=True
    )

    # The optimisations must not change a single sample.
    reference = _series_document(naive_result)
    assert _series_document(indexed_result) == reference
    assert _series_document(parallel_result) == reference

    index_speedup = naive_elapsed / indexed_elapsed
    combined_speedup = naive_elapsed / parallel_elapsed
    rows = [
        ["seed serial (naive rescan)", f"{naive_elapsed:.2f}", "1.00"],
        ["indexed, 1 worker", f"{indexed_elapsed:.2f}", f"{index_speedup:.2f}"],
        [
            f"indexed, {BENCH_WORKERS} workers",
            f"{parallel_elapsed:.2f}",
            f"{combined_speedup:.2f}",
        ],
    ]
    report(capsys, "=" * 72)
    report(
        capsys,
        f"EXP-SPEEDUP — {SPEEDUP_ITERATIONS} attempted iterations "
        f"({naive_result.counted} counted), both pipelines per iteration, "
        f"best of {SPEEDUP_REPEATS}",
    )
    report(capsys, table(rows, header=["configuration", "seconds", "speedup"]))
    report(
        capsys,
        f"DP memo (indexed serial repeats): {dp_memo_hits} hits / "
        f"{dp_memo_misses} misses",
    )

    record_baseline(
        "complexity",
        "experiment_workload",
        {
            "iterations": SPEEDUP_ITERATIONS,
            "slot_count_range": list(SPEEDUP_SLOT_RANGE),
            "workers": BENCH_WORKERS,
            "repeats": SPEEDUP_REPEATS,
            "seed_serial_seconds": round(naive_elapsed, 3),
            "indexed_serial_seconds": round(indexed_elapsed, 3),
            "indexed_parallel_seconds": round(parallel_elapsed, 3),
            "index_speedup": round(index_speedup, 2),
            "combined_speedup": round(combined_speedup, 2),
            "dp_memo_hits": dp_memo_hits,
            "dp_memo_misses": dp_memo_misses,
        },
    )

    assert combined_speedup >= 3.0, (
        f"indexed + {BENCH_WORKERS}-worker path must be >= 3x the seed serial "
        f"path, got {combined_speedup:.2f}x"
    )
