"""EXP-EX — the Section 4 worked example (Figs. 2 and 3).

Times the full AMP alternative search on the reconstructed six-node
environment and regenerates the Fig. 3 chart.  Asserts every fact the
paper's text states about the example:

* W1 = cpu1 + cpu4 over [150, 230), total unit cost 10;
* W2 = cpu1 + cpu2 + cpu4, total unit cost 14;
* W3 spans [450, 500);
* ALP never touches cpu6 (price 12 > its per-slot caps), AMP does.
"""

from __future__ import annotations

from repro.core import SlotSearchAlgorithm, find_alternatives
from repro.core import amp
from repro.examples_data import HORIZON, build_example
from repro.sim.gantt import GanttChart

from benchmarks.conftest import report


def _amp_search():
    example = build_example()
    return find_alternatives(example.slots, example.batch, SlotSearchAlgorithm.AMP)


def test_paper_example_regeneration(benchmark, capsys):
    result = benchmark(_amp_search)

    example = build_example()
    # First-pass windows, as in Fig. 2 (b).
    slots = example.slots.copy()
    windows = []
    for job in example.batch:
        window = amp.find_window(slots, job.request)
        assert window is not None
        for resource, start, end in window.occupied_spans():
            slots.subtract(resource, start, end)
        windows.append(window)
    w1, w2, w3 = windows

    assert {r.name for r in w1.resources()} == {"cpu1", "cpu4"}
    assert (w1.start, w1.end) == (150.0, 230.0)
    assert abs(w1.unit_cost - 10.0) < 1e-9
    assert {r.name for r in w2.resources()} == {"cpu1", "cpu2", "cpu4"}
    assert abs(w2.unit_cost - 14.0) < 1e-9
    assert (w3.start, w3.end) == (450.0, 500.0)

    amp_nodes = {
        resource.name
        for job_windows in result.alternatives.values()
        for window in job_windows
        for resource in window.resources()
    }
    alp_result = find_alternatives(
        example.slots, example.batch, SlotSearchAlgorithm.ALP
    )
    alp_nodes = {
        resource.name
        for job_windows in alp_result.alternatives.values()
        for window in job_windows
        for resource in window.resources()
    }
    assert "cpu6" in amp_nodes
    assert "cpu6" not in alp_nodes

    chart = GanttChart(HORIZON)
    chart.paint_slots(example.slots)
    chart.paint_windows(
        [
            (f"{job.name}#{index + 1}", window)
            for job, job_windows in result.alternatives.items()
            for index, window in enumerate(job_windows)
        ]
    )
    report(capsys, "=" * 72)
    report(capsys, "EXP-EX / Fig. 3 — all AMP alternatives of the worked example")
    report(capsys, chart.render())
    report(
        capsys,
        f"AMP: {result.total_alternatives} alternatives, "
        f"ALP: {alp_result.total_alternatives}; cpu6 used by AMP only — as in §4.",
    )
