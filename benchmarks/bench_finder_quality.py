"""EXP-FINDERS — window quality across every single-window finder.

Not a paper figure: a cross-cutting ablation that places all finders in
this repository on the (start time, cost) plane for the same Section 5
workload and request stream:

* ALP (per-slot cap), AMP (budget) — the paper's algorithms,
* first-fit (price-blind earliest) — the non-economic control,
* cheapest-window — the cost-first O(m²) control,
* backfill — the classic rectangular-window comparator,
* utility (earliness+cost) — the ref. [7] style user-utility finder.

Shape asserts encode the design space: first-fit is the earliest or
tied-earliest everywhere; the cheapest-window finder pays the least; AMP
starts no later than ALP; backfill (etalon durations, no speedup) never
produces shorter executions than first-fit.
"""

from __future__ import annotations

import math

from repro.baselines import (
    backfill_find_window,
    cheapest_find_window,
    earliness_utility,
    firstfit_find_window,
    utility_find_window,
)
from repro.core import ResourceRequest
from repro.core import alp, amp
from repro.sim import JobGenerator, SlotGenerator, table

from benchmarks.conftest import BENCH_SEED, report

SAMPLES = 60

FINDERS = {
    "ALP": lambda slots, request: alp.find_window(slots, request),
    "AMP": lambda slots, request: amp.find_window(slots, request),
    "first-fit": firstfit_find_window,
    "cheapest": cheapest_find_window,
    "backfill": backfill_find_window,
    "utility": lambda slots, request: utility_find_window(
        slots, request, earliness_utility(start_weight=1.0, cost_weight=0.2)
    ),
}


def _collect():
    slot_generator = SlotGenerator(seed=BENCH_SEED + 7)
    job_generator = JobGenerator(rng=slot_generator.rng)
    stats = {
        name: {"found": 0, "start": 0.0, "cost": 0.0, "length": 0.0}
        for name in FINDERS
    }
    compared = 0
    for _ in range(SAMPLES):
        slots = slot_generator.generate()
        request = job_generator.generate_request()
        windows = {name: finder(slots, request) for name, finder in FINDERS.items()}
        if any(window is None for window in windows.values()):
            continue  # compare only mutually feasible requests
        compared += 1
        for name, window in windows.items():
            bucket = stats[name]
            bucket["found"] += 1
            bucket["start"] += window.start
            bucket["cost"] += window.cost
            bucket["length"] += window.length
    return stats, compared


def test_finder_quality(benchmark, capsys):
    stats, compared = benchmark.pedantic(_collect, rounds=1, iterations=1)
    assert compared > 10, "too few mutually feasible requests"

    rows = []
    means = {}
    for name, bucket in stats.items():
        count = max(1, bucket["found"])
        means[name] = {
            "start": bucket["start"] / count,
            "cost": bucket["cost"] / count,
            "length": bucket["length"] / count,
        }
        rows.append(
            [
                name,
                f"{means[name]['start']:.1f}",
                f"{means[name]['length']:.1f}",
                f"{means[name]['cost']:.1f}",
            ]
        )
    report(capsys, "=" * 72)
    report(
        capsys,
        f"EXP-FINDERS — mean window quality over {compared} mutually feasible requests",
    )
    report(capsys, table(rows, header=["finder", "start", "exec time", "cost"]))

    # First-fit is unconstrained-earliest: nobody starts earlier.
    for name in ("ALP", "AMP", "cheapest", "utility", "backfill"):
        assert means["first-fit"]["start"] <= means[name]["start"] + 1e-6
    # The cheapest-window finder pays the least on average.
    for name in ("ALP", "AMP", "first-fit", "utility"):
        assert means["cheapest"]["cost"] <= means[name]["cost"] + 1e-6
    # AMP's budget is a relaxation of ALP's cap: never later on average.
    assert means["AMP"]["start"] <= means["ALP"]["start"] + 1e-6
    # Backfill blocks etalon durations: executions at least as long as
    # first-fit's heterogeneity-aware windows.
    assert means["backfill"]["length"] >= means["first-fit"]["length"] - 1e-6
