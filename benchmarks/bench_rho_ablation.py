"""EXP-RHO — ablation of the Section 6 budget factor ``S = ρ·C·t·N``.

The paper proposes shrinking AMP's budget by ``ρ < 1`` "to reduce the
job batch execution cost" at the expense of schedule flexibility.  We
sweep ρ over the standard workload (time minimization) and assert the
lever's direction: a smaller ρ never *increases* AMP's alternative
count, and never *decreases* AMP's mean job time — while keeping ALP
untouched (its per-slot cap does not involve ρ).
"""

from __future__ import annotations

from repro.core import Criterion
from repro.sim import summarize, table

from benchmarks.conftest import get_result, report

RHOS = [1.0, 0.8, 0.6]


def test_rho_budget_ablation(benchmark, capsys):
    summaries = benchmark.pedantic(
        lambda: {rho: summarize(get_result(Criterion.TIME, rho)) for rho in RHOS},
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{rho:.1f}",
            str(summary.counted),
            f"{summary.amp.mean_job_time:.2f}",
            f"{summary.amp.mean_job_cost:.2f}",
            f"{summary.amp.mean_alternatives_per_job:.2f}",
            f"{summary.alp.mean_alternatives_per_job:.2f}",
        ]
        for rho, summary in summaries.items()
    ]
    report(capsys, "=" * 72)
    report(capsys, "EXP-RHO — AMP under S = ρ·C·t·N (time minimization)")
    report(
        capsys,
        table(
            rows,
            header=["ρ", "counted", "AMP time", "AMP cost", "AMP alts/job", "ALP alts/job"],
        ),
    )

    # Tightening the budget monotonically shrinks AMP's search space...
    alternatives = [summaries[rho].amp.mean_alternatives_per_job for rho in RHOS]
    assert all(
        later <= earlier + 0.25 for earlier, later in zip(alternatives, alternatives[1:])
    ), f"alternatives should not grow as ρ shrinks: {alternatives}"
    # ...while ALP, which has no budget, is essentially unaffected by ρ
    # (small drift remains possible because ρ changes *which* iterations
    # pass the mutual-success filter, not ALP's behaviour on any of them).
    alp_alternatives = [summaries[rho].alp.mean_alternatives_per_job for rho in RHOS]
    assert all(
        abs(value - alp_alternatives[0]) < 1.0 for value in alp_alternatives
    ), f"ALP should be rho-insensitive: {alp_alternatives}"
    # AMP keeps beating ALP on time even with a tightened budget.
    for rho in RHOS:
        assert summaries[rho].amp.mean_job_time < summaries[rho].alp.mean_job_time
