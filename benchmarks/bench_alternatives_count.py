"""EXP-ALT — the in-text statistics table ("Table S1").

Section 5 reports, alongside the figures: total alternatives found
(ALP 258 079 vs AMP 1 160 029 over 25 000 iterations), per-job averages
(7.39 vs 34.28 in time minimization, 7.28 vs 34.23 in cost
minimization), the average number of slots per experiment (135.11), and
the average batch size of counted cost-minimization iterations (4.18,
below the overall mean because big batches fail ALP coverage more
often).  This benchmark regenerates all of them and asserts the shape:
AMP finds several times more alternatives, slots/experiment sits inside
the generator range, and counted batches skew small.

The timed unit is one phase-1 double search (ALP + AMP) on a fresh
iteration.
"""

from __future__ import annotations

from repro.core import Criterion, SlotSearchAlgorithm, find_alternatives
from repro.sim import JobGenerator, SlotGenerator, summarize, table

from benchmarks.conftest import get_result, report


def _one_double_search():
    slot_generator = SlotGenerator(seed=99)
    job_generator = JobGenerator(rng=slot_generator.rng)
    slots = slot_generator.generate()
    batch = job_generator.generate()
    return (
        find_alternatives(slots, batch, SlotSearchAlgorithm.ALP).total_alternatives,
        find_alternatives(slots, batch, SlotSearchAlgorithm.AMP).total_alternatives,
    )


def test_alternatives_statistics(benchmark, capsys):
    benchmark(_one_double_search)

    rows = []
    summaries = {}
    for objective, label in ((Criterion.TIME, "time min."), (Criterion.COST, "cost min.")):
        summary = summarize(get_result(objective))
        summaries[objective] = summary
        rows.append(
            [
                label,
                f"{summary.alp.total_alternatives}",
                f"{summary.amp.total_alternatives}",
                f"{summary.alp.mean_alternatives_per_job:.2f}",
                f"{summary.amp.mean_alternatives_per_job:.2f}",
                f"{summary.mean_slots_per_experiment:.1f}",
                f"{summary.mean_jobs_per_counted_experiment:.2f}",
            ]
        )
    report(capsys, "=" * 72)
    report(capsys, "EXP-ALT / Table S1 — alternative counts and batch statistics")
    report(
        capsys,
        table(
            rows,
            header=[
                "experiment",
                "ALP total",
                "AMP total",
                "ALP/job",
                "AMP/job",
                "slots/exp",
                "jobs/counted",
            ],
        ),
    )
    report(
        capsys,
        "paper: 258 079 vs 1 160 029 total; 7.39 vs 34.28 per job (time min.), "
        "7.28 vs 34.23 (cost min.); 135.11 slots/exp; 4.18 jobs/counted (cost min.)",
    )

    for summary in summaries.values():
        factor = summary.ratios().alternatives_factor
        assert factor > 1.5, f"AMP should find several times more alternatives, got x{factor:.2f}"
        assert 120 <= summary.mean_slots_per_experiment <= 150
    # Counted iterations skew toward smaller batches (coverage selection).
    time_summary = summaries[Criterion.TIME]
    overall_mean_jobs = (3 + 7) / 2
    assert time_summary.mean_jobs_per_counted_experiment <= overall_mean_jobs + 0.5
