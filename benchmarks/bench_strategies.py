"""EXP-STRAT — whole-batch co-scheduling strategies (Section 7 future work).

The paper's future work proposes "slot selection for the whole job
batch at once and not for each job consecutively", optimizing "on the
fly".  We implemented three strategies (`repro.core.coschedule`) and
compare them over the Section 5 workload:

* SEQUENTIAL — the paper's consecutive scheme (baseline),
* EARLIEST_FIRST — global on-the-fly ordering by earliest window,
* CHEAPEST_FIRST — global ordering by cheapest window.

Asserted shape: EARLIEST_FIRST never starts the batch later than
SEQUENTIAL (its first commitment is the global earliest window), and
CHEAPEST_FIRST never pays more than SEQUENTIAL on its first commitment.
"""

from __future__ import annotations

from repro.core import BatchStrategy, SlotSearchAlgorithm, coallocate_batch
from repro.sim import JobGenerator, SlotGenerator, table

from benchmarks.conftest import BENCH_SEED, report

SAMPLES = 40


def _iterations():
    slot_generator = SlotGenerator(seed=BENCH_SEED)
    job_generator = JobGenerator(rng=slot_generator.rng)
    for _ in range(SAMPLES):
        yield slot_generator.generate(), job_generator.generate()


def _run_all():
    aggregates = {
        strategy: {"first_start": 0.0, "cost": 0.0, "time": 0.0, "placed": 0, "batches": 0}
        for strategy in BatchStrategy
    }
    for slots, batch in _iterations():
        per_strategy = {}
        for strategy in BatchStrategy:
            assignment = coallocate_batch(
                slots, batch, SlotSearchAlgorithm.AMP, strategy=strategy
            )
            per_strategy[strategy] = assignment
        if any(not assignment.windows for assignment in per_strategy.values()):
            continue
        for strategy, assignment in per_strategy.items():
            bucket = aggregates[strategy]
            bucket["first_start"] += min(w.start for w in assignment.windows.values())
            bucket["cost"] += assignment.total_cost
            bucket["time"] += assignment.total_time
            bucket["placed"] += len(assignment.windows)
            bucket["batches"] += 1
    return aggregates


def test_batch_strategies(benchmark, capsys):
    aggregates = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for strategy, bucket in aggregates.items():
        batches = max(1, bucket["batches"])
        rows.append(
            [
                strategy.value,
                str(bucket["batches"]),
                f"{bucket['placed'] / batches:.2f}",
                f"{bucket['first_start'] / batches:.1f}",
                f"{bucket['time'] / batches:.1f}",
                f"{bucket['cost'] / batches:.1f}",
            ]
        )
    report(capsys, "=" * 72)
    report(capsys, "EXP-STRAT — whole-batch strategies over the §5 workload (AMP)")
    report(
        capsys,
        table(
            rows,
            header=["strategy", "batches", "placed/batch", "first start", "batch time", "batch cost"],
        ),
    )

    sequential = aggregates[BatchStrategy.SEQUENTIAL]
    earliest = aggregates[BatchStrategy.EARLIEST_FIRST]
    cheapest = aggregates[BatchStrategy.CHEAPEST_FIRST]
    assert sequential["batches"] > 0
    # Global earliest-first commits the globally earliest window first,
    # so its mean first-start can never exceed the sequential scheme's.
    assert earliest["first_start"] <= sequential["first_start"] + 1e-6
    # Cheapest-first trades start time for money.
    batches = sequential["batches"]
    assert cheapest["cost"] / batches <= sequential["cost"] / batches * 1.05
    # All strategies place work on every counted batch.
    for bucket in aggregates.values():
        assert bucket["placed"] >= bucket["batches"]
