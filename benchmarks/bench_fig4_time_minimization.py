"""EXP-T1 — Fig. 4: job batch execution *time* minimization.

Regenerates both panels of Fig. 4: (a) average job execution time and
(b) average job execution cost, for ALP and AMP under
``min T(s̄) s.t. C(s̄) <= B*``.  Paper reference: time 59.85 vs 39.01
(AMP 35 % faster), cost 313.56 vs 369.69 (AMP 15 % dearer).  We assert
the *shape*: AMP strictly faster, AMP at least as expensive.

The timed unit is a 20-iteration slice of the pipeline (generation +
double two-phase scheduling); the printed figures come from the full
cached series (``REPRO_BENCH_ITERATIONS`` iterations).
"""

from __future__ import annotations

from repro.core import Criterion
from repro.sim import ExperimentRunner, render_figure4, summarize, summary_table

from benchmarks.conftest import get_result, report, small_config


def test_fig4_time_minimization(benchmark, capsys):
    benchmark.pedantic(
        lambda: ExperimentRunner(small_config(Criterion.TIME)).run(),
        rounds=1,
        iterations=1,
    )

    result = get_result(Criterion.TIME)
    summary = summarize(result)
    report(capsys, "=" * 72)
    report(capsys, "EXP-T1 / Fig. 4 — time minimization (min T under B*)")
    report(capsys, summary_table(summary))
    report(capsys, render_figure4(result))

    assert result.counted > 0, "no counted experiments — generators or DP regressed"
    # Fig. 4 (a): AMP minimizes batch time far below ALP.
    assert summary.amp.mean_job_time < summary.alp.mean_job_time
    assert summary.ratios().amp_time_gain > 0.10
    # Fig. 4 (b): the speed is bought with money.
    assert summary.amp.mean_job_cost > summary.alp.mean_job_cost
