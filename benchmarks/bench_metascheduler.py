"""EXP-GRID — the Section 2 scheme end to end on the grid substrate.

The paper's scheduling scheme is "iterative on periodically updated
local schedules" with postponement of unlucky jobs.  This benchmark
runs the full loop — local job flows occupying clusters, slot lists
published per iteration, windows committed as reservations — for an
AMP-driven and an ALP-driven metascheduler on *identical* environments
and job streams, and checks the end-to-end counterparts of the paper's
claims: AMP places at least as many jobs and achieves a lower mean
execution time.
"""

from __future__ import annotations

import random
import time

from repro.core import (
    BatchScheduler,
    Criterion,
    InfeasiblePolicy,
    Job,
    SchedulerConfig,
    SlotSearchAlgorithm,
)
from repro.grid import ClusterSpec, LocalJobFlow, Metascheduler, VOEnvironment
from repro.sim import JobGenerator, table

from benchmarks.conftest import record_baseline, report

SEED = 31
UNTIL = 2400.0
JOB_COUNT = 24


def _run(algorithm: SlotSearchAlgorithm):
    environment = VOEnvironment.generate(
        [
            ClusterSpec("hpc", node_count=8, performance_range=(1.5, 3.0)),
            ClusterSpec("campus", node_count=10, performance_range=(1.0, 2.0)),
        ],
        seed=SEED,
    )
    flow = LocalJobFlow(seed=SEED)
    for cluster in environment.clusters:
        flow.occupy(cluster, 0.0, UNTIL + 2000.0)
    scheduler = BatchScheduler(
        SchedulerConfig(
            algorithm=algorithm,
            objective=Criterion.TIME,
            infeasible_policy=InfeasiblePolicy.EARLIEST,
        )
    )
    meta = Metascheduler(environment, scheduler, period=100.0, horizon=1200.0)
    generator = JobGenerator(seed=SEED)
    arrivals = random.Random(SEED)
    for index in range(JOB_COUNT):
        meta.submit(
            Job(generator.generate_request(), name=f"g{index}"),
            at_time=arrivals.uniform(0.0, UNTIL * 0.5),
        )
    meta.run(until=UNTIL)
    return meta


def test_metascheduler_end_to_end(benchmark, capsys):
    started = time.perf_counter()
    amp_meta = benchmark.pedantic(
        lambda: _run(SlotSearchAlgorithm.AMP), rounds=1, iterations=1
    )
    amp_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    alp_meta = _run(SlotSearchAlgorithm.ALP)
    alp_elapsed = time.perf_counter() - started

    rows = []
    summaries = {}
    for name, meta in (("AMP", amp_meta), ("ALP", alp_meta)):
        summary = meta.trace.summary()
        summaries[name] = summary
        rows.append(
            [
                name,
                f"{summary.scheduled}/{summary.submitted}",
                f"{summary.mean_wait_time:.1f}" if summary.mean_wait_time is not None else "-",
                f"{summary.mean_execution_time:.1f}" if summary.mean_execution_time else "-",
                f"{summary.mean_cost:.1f}" if summary.mean_cost else "-",
                str(sum(report_.postponed for report_ in meta.reports)),
            ]
        )
    report(capsys, "=" * 72)
    report(capsys, "EXP-GRID — iterative metascheduler, identical VO and job stream")
    report(
        capsys,
        table(rows, header=["search", "placed", "wait", "exec", "cost", "postponements"]),
    )

    amp_summary, alp_summary = summaries["AMP"], summaries["ALP"]
    assert amp_summary.scheduled >= alp_summary.scheduled
    assert amp_summary.scheduled >= JOB_COUNT * 0.7, "AMP VO should place most jobs"

    # Execution-time comparison must be paired: ALP places fewer jobs
    # (it covers only cheap nodes), and comparing means over different
    # job subsets would be a selection-bias artefact.  On the jobs both
    # metaschedulers placed, AMP's faster-node windows win on average.
    amp_windows = {
        record.job.name: record.window
        for record in amp_meta.trace
        if record.window is not None
    }
    alp_windows = {
        record.job.name: record.window
        for record in alp_meta.trace
        if record.window is not None
    }
    common = sorted(set(amp_windows) & set(alp_windows))
    assert common, "no commonly placed jobs — environments diverged?"
    amp_mean = sum(amp_windows[name].length for name in common) / len(common)
    alp_mean = sum(alp_windows[name].length for name in common) / len(common)
    report(
        capsys,
        f"paired over {len(common)} commonly placed jobs: "
        f"AMP exec {amp_mean:.1f} vs ALP exec {alp_mean:.1f}",
    )

    record_baseline(
        "metascheduler",
        "end_to_end",
        {
            "jobs": JOB_COUNT,
            "until": UNTIL,
            "amp_wall_seconds": round(amp_elapsed, 3),
            "alp_wall_seconds": round(alp_elapsed, 3),
            "amp_placed": amp_summary.scheduled,
            "alp_placed": alp_summary.scheduled,
            "paired_jobs": len(common),
            "amp_paired_exec": round(amp_mean, 2),
            "alp_paired_exec": round(alp_mean, 2),
        },
    )
    assert amp_mean <= alp_mean * 1.05
