"""EXP-T1 — Fig. 5: per-experiment comparison series (first 300).

The paper plots the average job execution time of ALP and AMP for each
of the first 300 counted time-minimization experiments and observes "an
observable gain of AMP method in every single experiment".  We
regenerate the two series and assert the dominance holds in the
overwhelming majority of experiments (every single one is RNG-lucky
even for the authors' claim; we require >= 90 % plus a strict mean gap).

The timed unit is the series extraction + ASCII rendering.
"""

from __future__ import annotations

from repro.core import Criterion
from repro.sim import figure5, render_figure5

from benchmarks.conftest import get_result, report


def test_fig5_per_experiment_series(benchmark, capsys):
    result = get_result(Criterion.TIME)
    first_n = min(300, result.counted)

    text = benchmark(lambda: render_figure5(result, first_n=first_n))

    report(capsys, "=" * 72)
    report(capsys, f"EXP-T1 / Fig. 5 — first {first_n} counted experiments")
    report(capsys, text)

    panel = figure5(result, first_n=first_n)
    assert panel.series is not None
    alp_series = panel.series["ALP"]
    amp_series = panel.series["AMP"]
    assert len(alp_series) == len(amp_series) == first_n
    wins = sum(1 for alp, amp in zip(alp_series, amp_series) if amp <= alp)
    report(
        capsys,
        f"AMP at or below ALP in {wins}/{first_n} experiments "
        f"({100 * wins / first_n:.0f}%; paper: every single one)",
    )
    assert wins / first_n >= 0.90
    assert panel.measured["AMP"] < panel.measured["ALP"]
