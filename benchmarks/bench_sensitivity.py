"""EXP-SENS — sensitivity of the headline ratios to generator parameters.

Not a paper figure: this ablation probes *why* AMP wins, by sweeping the
two parameters the mechanism depends on.

* ``performance_ceiling``: AMP's time gain is bought on fast nodes.  In
  a homogeneous environment (ceiling 1.0) there are none, so the gain
  must collapse toward zero.
* ``price_cap_ceiling``: ALP is constrained by its per-slot cap.  With a
  generous cap the constraint stops binding and ALP's alternative count
  approaches AMP's.

The timed unit is one sweep point (a short experiment series).
"""

from __future__ import annotations

from repro.core import Criterion
from repro.sim.sensitivity import render_sweep, sweep

from benchmarks.conftest import BENCH_SEED, report

ITERATIONS = 60


def test_heterogeneity_drives_time_gain(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: sweep(
            "performance_ceiling",
            [1.0, 2.0, 3.0],
            iterations=ITERATIONS,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    report(capsys, "=" * 72)
    report(capsys, "EXP-SENS (a) — environment heterogeneity vs AMP's time gain")
    report(capsys, render_sweep(points))

    gains = {point.value: point.summary.ratios().amp_time_gain for point in points}
    # Homogeneous environment: nothing faster to buy -> negligible gain.
    assert abs(gains[1.0]) < 0.08, f"homogeneous gain should vanish, got {gains[1.0]:.2f}"
    # Paper-level heterogeneity: the gain is large.
    assert gains[3.0] > 0.15
    assert gains[3.0] > gains[1.0]


def test_price_cap_controls_alp_restriction(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: sweep(
            "price_cap_ceiling",
            [1.1, 1.3, 2.5],
            iterations=ITERATIONS,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    report(capsys, "=" * 72)
    report(capsys, "EXP-SENS (b) — price-cap generosity vs the alternatives factor")
    report(capsys, render_sweep(points))

    factors = {point.value: point.summary.ratios().alternatives_factor for point in points}
    # A generous cap relaxes ALP -> the AMP/ALP factor shrinks.
    assert factors[2.5] < factors[1.1], (
        f"generous caps should close the gap: {factors}"
    )
