"""EXP-SHARD — partition-parallel phase-1 search at fleet scale.

The workload is a single scheduling cycle over a fleet-sized vacant
list (default 20 000 slots — two orders of magnitude past the paper's
[120, 150]) with a *low-selectivity* batch: jobs demand near-top node
performance under tight price caps, so only a few percent of the fleet
survives the static scan predicates.  That is exactly the regime the
sharded executor is built for — the multi-pass search re-scans the same
per-request predicates hundreds of times, and after each shard's first
pass every subsequent scan is a filter over its memoized survivor set
instead of a fresh walk of the full list.

Three configurations are timed on the identical instance:

* the serial indexed path (``use_index=True``) — the PR 3 baseline;
* ``shards=4`` in-process — the sharded default;
* ``shards=4`` with worker processes — recorded for transparency: pipe
  round-trips (~0.5 ms per find) dwarf post-memo scan work, so this
  mode *loses* on multi-pass workloads and is an explicit opt-in only.

The headline ``shard_speedup`` (serial / sharded in-process) must reach
2× and is gated in CI against ``BENCH_history.jsonl`` by
``python -m benchmarks.gate``.  Speedup provenance is documented in
docs/benchmarks.md: per-shard survivor memoization amortized across
passes, not multi-core parallelism.  Byte-identity of the sharded
result is asserted here as a sanity check; the proof is the
sharded-oracle suite in tests/test_reference_oracles.py.

Environment knobs:

* ``REPRO_BENCH_SHARD_SLOTS`` — fleet size (default 20000).
* ``REPRO_BENCH_SHARD_MIN_SPEEDUP`` — acceptance floor (default 2.0).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import SlotSearchAlgorithm, find_alternatives
from repro.sim import (
    JobGenerator,
    JobGeneratorConfig,
    SlotGenerator,
    SlotGeneratorConfig,
    table,
)

from benchmarks.conftest import BENCH_SEED, record_baseline, report

SHARD_SLOTS = int(os.environ.get("REPRO_BENCH_SHARD_SLOTS", "20000"))
SHARD_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP", "2.0"))
SHARD_COUNT = 4

#: Near-top performance demands + tight price caps: ~3% of the fleet
#: survives the static predicates, so the serial scan walks deep into
#: the list on every find while the sharded scans filter tiny memos.
LOW_SELECTIVITY_JOBS = JobGeneratorConfig(
    job_count_range=(6, 6),
    node_count_range=(2, 6),
    min_performance_range=(2.85, 2.95),
    price_cap_factor_range=(0.9, 1.1),
)


def _fleet_instance():
    slots = SlotGenerator(
        SlotGeneratorConfig(slot_count_range=(SHARD_SLOTS, SHARD_SLOTS)),
        seed=BENCH_SEED,
    ).generate()
    batch = JobGenerator(LOW_SELECTIVITY_JOBS, seed=BENCH_SEED).generate()
    return slots, batch


def _search_fingerprint(result):
    return (
        result.passes,
        {
            job.name: [
                (
                    window.start,
                    tuple(
                        (a.resource.uid, a.start, a.end, a.source.price)
                        for a in window.allocations
                    ),
                )
                for window in windows
            ]
            for job, windows in result.alternatives.items()
        },
        sorted(
            (s.resource.uid, s.start, s.end, s.price) for s in result.remaining_slots
        ),
    )


def _timed_search(slots, batch, *, repeats: int = 2, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = find_alternatives(
            slots, batch, SlotSearchAlgorithm.AMP, use_index=True, **kwargs
        )
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.bench
def test_shard_workload_speedup(capsys):
    """One fleet-scale cycle: ``shards=4`` must finish phase 1 at least
    2× faster than the serial indexed path while producing the
    byte-identical search result."""
    slots, batch = _fleet_instance()

    serial_elapsed, serial_result = _timed_search(slots, batch)
    sharded_elapsed, sharded_result = _timed_search(
        slots, batch, shards=SHARD_COUNT
    )
    process_elapsed, process_result = _timed_search(
        slots, batch, shards=SHARD_COUNT, shard_processes=True, repeats=1
    )

    reference = _search_fingerprint(serial_result)
    assert _search_fingerprint(sharded_result) == reference
    assert _search_fingerprint(process_result) == reference

    shard_speedup = serial_elapsed / sharded_elapsed
    process_speedup = serial_elapsed / process_elapsed
    rows = [
        ["serial indexed", f"{serial_elapsed:.2f}", "1.00"],
        [
            f"shards={SHARD_COUNT} in-process",
            f"{sharded_elapsed:.2f}",
            f"{shard_speedup:.2f}",
        ],
        [
            f"shards={SHARD_COUNT} processes",
            f"{process_elapsed:.2f}",
            f"{process_speedup:.2f}",
        ],
    ]
    report(capsys, "=" * 72)
    report(
        capsys,
        f"EXP-SHARD — {SHARD_SLOTS} slots, {len(batch)} jobs, "
        f"{serial_result.passes} passes, "
        f"{serial_result.total_alternatives} alternatives",
    )
    report(capsys, table(rows, header=["configuration", "seconds", "speedup"]))

    record_baseline(
        "shard",
        "shard_workload",
        {
            "slots": SHARD_SLOTS,
            "jobs": len(batch),
            "shards": SHARD_COUNT,
            "passes": serial_result.passes,
            "alternatives": serial_result.total_alternatives,
            "serial_seconds": round(serial_elapsed, 3),
            "sharded_seconds": round(sharded_elapsed, 3),
            "process_seconds": round(process_elapsed, 3),
            "shard_speedup": round(shard_speedup, 2),
            "process_speedup": round(process_speedup, 2),
        },
    )
    assert shard_speedup >= SHARD_MIN_SPEEDUP, (
        f"sharded search must be >= {SHARD_MIN_SPEEDUP}x the serial indexed "
        f"path on the fleet workload, got {shard_speedup:.2f}x"
    )
