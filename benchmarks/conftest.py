"""Shared machinery for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts
(Figs. 4, 5, 6, the in-text statistics, the worked example, the
complexity claim, and our ablations).  The expensive experiment series
are computed once per session and cached; individual benchmarks time a
representative slice of the work and print the regenerated
figure/table so that ``pytest benchmarks/ --benchmark-only`` output is
a self-contained report.

Environment knobs:

* ``REPRO_BENCH_ITERATIONS`` — attempted scheduling iterations per
  experiment series (default 300; the paper uses 25 000 — set
  ``REPRO_BENCH_ITERATIONS=25000`` for the full-fidelity run).
* ``REPRO_BENCH_SEED`` — master seed (default the paper's page number).
"""

from __future__ import annotations

import functools
import json
import os
import platform

from repro.core import Criterion
from repro.sim import ExperimentConfig, ExperimentResult, ExperimentRunner

BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "300"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "368"))

#: Worker count for the parallel-engine measurements (the acceptance
#: workload uses 4; CI smokes with ``REPRO_BENCH_WORKERS=2``).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Append-only measurement log: one compact JSON line per recorded
#: section, timestamped, so perf trends survive baseline overwrites and
#: the CI regression gate (``benchmarks/gate.py``) has a trajectory to
#: compare against.
HISTORY_PATH = os.path.join(REPO_ROOT, "BENCH_history.jsonl")


def record_history(name: str, section: str, payload: dict) -> str:
    """Append one timestamped measurement entry to ``BENCH_history.jsonl``.

    The timestamp flows through the injectable :mod:`repro.obs.clock`
    so harness tests can freeze it.  Returns the history path.
    """
    from repro.obs import clock

    entry = {
        "machine": platform.machine(),
        "name": name,
        "python": platform.python_version(),
        "recorded_at": clock.now(),
        "section": section,
        "values": payload,
    }
    with open(HISTORY_PATH, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(entry, separators=(",", ":"), sort_keys=True))
        stream.write("\n")
    return HISTORY_PATH


def record_baseline(name: str, section: str, payload: dict) -> str:
    """Merge ``payload`` into ``BENCH_<name>.json`` at the repo root.

    Each benchmark owns one *section* of its file, so a partial run
    updates only what it measured and the committed baselines keep a
    readable trajectory (see docs/benchmarks.md).  Every call also
    appends the measurement to ``BENCH_history.jsonl`` via
    :func:`record_history`.  Returns the path.
    """
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    document: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except (OSError, ValueError):
            document = {}
    document["python"] = platform.python_version()
    document["machine"] = platform.machine()
    document[section] = payload
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    record_history(name, section, payload)
    return path


@functools.lru_cache(maxsize=None)
def get_result(objective: Criterion, rho: float = 1.0) -> ExperimentResult:
    """Session-cached experiment series for one objective/rho."""
    config = ExperimentConfig(
        objective=objective,
        iterations=BENCH_ITERATIONS,
        seed=BENCH_SEED,
        rho=rho,
    )
    return ExperimentRunner(config).run()


def small_config(objective: Criterion) -> ExperimentConfig:
    """A short series used as the timed unit inside benchmarks."""
    return ExperimentConfig(objective=objective, iterations=20, seed=BENCH_SEED + 1)


def report(capsys, text: str) -> None:
    """Print ``text`` past pytest's capture, so it lands in the output."""
    with capsys.disabled():
        print()
        print(text)
