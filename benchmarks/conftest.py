"""Shared machinery for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts
(Figs. 4, 5, 6, the in-text statistics, the worked example, the
complexity claim, and our ablations).  The expensive experiment series
are computed once per session and cached; individual benchmarks time a
representative slice of the work and print the regenerated
figure/table so that ``pytest benchmarks/ --benchmark-only`` output is
a self-contained report.

Environment knobs:

* ``REPRO_BENCH_ITERATIONS`` — attempted scheduling iterations per
  experiment series (default 300; the paper uses 25 000 — set
  ``REPRO_BENCH_ITERATIONS=25000`` for the full-fidelity run).
* ``REPRO_BENCH_SEED`` — master seed (default the paper's page number).
"""

from __future__ import annotations

import functools
import os

from repro.core import Criterion
from repro.sim import ExperimentConfig, ExperimentResult, ExperimentRunner

BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "300"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "368"))


@functools.lru_cache(maxsize=None)
def get_result(objective: Criterion, rho: float = 1.0) -> ExperimentResult:
    """Session-cached experiment series for one objective/rho."""
    config = ExperimentConfig(
        objective=objective,
        iterations=BENCH_ITERATIONS,
        seed=BENCH_SEED,
        rho=rho,
    )
    return ExperimentRunner(config).run()


def small_config(objective: Criterion) -> ExperimentConfig:
    """A short series used as the timed unit inside benchmarks."""
    return ExperimentConfig(objective=objective, iterations=20, seed=BENCH_SEED + 1)


def report(capsys, text: str) -> None:
    """Print ``text`` past pytest's capture, so it lands in the output."""
    with capsys.disabled():
        print()
        print(text)
