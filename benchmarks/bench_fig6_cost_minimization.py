"""EXP-T2 — Fig. 6: job batch execution *cost* minimization.

Regenerates both panels of Fig. 6: (a) average job execution cost and
(b) average job execution time, under ``min C(s̄) s.t. T(s̄) <= T*``.
Paper reference: cost 313.09 vs 343.30 (ALP ahead by only ~9 %), time
61.04 vs 51.62 (AMP still ~15 % faster).  Shape asserts: AMP's cost
premium is *smaller* here than in time minimization, and AMP remains
faster even while minimizing cost (the tight eq. (2) quota of its large
alternative sets forces fast choices — Section 6's explanation).
"""

from __future__ import annotations

from repro.core import Criterion
from repro.sim import ExperimentRunner, render_figure6, summarize, summary_table

from benchmarks.conftest import get_result, report, small_config


def test_fig6_cost_minimization(benchmark, capsys):
    benchmark.pedantic(
        lambda: ExperimentRunner(small_config(Criterion.COST)).run(),
        rounds=1,
        iterations=1,
    )

    result = get_result(Criterion.COST)
    summary = summarize(result)
    report(capsys, "=" * 72)
    report(capsys, "EXP-T2 / Fig. 6 — cost minimization (min C under T*)")
    report(capsys, summary_table(summary))
    report(capsys, render_figure6(result))

    assert result.counted > 0
    # Fig. 6 (a): ALP wins on cost, but by a modest margin.
    cost_premium = summary.ratios().amp_cost_premium
    assert cost_premium >= 0.0
    # Fig. 6 (b): AMP is still faster despite optimizing cost.
    assert summary.amp.mean_job_time < summary.alp.mean_job_time

    time_min_summary = summarize(get_result(Criterion.TIME))
    report(
        capsys,
        f"cost premium: {100 * cost_premium:.1f}% here vs "
        f"{100 * time_min_summary.ratios().amp_cost_premium:.1f}% under time "
        "minimization (paper: 9% vs 15%)",
    )
    assert cost_premium < time_min_summary.ratios().amp_cost_premium
