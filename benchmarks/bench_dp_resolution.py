"""EXP-DP — ablation of the phase-2 DP discretization resolution.

DESIGN.md calls out the discretization of the constrained axis as a
design choice: floor rounding trades a bounded constraint overshoot
(``limit·n/resolution``) for the guarantee that feasible combinations
are never rejected.  This ablation measures both sides of the trade on
the Section 5 workload:

* optimality — the min-time objective at coarse resolutions vs the
  finest one (coarse DPs see a *relaxed* budget, so their objective can
  only be equal or better, at the price of overshooting the budget);
* overshoot — how far the chosen combination's true cost exceeds B*;
* runtime — the DP's cost grows linearly in the resolution.

Asserted shape: the overshoot never exceeds the documented bound, and
the objective at resolution 2000 is within a fraction of a percent of
resolution 8000 (diminishing returns — justifying the default).
"""

from __future__ import annotations

import time

from repro.core import Criterion, SlotSearchAlgorithm
from repro.core.optimize import minimize_time, time_quota, vo_budget
from repro.core.search import find_alternatives
from repro.sim import JobGenerator, SlotGenerator, table

from benchmarks.conftest import BENCH_SEED, report

RESOLUTIONS = [100, 500, 2000, 8000]
SAMPLES = 25


def _feasible_iterations():
    slot_generator = SlotGenerator(seed=BENCH_SEED + 3)
    job_generator = JobGenerator(rng=slot_generator.rng)
    for _ in range(SAMPLES):
        slots = slot_generator.generate()
        batch = job_generator.generate()
        search = find_alternatives(slots, batch, SlotSearchAlgorithm.AMP)
        if not search.all_jobs_covered():
            continue
        quota = time_quota(search.alternatives)
        try:
            budget = vo_budget(search.alternatives, quota, resolution=8000)
        except Exception:
            continue
        yield search.alternatives, budget


def _collect():
    stats = {
        resolution: {"time": 0.0, "overshoot": 0.0, "worst_overshoot": 0.0, "seconds": 0.0}
        for resolution in RESOLUTIONS
    }
    iterations = 0
    for alternatives, budget in _feasible_iterations():
        iterations += 1
        job_count = len(alternatives)
        for resolution in RESOLUTIONS:
            started = time.perf_counter()
            combo = minimize_time(alternatives, budget, resolution=resolution)
            elapsed = time.perf_counter() - started
            bucket = stats[resolution]
            bucket["seconds"] += elapsed
            bucket["time"] += combo.total_time
            overshoot = max(0.0, combo.total_cost - budget)
            bound = budget * job_count / resolution
            assert overshoot <= bound + 1e-6, (
                f"overshoot {overshoot:g} exceeds documented bound {bound:g} "
                f"at resolution {resolution}"
            )
            relative = overshoot / budget if budget else 0.0
            bucket["overshoot"] += relative
            bucket["worst_overshoot"] = max(bucket["worst_overshoot"], relative)
    return stats, iterations


def test_dp_resolution_tradeoff(benchmark, capsys):
    stats, iterations = benchmark.pedantic(_collect, rounds=1, iterations=1)
    assert iterations > 3, "too few feasible iterations"

    rows = []
    for resolution in RESOLUTIONS:
        bucket = stats[resolution]
        rows.append(
            [
                str(resolution),
                f"{bucket['time'] / iterations:.2f}",
                f"{100 * bucket['overshoot'] / iterations:.3f}%",
                f"{100 * bucket['worst_overshoot']:.3f}%",
                f"{1e3 * bucket['seconds'] / iterations:.2f}",
            ]
        )
    report(capsys, "=" * 72)
    report(capsys, f"EXP-DP — discretization trade-off over {iterations} iterations")
    report(
        capsys,
        table(
            rows,
            header=["resolution", "mean T(s̄)", "mean overshoot", "worst overshoot", "ms/solve"],
        ),
    )

    # Coarse DPs relax the budget: objective monotonically non-increasing
    # as resolution falls is NOT guaranteed pointwise, but the default
    # must sit within 0.5 % of the finest resolution on the objective.
    finest = stats[8000]["time"] / iterations
    default = stats[2000]["time"] / iterations
    assert abs(default - finest) <= 0.005 * finest
    # The worst observed overshoot at the default resolution is tiny.
    assert stats[2000]["worst_overshoot"] < 0.01
