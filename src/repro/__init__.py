"""repro — economic slot selection and co-allocation for distributed computing.

A production-quality reproduction of:

    V. Toporkov, A. Bobchenkov, A. Toporkova, A. Tselishchev,
    D. Yemelyanov.  *Slot Selection and Co-allocation for Economic
    Scheduling in Distributed Computing.*  PaCT 2011, LNCS 6873,
    pp. 368-383.

Packages:

* :mod:`repro.core` — data model, the ALP/AMP slot-search algorithms,
  multi-pass alternative search, and the backward-run combination
  optimizer (the paper's contribution).
* :mod:`repro.grid` — the virtual-organization substrate: priced nodes,
  clusters, local job flows, occupancy schedules, vacant-slot extraction,
  and the iterative metascheduler.
* :mod:`repro.baselines` — backfilling (EASY and conservative),
  first-fit, and greedy comparators.
* :mod:`repro.sim` — the Section 5 simulation study: slot/job
  generators, experiment runner, statistics, and figure regeneration.
* :mod:`repro.examples_data` — the deterministic Section 4 worked
  example environment.
"""

from repro.core import (
    Batch,
    BatchScheduler,
    Combination,
    Criterion,
    Job,
    Resource,
    ResourceRequest,
    ScheduleOutcome,
    SchedulerConfig,
    SchedulingError,
    SearchResult,
    Slot,
    SlotList,
    SlotSearchAlgorithm,
    Window,
    find_alternatives,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Resource",
    "Slot",
    "SlotList",
    "Window",
    "ResourceRequest",
    "Job",
    "Batch",
    "SlotSearchAlgorithm",
    "find_alternatives",
    "SearchResult",
    "Criterion",
    "Combination",
    "BatchScheduler",
    "SchedulerConfig",
    "ScheduleOutcome",
    "SchedulingError",
]
