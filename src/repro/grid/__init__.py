"""Grid substrate: the virtual organization the scheduler runs against.

The paper evaluates its algorithms on slot lists; real deployments get
those slot lists from *somewhere* — local resource managers publishing
the vacant gaps of their nodes' occupancy schedules.  This package
builds that somewhere:

* :mod:`repro.grid.occupancy` — busy-interval schedules per node;
* :mod:`repro.grid.node` — priced compute nodes (resource + schedule);
* :mod:`repro.grid.cluster` — resource domains under one owner;
* :mod:`repro.grid.local` — owner-local job flows (non-dedication);
* :mod:`repro.grid.environment` — the VO: publishes slot lists, commits
  windows;
* :mod:`repro.grid.metascheduler` — the periodic batch-scheduling cycle
  with postponement;
* :mod:`repro.grid.resilience` — stochastic failure injection and the
  alternative-backed fault-recovery subsystem;
* :mod:`repro.grid.checkpoint` — crash-safe durable state: atomic
  snapshots plus command-journal replay;
* :mod:`repro.grid.trace` — job life-cycle records and run metrics.
"""

from repro.grid.accounting import (
    OwnerLine,
    OwnerStatement,
    UserLine,
    UserStatement,
    owner_statement,
    user_statement,
)
from repro.grid.arrivals import BurstyArrivals, PoissonArrivals
from repro.grid.checkpoint import (
    DurableMetascheduler,
    load_snapshot,
    restore_metascheduler,
    save_snapshot,
    snapshot_metascheduler,
)
from repro.grid.cluster import Cluster, ClusterSpec
from repro.grid.environment import VOEnvironment
from repro.grid.events import EventKind, SimulationDriver, SimulationEvent
from repro.grid.local import LocalJobFlow, LocalLoadModel
from repro.grid.metascheduler import IterationReport, Metascheduler
from repro.grid.node import (
    LOCAL_LABEL_PREFIX,
    OUTAGE_LABEL_PREFIX,
    RESERVATION_LABEL_PREFIX,
    ComputeNode,
    total_income,
)
from repro.grid.occupancy import BusyInterval, OccupancySchedule
from repro.grid.resilience import (
    FailureConfig,
    FailureGenerator,
    Outage,
    RecoveryEvent,
    RecoveryManager,
    RecoveryOutcome,
    RetryPolicy,
    apply_slot_outages,
    derive_node_seed,
)
from repro.grid.swf import (
    SwfImportPolicy,
    SwfImportResult,
    parse_swf,
    read_swf,
    write_swf,
)
from repro.grid.trace import JobRecord, JobState, TraceSummary, WorkloadTrace

__all__ = [
    "BusyInterval",
    "OccupancySchedule",
    "ComputeNode",
    "total_income",
    "LOCAL_LABEL_PREFIX",
    "RESERVATION_LABEL_PREFIX",
    "OUTAGE_LABEL_PREFIX",
    "PoissonArrivals",
    "BurstyArrivals",
    "SimulationDriver",
    "SimulationEvent",
    "EventKind",
    "SwfImportPolicy",
    "SwfImportResult",
    "parse_swf",
    "read_swf",
    "write_swf",
    "OwnerStatement",
    "OwnerLine",
    "UserStatement",
    "UserLine",
    "owner_statement",
    "user_statement",
    "Cluster",
    "ClusterSpec",
    "LocalJobFlow",
    "LocalLoadModel",
    "VOEnvironment",
    "Metascheduler",
    "IterationReport",
    "DurableMetascheduler",
    "snapshot_metascheduler",
    "restore_metascheduler",
    "save_snapshot",
    "load_snapshot",
    "FailureConfig",
    "FailureGenerator",
    "Outage",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryOutcome",
    "RetryPolicy",
    "apply_slot_outages",
    "derive_node_seed",
    "WorkloadTrace",
    "JobRecord",
    "JobState",
    "TraceSummary",
]
