"""Durable metascheduler state: atomic snapshots + command journal.

A 25 000-iteration run that dies at iteration 24 999 should not start
over.  This module makes a :class:`~repro.grid.metascheduler.Metascheduler`
run *crash-safe* with the classical write-ahead recipe:

* **Snapshots** capture the full scheduler state — the VO environment
  (every node's occupancy schedule), the workload trace, the pending
  queue, future submissions, iteration reports, and the fault-recovery
  store (retained alternatives, revocation budgets) — as one JSON
  document in the ``repro/1`` family (format tag
  :data:`CHECKPOINT_FORMAT`).  Writes are atomic: tmp file + ``fsync``
  + ``rename``, so a crash mid-snapshot leaves the previous snapshot
  intact and never a half-written file.

* **The journal** (:mod:`repro.core.journal`) logs every *command*
  applied after the snapshot — ``submit``, ``iteration``, ``outage``,
  ``completions`` — as checksummed JSONL.  Because the metascheduler is
  deterministic given its state, :func:`DurableMetascheduler.restore`
  replays commands by re-executing them on the restored snapshot,
  arriving at exactly the pre-crash state.  A torn trailing journal
  record (the residue of a kill mid-append) is skipped with a warning;
  the run resumes from the last fully journaled command.

Commands are journaled *after* they execute successfully, so the
journal is a redo log of committed operations: a crash mid-command
restores the consistent state just before it.

Typical use::

    meta = Metascheduler(environment, period=60.0)
    durable = DurableMetascheduler(meta, "state/")   # initial snapshot
    durable.submit(job)                               # journaled
    durable.run(until=2000.0)                         # journaled per tick
    ...
    # after a crash:
    durable = DurableMetascheduler.restore("state/")
    durable.run(until=4000.0)                         # picks up where it died
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.core import job as job_module
from repro.core import resource as resource_module
from repro.core.criteria import Criterion
from repro.core.errors import CheckpointMismatchError, PersistenceError
from repro.core.fsio import REAL_FS, FileSystem
from repro.core.journal import JournalWriter, read_journal
from repro.core.pricing import DemandAdjustedPricing, ExponentialPricing
from repro.core.resource import Resource
from repro.core.scheduler import BatchScheduler, InfeasiblePolicy, SchedulerConfig
from repro.core.search import SlotSearchAlgorithm
from repro.core.serialize import _decode_request, _Encoder, _finite
from repro.core.slot import Slot
from repro.core.window import TaskAllocation, Window
from repro.core.job import Job
from repro.grid.cluster import Cluster
from repro.grid.environment import VOEnvironment
from repro.grid.metascheduler import IterationReport, Metascheduler
from repro.grid.node import ComputeNode
from repro.grid.resilience import RecoveryManager, RetryPolicy
from repro.grid.trace import JobState
from repro.obs.context import TraceContext
from repro.obs.telemetry import get_telemetry

__all__ = [
    "CHECKPOINT_FORMAT",
    "DurableMetascheduler",
    "load_snapshot",
    "restore_metascheduler",
    "save_snapshot",
    "snapshot_metascheduler",
]

#: Snapshot document format tag (the ``repro/1`` data model extended to
#: full VO environment + metascheduler queue state).
CHECKPOINT_FORMAT = "repro/1-checkpoint"

#: File names used inside a durable-state directory.
SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.jsonl"


# --------------------------------------------------------------------- #
# Snapshot encoding                                                     #
# --------------------------------------------------------------------- #


def _encode_window(encoder: _Encoder, window: Window) -> dict[str, Any]:
    return encoder.window(window)


def _encode_environment(encoder: _Encoder, environment: VOEnvironment) -> dict[str, Any]:
    clusters = []
    for cluster in environment.clusters:
        nodes = []
        for node in cluster:
            nodes.append(
                {
                    "resource": encoder.resource(node.resource),
                    "intervals": [
                        [
                            _finite(interval.start, "interval start"),
                            _finite(interval.end, "interval end"),
                            interval.label,
                        ]
                        for interval in node.schedule
                    ],
                }
            )
        clusters.append({"name": cluster.name, "nodes": nodes})
    return {"clusters": clusters}


def _encode_scheduler(config: SchedulerConfig) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "algorithm": config.algorithm.value,
        "objective": config.objective.value,
        "rho": config.rho,
        "resolution": config.resolution,
        "max_alternatives_per_job": config.max_alternatives_per_job,
        "infeasible_policy": config.infeasible_policy.value,
    }
    budget = getattr(config, "budget", None)
    if budget is not None:
        payload["budget"] = {
            "max_cells": budget.max_cells,
            "deadline": budget.deadline,
            "min_resolution": budget.min_resolution,
        }
    return payload


def _encode_pricing(pricing: DemandAdjustedPricing | None) -> dict[str, Any] | None:
    if pricing is None:
        return None
    return {
        "sensitivity": pricing.sensitivity,
        "base": {
            "base": pricing.base.base,
            "low_factor": pricing.base.low_factor,
            "high_factor": pricing.base.high_factor,
        },
    }


def _encode_recovery(encoder: _Encoder, recovery: RecoveryManager | None) -> dict[str, Any] | None:
    if recovery is None:
        return None
    policy = recovery.policy
    return {
        "policy": {
            "max_revocations": policy.max_revocations,
            "backoff_base": policy.backoff_base,
            "backoff_factor": policy.backoff_factor,
            "backoff_cap": policy.backoff_cap,
        },
        "revocations": {str(uid): count for uid, count in recovery._revocations.items()},
        "retained": {
            str(uid): [_encode_window(encoder, window) for window in windows]
            for uid, windows in recovery._retained.items()
        },
    }


def snapshot_metascheduler(meta: Metascheduler) -> dict[str, Any]:
    """Encode the full state of a metascheduler run as one JSON document.

    Everything the scheduling cycle depends on is captured: the
    environment's per-node occupancy (reservations, local jobs, outage
    intervals), the workload trace, pending/future submissions,
    iteration reports, resilience counters, and — when fault recovery is
    configured — the retained phase-1 alternatives and per-job
    revocation budgets, so a restored run recovers exactly like the
    original would have.

    The recovery *audit log* (``RecoveryManager.events``) is
    observability, not scheduling state, and is not persisted.
    """
    encoder = _Encoder()
    environment = _encode_environment(encoder, meta.environment)
    trace = []
    for record in meta.trace:
        trace.append(
            {
                "job": encoder.job(record.job),
                "submit_time": record.submit_time,
                "state": record.state.value,
                "window": None
                if record.window is None
                else _encode_window(encoder, record.window),
                "scheduled_iteration": record.scheduled_iteration,
                "postponements": record.postponements,
                "resubmissions": record.resubmissions,
                "recoveries": record.recoveries,
            }
        )
    reports = [report.__dict__.copy() for report in meta.reports]
    recovery = _encode_recovery(encoder, meta.recovery)
    return {
        "format": CHECKPOINT_FORMAT,
        "environment": environment,
        "scheduler": _encode_scheduler(meta.scheduler.config),
        "metascheduler": {
            "period": meta.period,
            "horizon": meta.horizon,
            "min_slot_length": meta.min_slot_length,
            "max_batch_size": meta.max_batch_size,
            "max_postponements": meta.max_postponements,
            "max_pending": meta.max_pending,
            "admission_rejections": meta.admission_rejections,
            "iteration": meta._iteration,
            "pending": [job.uid for job in meta._pending],
            "submissions": [[time, job.uid] for time, job in meta._submissions],
            "outage_counts": dict(meta._outage_counts),
            "revoked_at": {str(uid): tick for uid, tick in meta._revoked_at.items()},
            "demand_pricing": _encode_pricing(meta.demand_pricing),
            "recovery": recovery,
        },
        "trace": trace,
        "reports": reports,
        # The interned resource table last: encoding the environment and
        # every window above fills it.
        "resources": list(encoder.resources.values()),
    }


# --------------------------------------------------------------------- #
# Snapshot decoding                                                     #
# --------------------------------------------------------------------- #


def _decode_resources(data: dict[str, Any]) -> dict[int, Resource]:
    resources: dict[int, Resource] = {}
    for payload in data.get("resources", []):
        resource = Resource(
            name=str(payload["name"]),
            performance=_finite(payload["performance"], "resource performance"),
            price=_finite(payload["price"], "resource price"),
            uid=int(payload["uid"]),
        )
        resources[resource.uid] = resource
    return resources


def _resource_of(resources: dict[int, Resource], uid: int) -> Resource:
    try:
        return resources[uid]
    except KeyError:
        raise CheckpointMismatchError(
            f"snapshot references undeclared resource uid {uid}"
        ) from None


def _decode_slot(payload: dict[str, Any], resources: dict[int, Resource]) -> Slot:
    return Slot(
        _resource_of(resources, int(payload["resource"])),
        _finite(payload["start"], "slot start"),
        _finite(payload["end"], "slot end"),
        price=_finite(payload["price"], "slot price"),
    )


def _decode_window(payload: dict[str, Any], resources: dict[int, Resource]) -> Window:
    request = _decode_request(payload["request"])
    allocations = [
        TaskAllocation(
            _decode_slot(item["source"], resources),
            _finite(item["start"], "allocation start"),
            _finite(item["end"], "allocation end"),
        )
        for item in payload["allocations"]
    ]
    return Window(request, allocations)


def _decode_job(payload: dict[str, Any]) -> Job:
    return Job(
        _decode_request(payload["request"]),
        name=str(payload["name"]),
        priority=int(payload["priority"]),
        uid=int(payload["uid"]),
    )


def _decode_environment(
    data: dict[str, Any], resources: dict[int, Resource]
) -> VOEnvironment:
    clusters = []
    for cluster_payload in data["clusters"]:
        nodes = []
        for node_payload in cluster_payload["nodes"]:
            resource = _resource_of(resources, int(node_payload["resource"]))
            node = ComputeNode(
                resource.name, performance=resource.performance, price=resource.price
            )
            # Re-intern the snapshot's resource so uids (and therefore
            # window → node references) survive the round trip.
            node.resource = resource
            for start, end, label in node_payload["intervals"]:
                node.schedule.reserve(
                    _finite(start, "interval start"),
                    _finite(end, "interval end"),
                    str(label),
                )
            nodes.append(node)
        clusters.append(Cluster(str(cluster_payload["name"]), nodes))
    return VOEnvironment(clusters)


def _decode_scheduler(data: dict[str, Any]) -> BatchScheduler:
    kwargs: dict[str, Any] = {}
    if data.get("budget") is not None:
        from repro.core.optimize import OptimizationBudget

        budget = data["budget"]
        kwargs["budget"] = OptimizationBudget(
            max_cells=budget.get("max_cells"),
            deadline=budget.get("deadline"),
            min_resolution=budget.get("min_resolution", 50),
        )
    config = SchedulerConfig(
        algorithm=SlotSearchAlgorithm(data["algorithm"]),
        objective=Criterion(data["objective"]),
        rho=float(data["rho"]),
        resolution=int(data["resolution"]),
        max_alternatives_per_job=data.get("max_alternatives_per_job"),
        infeasible_policy=InfeasiblePolicy(data["infeasible_policy"]),
        **kwargs,
    )
    return BatchScheduler(config)


def _decode_pricing(data: dict[str, Any] | None) -> DemandAdjustedPricing | None:
    if data is None:
        return None
    base = data["base"]
    return DemandAdjustedPricing(
        base=ExponentialPricing(
            base=float(base["base"]),
            low_factor=float(base["low_factor"]),
            high_factor=float(base["high_factor"]),
        ),
        sensitivity=float(data["sensitivity"]),
    )


def _decode_recovery(
    data: dict[str, Any] | None, resources: dict[int, Resource]
) -> RecoveryManager | None:
    if data is None:
        return None
    policy_payload = data["policy"]
    manager = RecoveryManager(
        RetryPolicy(
            max_revocations=policy_payload["max_revocations"],
            backoff_base=float(policy_payload["backoff_base"]),
            backoff_factor=float(policy_payload["backoff_factor"]),
            backoff_cap=float(policy_payload["backoff_cap"]),
        )
    )
    manager._revocations = {
        int(uid): int(count) for uid, count in data.get("revocations", {}).items()
    }
    manager._retained = {
        int(uid): [_decode_window(window, resources) for window in windows]
        for uid, windows in data.get("retained", {}).items()
    }
    return manager


def _advance_uid_counters(resources: dict[int, Resource], jobs: list[Job]) -> None:
    """Keep auto-assigned uids ahead of everything the snapshot restored.

    New jobs and resources created after a restore must never collide
    with restored uids — a collision would alias two distinct jobs in
    the trace (keyed by uid) and corrupt the run silently.
    """
    if resources:
        floor = max(resources) + 1
        current = next(resource_module._resource_counter)
        resource_module._resource_counter = itertools.count(max(current, floor))
    if jobs:
        floor = max(job.uid for job in jobs) + 1
        current = next(job_module._job_counter)
        job_module._job_counter = itertools.count(max(current, floor))


def restore_metascheduler(data: dict[str, Any]) -> Metascheduler:
    """Rebuild a metascheduler from :func:`snapshot_metascheduler` output.

    Raises:
        CheckpointMismatchError: On an unknown format tag or dangling
            internal references.
    """
    if data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointMismatchError(
            f"unsupported checkpoint format {data.get('format')!r}; "
            f"expected {CHECKPOINT_FORMAT!r}"
        )
    resources = _decode_resources(data)
    environment = _decode_environment(data["environment"], resources)
    state = data["metascheduler"]
    meta = Metascheduler(
        environment,
        scheduler=_decode_scheduler(data["scheduler"]),
        period=float(state["period"]),
        horizon=float(state["horizon"]),
        min_slot_length=float(state["min_slot_length"]),
        max_batch_size=state["max_batch_size"],
        max_postponements=state["max_postponements"],
        max_pending=state.get("max_pending"),
        demand_pricing=_decode_pricing(state.get("demand_pricing")),
        recovery=_decode_recovery(state.get("recovery"), resources),
    )
    jobs_by_uid: dict[int, Job] = {}
    for entry in data.get("trace", []):
        job = _decode_job(entry["job"])
        jobs_by_uid[job.uid] = job
        record = meta.trace.add(job, float(entry["submit_time"]))
        record.state = JobState(entry["state"])
        record.window = (
            None
            if entry["window"] is None
            else _decode_window(entry["window"], resources)
        )
        record.scheduled_iteration = entry["scheduled_iteration"]
        record.postponements = int(entry["postponements"])
        record.resubmissions = int(entry["resubmissions"])
        record.recoveries = int(entry["recoveries"])

    def job_of(uid: int) -> Job:
        try:
            return jobs_by_uid[uid]
        except KeyError:
            raise CheckpointMismatchError(
                f"snapshot references undeclared job uid {uid}"
            ) from None

    meta._pending = [job_of(int(uid)) for uid in state.get("pending", [])]
    meta._submissions = [
        (float(time), job_of(int(uid))) for time, uid in state.get("submissions", [])
    ]
    meta._iteration = int(state["iteration"])
    meta._outage_counts.update(
        {key: int(value) for key, value in state.get("outage_counts", {}).items()}
    )
    meta._revoked_at = {
        int(uid): int(tick) for uid, tick in state.get("revoked_at", {}).items()
    }
    meta.admission_rejections = int(state.get("admission_rejections", 0))
    meta.reports = [IterationReport(**report) for report in data.get("reports", [])]
    _advance_uid_counters(resources, list(jobs_by_uid.values()))
    return meta


# --------------------------------------------------------------------- #
# Snapshot files                                                        #
# --------------------------------------------------------------------- #


def save_snapshot(
    data: dict[str, Any], path: str | Path, *, fs: FileSystem | None = None
) -> Path:
    """Write a snapshot document atomically: tmp + fsync + rename.

    A crash at any point leaves either the previous snapshot or the new
    one — never a torn file.  The temporary file lives next to the
    target so the rename stays within one filesystem.  All I/O goes
    through ``fs`` (the real filesystem by default) so the chaos engine
    can fail the write, the fsync, or the publishing rename.

    Raises:
        PersistenceError: When the snapshot cannot be written.
    """
    path = Path(path)
    fs = fs if fs is not None else REAL_FS
    tmp = path.with_name(path.name + ".tmp")
    telemetry = get_telemetry()
    began = perf_counter() if telemetry.enabled else 0.0
    try:
        with fs.open(tmp, "w") as stream:
            fs.write(
                stream, json.dumps(data, separators=(",", ":"), sort_keys=True) + "\n"
            )
            fs.fsync(stream)
        fs.replace(tmp, path)
        fs.fsync_directory(path.parent)
    except OSError as error:
        raise PersistenceError(
            f"cannot write snapshot {str(path)!r}: {error}"
        ) from error
    if telemetry.enabled:
        telemetry.count("checkpoint.snapshots")
        telemetry.observe(
            "phase.seconds", perf_counter() - began, phase="checkpoint.snapshot"
        )
    return path


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a snapshot document written by :func:`save_snapshot`.

    Raises:
        PersistenceError: When the file is missing or unreadable.
        CheckpointMismatchError: When it parses but is not a snapshot.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise PersistenceError(
            f"cannot read snapshot {str(path)!r}: {error}"
        ) from error
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointMismatchError(
            f"snapshot {str(path)!r} is not valid JSON ({error.msg})"
        ) from None
    if not isinstance(data, dict):
        raise CheckpointMismatchError(
            f"snapshot {str(path)!r} must be a JSON object"
        )
    return data


# --------------------------------------------------------------------- #
# The durable wrapper                                                   #
# --------------------------------------------------------------------- #


class DurableMetascheduler:
    """Crash-safe façade over a :class:`Metascheduler`.

    Wraps the scheduling cycle's mutating entry points — :meth:`submit`,
    :meth:`run_iteration`, :meth:`run`, :meth:`inject_outage` — and
    journals each as a command after it executes.  Every
    ``snapshot_every`` iterations the full state is snapshotted
    atomically and the journal compacted, bounding replay work.

    Args:
        meta: The metascheduler to make durable.
        directory: Where ``snapshot.json`` and ``journal.jsonl`` live
            (created if missing).
        snapshot_every: Iterations between automatic snapshots.
        fsync: Force journal appends to stable storage per record.
        fs: Filesystem seam for all durable writes (journal appends and
            snapshot publishing).  Defaults to the real filesystem; the
            chaos engine injects a fault-raising one.
    """

    def __init__(
        self,
        meta: Metascheduler,
        directory: str | Path,
        *,
        snapshot_every: int = 25,
        fsync: bool = True,
        fs: FileSystem | None = None,
        _restored: bool = False,
    ) -> None:
        if snapshot_every < 1:
            raise PersistenceError(
                f"snapshot_every must be >= 1, got {snapshot_every!r}"
            )
        self.meta = meta
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self._since_snapshot = 0
        self._fs = fs if fs is not None else REAL_FS
        self._journal = JournalWriter(
            self.directory / JOURNAL_NAME,
            fsync=fsync,
            header={"checkpoint": CHECKPOINT_FORMAT},
            fs=self._fs,
        )
        if not _restored:
            # A snapshot must always exist: restore() without one would
            # have no base state to replay the journal onto.
            self.snapshot()

    # -------------------------------------------------------------- #
    # Journaled commands                                              #
    # -------------------------------------------------------------- #

    def submit(self, job: Job, at_time: float = 0.0) -> None:
        """Queue a global job and journal the submission.

        Raises:
            AdmissionRejectedError: Propagated from the metascheduler;
                shed submissions are *not* journaled (they changed no
                state).
        """
        self.meta.submit(job, at_time)
        encoder = _Encoder()
        self._journal.append(
            "submit", {"time": at_time, "job": encoder.job(job)}
        )

    def run_iteration(self, now: float) -> IterationReport:
        """Execute one scheduling iteration durably."""
        report = self.meta.run_iteration(now)
        self._journal.append("iteration", {"now": now})
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_every:
            self.snapshot()
        return report

    def run(self, until: float, *, start: float = 0.0) -> list[IterationReport]:
        """Run iterations every ``period`` from ``start`` until ``until``.

        Mirrors :meth:`Metascheduler.run`, journaling every tick plus
        the final completion sweep.
        """
        first = len(self.meta.reports)
        now = start
        while now <= until:
            self.run_iteration(now)
            now += self.meta.period
        self.mark_completions(until)
        return self.meta.reports[first:]

    def mark_completions(self, now: float) -> int:
        """Sweep finished windows into COMPLETED, durably."""
        completed = self.meta.trace.mark_completions(now)
        self._journal.append("completions", {"now": now})
        return completed

    def inject_outage(self, node: ComputeNode, start: float, end: float) -> list[Job]:
        """Fail a node durably; see :meth:`Metascheduler.inject_outage`."""
        resubmitted = self.meta.inject_outage(node, start, end)
        self._journal.append(
            "outage", {"node": node.name, "start": start, "end": end}
        )
        return resubmitted

    # -------------------------------------------------------------- #
    # Snapshots and restore                                           #
    # -------------------------------------------------------------- #

    @property
    def snapshot_path(self) -> Path:
        """Location of the current snapshot document."""
        return self.directory / SNAPSHOT_NAME

    @property
    def journal_path(self) -> Path:
        """Location of the command journal."""
        return self.directory / JOURNAL_NAME

    def snapshot(self) -> Path:
        """Write an atomic snapshot now; resets the journal watermark."""
        data = snapshot_metascheduler(self.meta)
        data["journal_seq"] = self._journal.next_seq
        telemetry = get_telemetry()
        if telemetry.enabled and telemetry.context is not None:
            # A restored run re-attaches this context, so trace shards
            # recorded before and after the crash carry the same trace id
            # and merge into one tree.
            data["trace_context"] = telemetry.context.to_dict()
        path = save_snapshot(data, self.snapshot_path, fs=self._fs)
        self._since_snapshot = 0
        return path

    def close(self) -> None:
        """Snapshot once more and close the journal."""
        self.snapshot()
        self._journal.close()

    def __enter__(self) -> "DurableMetascheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        *,
        snapshot_every: int = 25,
        fsync: bool = True,
        fs: FileSystem | None = None,
    ) -> "DurableMetascheduler":
        """Rebuild the durable run from its snapshot + journal.

        Loads the latest snapshot and re-executes every journaled
        command at or past the snapshot's watermark.  A torn trailing
        journal record is skipped with a warning (the crash artefact);
        corruption elsewhere raises
        :class:`~repro.core.errors.JournalCorruptError`.

        Raises:
            PersistenceError: When no snapshot exists in ``directory``.
        """
        directory = Path(directory)
        snapshot = load_snapshot(directory / SNAPSHOT_NAME)
        meta = restore_metascheduler(snapshot)
        watermark = int(snapshot.get("journal_seq", 0))
        records = read_journal(directory / JOURNAL_NAME)
        replayed = 0
        nodes_by_name = {node.name: node for node in meta.environment.nodes()}
        for record in records:
            if record.seq < watermark:
                continue
            if record.kind == "submit":
                meta.submit(_decode_job(record.data["job"]), record.data["time"])
            elif record.kind == "iteration":
                meta.run_iteration(float(record.data["now"]))
            elif record.kind == "completions":
                meta.trace.mark_completions(float(record.data["now"]))
            elif record.kind == "outage":
                node = nodes_by_name.get(str(record.data["node"]))
                if node is None:
                    raise CheckpointMismatchError(
                        f"journal outage references unknown node "
                        f"{record.data['node']!r}"
                    )
                meta.inject_outage(
                    node, float(record.data["start"]), float(record.data["end"])
                )
            elif record.kind == "journal":
                continue
            else:
                raise CheckpointMismatchError(
                    f"unknown journal command {record.kind!r} (seq {record.seq})"
                )
            replayed += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("checkpoint.restores")
            telemetry.count("checkpoint.replayed_commands", replayed)
            context_data = snapshot.get("trace_context")
            if context_data is not None and telemetry.context is None:
                telemetry.context = TraceContext.from_dict(context_data)
        durable = cls(
            meta,
            directory,
            snapshot_every=snapshot_every,
            fsync=fsync,
            fs=fs,
            _restored=True,
        )
        return durable
