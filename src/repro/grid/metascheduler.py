"""The iterative metascheduler of the virtual organization.

Section 2 of the paper: "job batch scheduling runs iteratively on
periodically updated local schedules"; a job that cannot accumulate its
``N`` slots "is joined another batch, and its scheduling is postponed
till the next iteration".  :class:`Metascheduler` implements that cycle
on top of the grid substrate:

1. every ``period`` time units, collect the pending global jobs into a
   batch (submission order = priority, so older jobs go first);
2. ask the environment for the vacant-slot list over the lookahead
   horizon starting *now*;
3. run the two-phase :class:`~repro.core.scheduler.BatchScheduler`;
4. commit the chosen windows as reservations; postponed jobs stay in
   the queue for the next iteration (up to an optional retry limit).

The run produces a :class:`~repro.grid.trace.WorkloadTrace` plus one
:class:`IterationReport` per tick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AdmissionRejectedError, InvalidRequestError
from repro.core.job import Batch, Job
from repro.core.pricing import DemandAdjustedPricing
from repro.core.scheduler import (
    BatchScheduler,
    InfeasiblePolicy,
    SchedulerConfig,
)
from repro.grid.environment import VOEnvironment
from repro.grid.resilience import (
    RecoveryEvent,
    RecoveryManager,
    RecoveryOutcome,
    RetryPolicy,
)
from repro.grid.trace import JobState, WorkloadTrace
from repro.grid.node import ComputeNode
from repro.obs.spans import NOOP_SPAN
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = ["IterationReport", "Metascheduler"]


@dataclass(frozen=True)
class IterationReport:
    """What one scheduling iteration did.

    Attributes:
        index: Iteration number (0-based).
        time: Tick time of the iteration.
        slot_count: Vacant slots published by the environment.
        batch_size: Jobs in this iteration's batch.
        scheduled: Jobs that received (and committed) a window.
        postponed: Jobs pushed to the next iteration.
        rejected: Jobs dropped for exceeding the retry limit.
        total_alternatives: Phase-1 alternatives found for the batch.
        used_fallback: Whether the earliest-alternative fallback fired.
        degraded: Whether phase 2 ran under a degraded regime this
            iteration (stepped-down DP resolution or the greedy
            fallback) because of a deadline/operation budget.
        revocations: Windows revoked by outages since the previous tick.
        hot_swaps: Revocations recovered from retained alternatives in
            the same event (no queue round trip).
        replacements: Revocations recovered by immediate re-search.
        recovery_rejections: Jobs dropped for exceeding the per-job
            revocation budget since the previous tick.
    """

    index: int
    time: float
    slot_count: int
    batch_size: int
    scheduled: int
    postponed: int
    rejected: int
    total_alternatives: int
    used_fallback: bool
    degraded: bool = False
    revocations: int = 0
    hot_swaps: int = 0
    replacements: int = 0
    recovery_rejections: int = 0


class Metascheduler:
    """Runs the periodic batch-scheduling cycle against a VO environment."""

    def __init__(
        self,
        environment: VOEnvironment,
        scheduler: BatchScheduler | None = None,
        *,
        period: float = 60.0,
        horizon: float = 600.0,
        min_slot_length: float = 0.0,
        max_batch_size: int | None = None,
        max_postponements: int | None = None,
        max_pending: int | None = None,
        demand_pricing: DemandAdjustedPricing | None = None,
        recovery: RecoveryManager | RetryPolicy | None = None,
        search_shards: int | None = None,
    ) -> None:
        """Configure the cycle.

        Args:
            environment: The VO resource pool.
            scheduler: Two-phase scheduler; defaults to AMP +
                time-minimization with the EARLIEST fallback, which keeps
                a live VO making progress when the eq. (2) quota is tight.
            period: Time between scheduling iterations.
            horizon: Lookahead of the published slot list.
            min_slot_length: Gaps shorter than this are not published.
            max_batch_size: Cap on jobs per batch (oldest first);
                overflow simply waits (it is not a postponement).
            max_postponements: Drop a job after this many postponements
                (``None`` retries forever, as the paper's scheme does).
            max_pending: Bounded admission: once the backlog (pending
                jobs plus not-yet-absorbed submissions) reaches this
                limit, further :meth:`submit` calls are shed with a
                typed :class:`~repro.core.errors.AdmissionRejectedError`
                instead of growing the queue without bound (``None``
                admits everything, the legacy behaviour).
            demand_pricing: Optional supply-and-demand pricing (paper
                Section 7 future work): at every iteration, published
                slot prices are scaled by the demand multiplier for the
                environment's utilization over the *preceding* period.
            recovery: Opt-in fault recovery.  ``None`` (the default)
                keeps the legacy behaviour — an outage sends every
                revoked job straight back to the queue.  A
                :class:`~repro.grid.resilience.RecoveryManager` (or a
                bare :class:`~repro.grid.resilience.RetryPolicy`, which
                gets wrapped) enables the hot-swap → re-search →
                backoff-resubmit ladder with per-job revocation budgets.
            search_shards: Partition-parallel phase-1 search for the
                *default* scheduler (byte-identical to serial; see
                :mod:`repro.core.shard_search`).  Only valid when
                ``scheduler`` is not given — a caller-supplied scheduler
                carries its own :class:`SchedulerConfig`, and silently
                overriding it would hide the conflict.
        """
        if period <= 0:
            raise InvalidRequestError(f"period must be positive, got {period!r}")
        if horizon <= 0:
            raise InvalidRequestError(f"horizon must be positive, got {horizon!r}")
        if max_batch_size is not None and max_batch_size < 1:
            raise InvalidRequestError(
                f"max_batch_size must be >= 1, got {max_batch_size!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise InvalidRequestError(
                f"max_pending must be >= 1, got {max_pending!r}"
            )
        if search_shards is not None and scheduler is not None:
            raise InvalidRequestError(
                "search_shards applies to the default scheduler only; "
                "set SchedulerConfig.search_shards on the supplied scheduler"
            )
        self.environment = environment
        self.scheduler = scheduler or BatchScheduler(
            SchedulerConfig(
                infeasible_policy=InfeasiblePolicy.EARLIEST,
                search_shards=search_shards if search_shards is not None else 1,
            )
        )
        self.period = period
        self.horizon = horizon
        self.min_slot_length = min_slot_length
        self.max_batch_size = max_batch_size
        self.max_postponements = max_postponements
        self.max_pending = max_pending
        #: Submissions shed by bounded admission over the run's lifetime.
        self.admission_rejections = 0
        self.demand_pricing = demand_pricing
        if isinstance(recovery, RetryPolicy):
            recovery = RecoveryManager(recovery)
        self.recovery = recovery
        self.trace = WorkloadTrace()
        self.reports: list[IterationReport] = []
        self._pending: list[Job] = []
        self._submissions: list[tuple[float, Job]] = []
        self._iteration = 0
        # Resilience counters accumulated between ticks, flushed into the
        # next IterationReport; and, per revoked-and-resubmitted job, the
        # iteration index current at revocation (for recovery latency).
        self._outage_counts = {
            "revocations": 0,
            "hot_swaps": 0,
            "replacements": 0,
            "recovery_rejections": 0,
        }
        self._revoked_at: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Submission                                                         #
    # ------------------------------------------------------------------ #

    def submit(self, job: Job, at_time: float = 0.0) -> None:
        """Queue a global job, effective from ``at_time``.

        Raises:
            AdmissionRejectedError: When bounded admission is configured
                (``max_pending``) and the backlog is already at the
                limit.  The job is *not* queued and does not enter the
                workload trace; the caller owns the shed policy.
        """
        if self.max_pending is not None and self.backlog() >= self.max_pending:
            self.admission_rejections += 1
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.count("meta.admission_rejected")
                telemetry.event(
                    "meta.admission_rejected",
                    job=job.name,
                    backlog=self.backlog(),
                    limit=self.max_pending,
                )
            raise AdmissionRejectedError(
                f"job {job.name!r} rejected: backlog {self.backlog()} is at the "
                f"admission limit {self.max_pending}",
                job_name=job.name,
                backlog=self.backlog(),
                limit=self.max_pending,
            )
        self.trace.add(job, at_time)
        self._submissions.append((at_time, job))
        self._submissions.sort(key=lambda pair: pair[0])

    def pending_jobs(self) -> list[Job]:
        """Jobs currently waiting for a window (oldest first)."""
        return list(self._pending)

    # ------------------------------------------------------------------ #
    # The cycle                                                          #
    # ------------------------------------------------------------------ #

    def _absorb_arrivals(self, now: float) -> None:
        arrived = [job for time, job in self._submissions if time <= now]
        self._submissions = [
            (time, job) for time, job in self._submissions if time > now
        ]
        self._pending.extend(arrived)

    def run_iteration(self, now: float) -> IterationReport:
        """Execute one scheduling iteration at time ``now``."""
        telemetry = get_telemetry()
        if telemetry.enabled:
            iteration_span = telemetry.span(
                "meta.iteration", index=self._iteration, time=now
            )
        else:
            iteration_span = NOOP_SPAN
        with iteration_span:
            decisions = telemetry.decisions
            if decisions.enabled:
                # ``tick`` (not ``iteration``) on purpose: the experiment
                # runner owns the ``iteration`` scope key, whose binding
                # restarts the per-iteration decision sequence numbers.
                with decisions.scope(tick=self._iteration):
                    report = self._run_iteration(now, telemetry)
            else:
                report = self._run_iteration(now, telemetry)
        return report

    def _run_iteration(self, now: float, telemetry: Telemetry) -> IterationReport:
        self._absorb_arrivals(now)
        self.trace.mark_completions(now)
        if self.recovery is not None:
            self.recovery.prune(now)

        batch_jobs = self._pending
        if self.max_batch_size is not None:
            batch_jobs = batch_jobs[: self.max_batch_size]
        # Older jobs get higher priority (lower number): submission order.
        batch = Batch(
            Job(job.request, name=job.name, priority=position, uid=job.uid)
            for position, job in enumerate(batch_jobs)
        )
        by_uid = {job.uid: job for job in batch_jobs}

        price_multiplier = 1.0
        if self.demand_pricing is not None:
            window_start = max(0.0, now - self.period)
            utilization = self.environment.utilization(
                window_start, window_start + self.period
            )
            price_multiplier = self.demand_pricing.multiplier(utilization)
        slots = self.environment.vacant_slot_list(
            now,
            now + self.horizon,
            min_length=self.min_slot_length,
            price_multiplier=price_multiplier,
        )
        outcome = self.scheduler.schedule(slots, batch)
        decisions = telemetry.decisions
        record_decisions = decisions.enabled

        scheduled = 0
        for scheduled_job, window in outcome.scheduled_jobs.items():
            original = by_uid[scheduled_job.uid]
            self.environment.commit_window(original.name, window)
            self.trace.mark_scheduled(original, window, self._iteration)
            self._pending.remove(original)
            scheduled += 1
            if record_decisions:
                decisions.emit(
                    "meta.committed",
                    job=original.name,
                    start=window.start,
                    cost=window.cost,
                )
            if self.recovery is not None:
                # Keep the job's unused phase-1 alternatives around: they
                # are the hot-swap candidates should an outage revoke the
                # committed window (batch clones share uids, so the
                # alternatives map keys match the scheduled clone).
                alternatives = outcome.search.alternatives.get(scheduled_job, ())
                self.recovery.retain(original, list(alternatives), window)
                revoked_at = self._revoked_at.pop(original.uid, None)
                if revoked_at is not None and telemetry.enabled:
                    telemetry.observe(
                        "resilience.recovery_latency_ticks",
                        float(self._iteration - revoked_at + 1),
                    )

        rejected = 0
        for postponed_job in outcome.postponed:
            original = by_uid[postponed_job.uid]
            self.trace.mark_postponed(original)
            record = self.trace.record_for(original)
            if (
                self.max_postponements is not None
                and record.postponements > self.max_postponements
            ):
                self.trace.mark_rejected(original)
                self._pending.remove(original)
                rejected += 1
                if self.recovery is not None:
                    self.recovery.discard(original)
                if record_decisions:
                    decisions.emit(
                        "meta.rejected",
                        job=original.name,
                        postponements=record.postponements,
                    )
            elif record_decisions:
                decisions.emit(
                    "meta.postponed",
                    job=original.name,
                    postponements=record.postponements,
                )

        resilience = self._outage_counts
        report = IterationReport(
            index=self._iteration,
            time=now,
            slot_count=len(slots),
            batch_size=len(batch),
            scheduled=scheduled,
            postponed=len(outcome.postponed) - rejected,
            rejected=rejected,
            total_alternatives=outcome.search.total_alternatives,
            used_fallback=outcome.used_fallback,
            degraded=outcome.degraded,
            revocations=resilience["revocations"],
            hot_swaps=resilience["hot_swaps"],
            replacements=resilience["replacements"],
            recovery_rejections=resilience["recovery_rejections"],
        )
        self._outage_counts = {key: 0 for key in resilience}
        self.reports.append(report)
        self._iteration += 1
        if telemetry.enabled:
            self._record_iteration(telemetry, report, price_multiplier)
        return report

    def _record_iteration(
        self, telemetry: Telemetry, report: IterationReport, price_multiplier: float
    ) -> None:
        """Feed one iteration's outcome into the telemetry layer.

        Counter and gauge definitions deliberately mirror the audit
        log: ``meta.scheduled``/``meta.postponements``/``meta.rejected``
        accumulate the same quantities the per-job
        :class:`~repro.grid.trace.JobRecord` fields do, and the
        ``meta.jobs{state=...}`` gauges are exactly
        :attr:`~repro.grid.trace.TraceSummary.state_counts`, so a
        metrics dashboard and ``trace.summary()`` can never disagree.
        """
        if not telemetry.enabled:
            return
        telemetry.count("meta.iterations")
        telemetry.count("meta.scheduled", report.scheduled)
        telemetry.count("meta.postponements", report.postponed)
        telemetry.count("meta.rejected", report.rejected)
        if report.used_fallback:
            telemetry.count("meta.fallbacks")
        if report.degraded:
            telemetry.count("meta.degraded_iterations")
        telemetry.set_gauge("meta.backlog", self.backlog())
        telemetry.observe("meta.batch_size", report.batch_size)
        telemetry.observe("meta.slot_count", report.slot_count)
        for state, jobs in self.trace.state_counts().items():
            telemetry.set_gauge("meta.jobs", jobs, state=state)
        telemetry.event(
            "meta.iteration",
            index=report.index,
            time=report.time,
            slot_count=report.slot_count,
            batch_size=report.batch_size,
            scheduled=report.scheduled,
            postponed=report.postponed,
            rejected=report.rejected,
            total_alternatives=report.total_alternatives,
            used_fallback=report.used_fallback,
            degraded=report.degraded,
            price_multiplier=price_multiplier,
            backlog=self.backlog(),
            revocations=report.revocations,
            hot_swaps=report.hot_swaps,
            replacements=report.replacements,
            recovery_rejections=report.recovery_rejections,
        )

    def run(self, until: float, *, start: float = 0.0) -> list[IterationReport]:
        """Run iterations every ``period`` from ``start`` until ``until``.

        Returns the reports of the iterations executed by this call.
        """
        if until < start:
            raise InvalidRequestError(f"until {until!r} precedes start {start!r}")
        first = len(self.reports)
        now = start
        while now <= until:
            self.run_iteration(now)
            now += self.period
        self.trace.mark_completions(until)
        return self.reports[first:]

    # ------------------------------------------------------------------ #
    # Dynamics (Section 7): node failures                                #
    # ------------------------------------------------------------------ #

    def inject_outage(self, node: ComputeNode, start: float, end: float) -> list[Job]:
        """Fail ``node`` during ``[start, end)`` and recover revoked jobs.

        Jobs whose reservations overlapped the outage lose their windows
        (synchronous tasks: losing one node kills the co-allocation).
        Only jobs *live at outage start* — SCHEDULED with a window still
        running past ``start`` — are revoked; completed jobs' historical
        reservations are preserved by the environment, so utilization
        and owner income stay correct.

        Without a :attr:`recovery` manager every revoked job returns to
        the pending queue and competes again at the next iteration (the
        legacy behaviour).  With one, each revocation walks the recovery
        ladder — hot-swap a retained phase-1 alternative, else an
        immediate single-job re-search, else backoff resubmission — and
        a job over its revocation budget is rejected with a typed
        :class:`~repro.core.errors.RecoveryExhaustedError` recorded on
        its :class:`~repro.grid.resilience.RecoveryEvent`.

        Returns:
            The jobs sent back to the queue (in original submission
            order); jobs recovered in place or rejected are not in it.
        """
        telemetry = get_telemetry()
        live: dict[str, object] = {}
        for record in self.trace:
            if (
                record.state is JobState.SCHEDULED
                and record.window is not None
                and record.window.end > start
            ):
                live[record.job.name] = record
        killed = set(
            self.environment.inject_outage(node, start, end, live_jobs=live.keys())
        )
        if telemetry.enabled:
            telemetry.count("resilience.outages")
        resubmitted: list[Job] = []
        for name, record in live.items():
            if name not in killed:
                continue
            job = record.job
            self._outage_counts["revocations"] += 1
            if telemetry.enabled:
                telemetry.count("resilience.revocations")
            if self.recovery is None:
                self.trace.mark_resubmitted(job)
                self._pending.append(job)
                resubmitted.append(job)
                continue
            if self._recover(job, start, telemetry) is RecoveryOutcome.RESUBMIT:
                resubmitted.append(job)
        return resubmitted

    def _recover(self, job: Job, now: float, telemetry: Telemetry) -> RecoveryOutcome:
        """Walk the recovery ladder for one revoked job; returns the rung."""
        manager = self.recovery
        revocations = manager.register_revocation(job)
        error = manager.exhausted(job)
        if error is not None:
            self.trace.mark_rejected(job)
            manager.discard(job)
            self._revoked_at.pop(job.uid, None)
            self._outage_counts["recovery_rejections"] += 1
            if telemetry.enabled:
                telemetry.count("resilience.rejections")
            manager.record(
                RecoveryEvent(
                    time=now,
                    job_name=job.name,
                    outcome=RecoveryOutcome.REJECT,
                    revocations=revocations,
                    error=error,
                )
            )
            return RecoveryOutcome.REJECT
        config = self.scheduler.config
        window = manager.find_hot_swap(
            job, self.environment, now, algorithm=config.algorithm, rho=config.rho
        )
        if window is not None:
            self.environment.commit_window(job.name, window)
            manager.consume(job, window)
            self.trace.mark_recovered(job, window, self._iteration)
            self._revoked_at.pop(job.uid, None)
            self._outage_counts["hot_swaps"] += 1
            if telemetry.enabled:
                telemetry.count("resilience.hotswap_hits")
                telemetry.observe("resilience.recovery_latency_ticks", 0.0)
            manager.record(
                RecoveryEvent(
                    time=now,
                    job_name=job.name,
                    outcome=RecoveryOutcome.HOT_SWAP,
                    revocations=revocations,
                    window=window,
                )
            )
            return RecoveryOutcome.HOT_SWAP
        if telemetry.enabled:
            telemetry.count("resilience.hotswap_misses")
        window = manager.research(
            job,
            self.environment,
            now,
            horizon=self.horizon,
            min_slot_length=self.min_slot_length,
            algorithm=config.algorithm,
            rho=config.rho,
        )
        if window is not None:
            self.environment.commit_window(job.name, window)
            self.trace.mark_recovered(job, window, self._iteration)
            self._revoked_at.pop(job.uid, None)
            self._outage_counts["replacements"] += 1
            if telemetry.enabled:
                telemetry.count("resilience.replacements")
                telemetry.observe("resilience.recovery_latency_ticks", 0.0)
            manager.record(
                RecoveryEvent(
                    time=now,
                    job_name=job.name,
                    outcome=RecoveryOutcome.RESEARCH,
                    revocations=revocations,
                    window=window,
                )
            )
            return RecoveryOutcome.RESEARCH
        delay = manager.policy.delay(revocations)
        self.trace.mark_resubmitted(job)
        self._revoked_at[job.uid] = self._iteration
        if delay > 0.0:
            # Backoff: the job re-enters the queue only once the delay
            # elapses, via the ordinary arrival absorption.
            self._submissions.append((now + delay, job))
            self._submissions.sort(key=lambda pair: pair[0])
        else:
            self._pending.append(job)
        if telemetry.enabled:
            telemetry.count("resilience.resubmissions")
        manager.record(
            RecoveryEvent(
                time=now,
                job_name=job.name,
                outcome=RecoveryOutcome.RESUBMIT,
                revocations=revocations,
                delay=delay,
            )
        )
        return RecoveryOutcome.RESUBMIT

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    def backlog(self) -> int:
        """Jobs submitted but not yet scheduled or rejected."""
        return len(self._pending) + len(self._submissions)

    def completed_jobs(self) -> int:
        """Jobs whose windows have already finished."""
        return len(self.trace.in_state(JobState.COMPLETED))
