"""Occupancy schedules — the local resource manager's view of one node.

In the paper's model slots "come from local resource managers or
schedulers in the node domains" (Section 2): every node keeps a schedule
of busy intervals (owner's local jobs plus reservations committed by the
metascheduler), and the vacant gaps between them are exactly the slots
published to the economic scheduler.

:class:`OccupancySchedule` maintains the busy intervals of one node as a
sorted, non-overlapping list and derives the vacant spans over any
horizon.  It is the bridge between the grid substrate and the core
algorithms' :class:`~repro.core.slot.SlotList`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import SlotListError

__all__ = ["BusyInterval", "OccupancySchedule"]


@dataclass(frozen=True, slots=True)
class BusyInterval:
    """One busy span on a node, with a label identifying its origin.

    Labels distinguish the owner's local jobs (``"local:..."``) from
    metascheduler reservations (``"job:..."``), which matters for the
    utilization split reported by the environment.
    """

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SlotListError(
                f"busy interval must have positive length, got [{self.start!r}, {self.end!r})"
            )

    @property
    def length(self) -> float:
        """Duration of the busy span."""
        return self.end - self.start


class OccupancySchedule:
    """Sorted, non-overlapping busy intervals of a single node."""

    __slots__ = ("_intervals",)

    def __init__(self) -> None:
        self._intervals: list[BusyInterval] = []

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[BusyInterval]:
        return iter(self._intervals)

    def intervals(self) -> tuple[BusyInterval, ...]:
        """The busy intervals in start order."""
        return tuple(self._intervals)

    def is_free(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` overlaps no busy interval."""
        if end <= start:
            return True
        index = bisect.bisect_left(self._intervals, start, key=lambda iv: iv.start)
        # The predecessor may still cover `start`.
        if index > 0 and self._intervals[index - 1].end > start:
            return False
        return not (index < len(self._intervals) and self._intervals[index].start < end)

    def reserve(self, start: float, end: float, label: str = "") -> BusyInterval:
        """Mark ``[start, end)`` busy.

        Raises:
            SlotListError: If the span overlaps an existing reservation
                (double booking is a scheduler bug, not a recoverable
                condition).
        """
        if not self.is_free(start, end):
            raise SlotListError(
                f"span [{start:g}, {end:g}) overlaps an existing reservation"
            )
        interval = BusyInterval(start, end, label)
        bisect.insort(self._intervals, interval, key=lambda iv: iv.start)
        return interval

    def release(self, interval: BusyInterval) -> None:
        """Remove a reservation previously returned by :meth:`reserve`.

        Raises:
            SlotListError: If the interval is not present.
        """
        try:
            self._intervals.remove(interval)
        except ValueError:
            raise SlotListError(f"interval {interval!r} is not reserved") from None

    def release_label(self, label: str) -> int:
        """Release every interval carrying ``label``; returns the count."""
        kept = [iv for iv in self._intervals if iv.label != label]
        removed = len(self._intervals) - len(kept)
        self._intervals = kept
        return removed

    def vacant_spans(self, horizon_start: float, horizon_end: float) -> list[tuple[float, float]]:
        """Vacant ``(start, end)`` gaps inside ``[horizon_start, horizon_end)``.

        Busy intervals outside the horizon are clipped; zero-length gaps
        are dropped.
        """
        if horizon_end < horizon_start:
            raise SlotListError(
                f"horizon end {horizon_end!r} precedes start {horizon_start!r}"
            )
        spans: list[tuple[float, float]] = []
        cursor = horizon_start
        for interval in self._intervals:
            if interval.end <= horizon_start:
                continue
            if interval.start >= horizon_end:
                break
            if interval.start > cursor:
                spans.append((cursor, min(interval.start, horizon_end)))
            cursor = max(cursor, interval.end)
            if cursor >= horizon_end:
                break
        if cursor < horizon_end:
            spans.append((cursor, horizon_end))
        return [(start, end) for start, end in spans if end > start]

    def busy_time(self, horizon_start: float, horizon_end: float, *, label_prefix: str | None = None) -> float:
        """Total busy time within the horizon, optionally by label prefix."""
        total = 0.0
        for interval in self._intervals:
            if label_prefix is not None and not interval.label.startswith(label_prefix):
                continue
            overlap = min(interval.end, horizon_end) - max(interval.start, horizon_start)
            if overlap > 0:
                total += overlap
        return total

    def utilization(self, horizon_start: float, horizon_end: float) -> float:
        """Busy fraction of the horizon, in ``[0, 1]``."""
        span = horizon_end - horizon_start
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time(horizon_start, horizon_end) / span)

    def clear_span(self, start: float, end: float) -> list[BusyInterval]:
        """Remove and return every interval overlapping ``[start, end)``.

        Used by outage injection: whatever occupied the span — local job
        or reservation — is evicted, and the caller decides what to do
        with the evicted work (kill local jobs, reschedule global ones).
        """
        if end <= start:
            return []
        evicted = [
            interval
            for interval in self._intervals
            if interval.start < end and start < interval.end
        ]
        self._intervals = [
            interval for interval in self._intervals if interval not in evicted
        ]
        return evicted

    def prune_before(self, time: float) -> int:
        """Drop intervals that end at or before ``time`` (history cleanup).

        Returns the number of intervals removed.  Used by long-running
        metascheduler simulations to keep schedules compact.
        """
        kept = [iv for iv in self._intervals if iv.end > time]
        removed = len(self._intervals) - len(kept)
        self._intervals = kept
        return removed
