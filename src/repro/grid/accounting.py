"""Economic accounting: billing statements for owners and users.

The economic model's point is that money changes hands: users pay for
windows, owners earn for reserved time.  This module turns a VO run
(environment + workload trace) into the two standard statements:

* :func:`owner_statement` — per-cluster income: reserved time sold,
  local time kept, utilization split (the owners' side of the paper's
  "balance of global and local job shares" that ``T*`` protects);
* :func:`user_statement` — per-job spend: window cost, unit price paid,
  wait time (the users' side: "the earliest launch with the lowest
  costs").

Both are plain dataclasses plus text renderers, so examples and
operators can print invoices without touching the internals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InvalidRequestError
from repro.grid.environment import VOEnvironment
from repro.grid.node import LOCAL_LABEL_PREFIX, RESERVATION_LABEL_PREFIX
from repro.grid.trace import JobState, WorkloadTrace
from repro.sim.ascii_plot import table

__all__ = [
    "OwnerLine",
    "OwnerStatement",
    "UserLine",
    "UserStatement",
    "owner_statement",
    "user_statement",
]


@dataclass(frozen=True)
class OwnerLine:
    """One cluster's earnings over the accounting period."""

    cluster: str
    nodes: int
    income: float
    reserved_time: float
    local_time: float
    utilization: float

    @property
    def global_share(self) -> float:
        """Fraction of busy time sold to the global flow."""
        busy = self.reserved_time + self.local_time
        return self.reserved_time / busy if busy else 0.0


@dataclass(frozen=True)
class OwnerStatement:
    """All clusters' earnings over ``[period_start, period_end)``."""

    period_start: float
    period_end: float
    lines: tuple[OwnerLine, ...]

    @property
    def total_income(self) -> float:
        """VO-wide owner income for the period."""
        return sum(line.income for line in self.lines)

    def render(self) -> str:
        """Text invoice, one row per cluster."""
        rows = [
            [
                line.cluster,
                str(line.nodes),
                f"{line.income:.2f}",
                f"{line.reserved_time:.1f}",
                f"{line.local_time:.1f}",
                f"{100 * line.global_share:.0f}%",
                f"{100 * line.utilization:.0f}%",
            ]
            for line in self.lines
        ]
        rows.append(["TOTAL", "", f"{self.total_income:.2f}", "", "", "", ""])
        return table(
            rows,
            header=["cluster", "nodes", "income", "sold time", "local time", "global share", "util"],
        )


def owner_statement(
    environment: VOEnvironment, period_start: float, period_end: float
) -> OwnerStatement:
    """Build the owners' statement for an accounting period.

    Raises:
        InvalidRequestError: For an empty period.
    """
    if period_end <= period_start:
        raise InvalidRequestError(
            f"accounting period must be non-empty, got [{period_start!r}, {period_end!r})"
        )
    lines = []
    for cluster in environment.clusters:
        reserved = sum(
            node.schedule.busy_time(
                period_start, period_end, label_prefix=RESERVATION_LABEL_PREFIX
            )
            for node in cluster
        )
        local = sum(
            node.schedule.busy_time(
                period_start, period_end, label_prefix=LOCAL_LABEL_PREFIX
            )
            for node in cluster
        )
        lines.append(
            OwnerLine(
                cluster=cluster.name,
                nodes=len(cluster),
                income=cluster.income(period_start, period_end),
                reserved_time=reserved,
                local_time=local,
                utilization=cluster.utilization(period_start, period_end),
            )
        )
    return OwnerStatement(
        period_start=period_start, period_end=period_end, lines=tuple(lines)
    )


@dataclass(frozen=True)
class UserLine:
    """One global job's bill."""

    job_name: str
    state: JobState
    cost: float | None
    unit_price: float | None
    execution_time: float | None
    wait_time: float | None


@dataclass(frozen=True)
class UserStatement:
    """Bills for every job of a workload trace."""

    lines: tuple[UserLine, ...]

    @property
    def total_spend(self) -> float:
        """Aggregate spend over billed (placed) jobs."""
        return sum(line.cost for line in self.lines if line.cost is not None)

    def render(self) -> str:
        """Text bill, one row per job."""
        def fmt(value: float | None, pattern: str = "{:.2f}") -> str:
            return "-" if value is None else pattern.format(value)

        rows = [
            [
                line.job_name,
                line.state.value,
                fmt(line.cost),
                fmt(line.unit_price),
                fmt(line.execution_time, "{:.1f}"),
                fmt(line.wait_time, "{:.1f}"),
            ]
            for line in self.lines
        ]
        rows.append(["TOTAL", "", f"{self.total_spend:.2f}", "", "", ""])
        return table(
            rows,
            header=["job", "state", "cost", "price/unit", "exec time", "wait"],
        )


def user_statement(trace: WorkloadTrace) -> UserStatement:
    """Build the users' statement from a workload trace."""
    lines = []
    for record in trace:
        window = record.window
        lines.append(
            UserLine(
                job_name=record.job.name,
                state=record.state,
                cost=record.cost,
                unit_price=window.unit_cost if window is not None else None,
                execution_time=window.length if window is not None else None,
                wait_time=record.wait_time,
            )
        )
    return UserStatement(lines=tuple(lines))
