"""Fault injection and recovery — the Section 7 dynamics made first-class.

The paper schedules on **non-dedicated** resources: owners' local jobs
and hardware failures can reclaim nodes at any time, and the slot lists
the metascheduler sees are only ever a snapshot.  This module supplies
both halves of a failure model for the grid substrate:

* **Injection** — :class:`FailureGenerator` draws seeded per-node
  MTBF/MTTR outage streams (exponential up-time and repair-time draws,
  one independent hash-derived stream per node name), feeding
  :meth:`~repro.grid.events.SimulationDriver.add_outage` for
  event-driven runs and :func:`apply_slot_outages` for the statistical
  experiment engine.  Streams are keyed by *node name*, not object
  identity, so they are reproducible across processes — the property
  that keeps :class:`~repro.sim.experiment.ParallelRunner` shards
  byte-identical for any worker count.

* **Recovery** — :class:`RecoveryManager` retains each scheduled job's
  *unused* phase-1 alternatives (phase 1 deliberately finds many; the
  seed implementation threw them away after phase 2).  When an outage
  revokes a job's window, recovery tries, in order:

  1. **hot-swap**: revalidate the retained alternatives against current
     node occupancy and commit the best still-feasible window in the
     same event, respecting the job's ``C``/budget constraints;
  2. **re-search**: an immediate single-job ALP/AMP search over the
     current vacant slots;
  3. **resubmission** with bounded exponential backoff
     (:class:`RetryPolicy`), competing again at a later batch iteration.

  A per-job revocation budget caps the loop: a job revoked more often
  than the policy allows is rejected with a typed
  :class:`~repro.core.errors.RecoveryExhaustedError` recorded on its
  :class:`RecoveryEvent` — graceful degradation, never a livelock.

Every step is observable through :mod:`repro.obs` (see
``docs/observability.md``) and surfaced per tick in
:class:`~repro.grid.metascheduler.IterationReport`.
"""

from __future__ import annotations

import enum
import hashlib
import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.errors import InvalidRequestError, RecoveryExhaustedError
from repro.core.index import SlotIndex
from repro.core.job import Job
from repro.core.search import SlotSearchAlgorithm
from repro.core.slot import Slot, SlotList
from repro.core.window import Window

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grid.environment import VOEnvironment

__all__ = [
    "FailureConfig",
    "FailureGenerator",
    "Outage",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryOutcome",
    "RetryPolicy",
    "apply_slot_outages",
    "derive_node_seed",
]


# --------------------------------------------------------------------- #
# Injection                                                             #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FailureConfig:
    """Parameters of the stochastic failure model.

    Attributes:
        mtbf: Mean time between failures per node (exponential up-time).
        mttr: Mean time to repair (exponential outage duration).
        seed: Master seed; per-node streams are hash-derived from it.
    """

    mtbf: float = 2000.0
    mttr: float = 200.0
    seed: int = 0

    def __post_init__(self) -> None:
        # NaN slips past a bare `<= 0` (every NaN comparison is False),
        # then poisons the exponential draws downstream — check
        # finiteness explicitly.
        if not math.isfinite(self.mtbf) or self.mtbf <= 0:
            raise InvalidRequestError(
                f"mtbf must be positive and finite, got {self.mtbf!r}"
            )
        if not math.isfinite(self.mttr) or self.mttr <= 0:
            raise InvalidRequestError(
                f"mttr must be positive and finite, got {self.mttr!r}"
            )


@dataclass(frozen=True)
class Outage:
    """One node failure: down during ``[start, start + duration)``."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        """Repair time."""
        return self.start + self.duration


def derive_node_seed(master_seed: int, node_name: str, *, salt: int = 0) -> int:
    """Deterministic, order-independent per-node stream seed.

    Hash-derived (mirroring
    :func:`repro.sim.experiment.derive_iteration_seed`) so that every
    node gets a statistically independent outage stream that depends
    only on ``(master_seed, salt, node_name)`` — never on process
    identity, node construction order, or how much of the stream other
    nodes consumed.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{salt}:{node_name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FailureGenerator:
    """Seeded per-node MTBF/MTTR outage streams."""

    def __init__(self, config: FailureConfig | None = None) -> None:
        self.config = config or FailureConfig()

    def stream(
        self, node_name: str, start: float, end: float, *, salt: int = 0
    ) -> Iterator[Outage]:
        """Yield the node's outages beginning inside ``[start, end)``.

        The stream is an alternating renewal process anchored at
        ``start``: up-times are exponential with mean ``mtbf``, repair
        times exponential with mean ``mttr``.  Outages never overlap
        (the next failure clock starts at the previous repair).  The
        draw sequence depends only on ``(seed, salt, node_name)`` and
        ``start``, so any caller regenerating the same span gets the
        same outages.
        """
        config = self.config
        rng = random.Random(derive_node_seed(config.seed, node_name, salt=salt))
        time = start + rng.expovariate(1.0 / config.mtbf)
        while time < end:
            duration = rng.expovariate(1.0 / config.mttr)
            if duration > 0.0:
                yield Outage(time, duration)
            time += duration + rng.expovariate(1.0 / config.mtbf)


def apply_slot_outages(
    slots: SlotList, config: FailureConfig, *, salt: int = 0
) -> SlotList:
    """Carve seeded per-node outages out of a vacant-slot list.

    The statistical experiment engine (:mod:`repro.sim.experiment`) has
    no occupancy schedules to fail — its iterations *are* slot lists —
    so failures are modelled at the source: every resource's outage
    stream over the list's horizon is subtracted from that resource's
    slots, exactly as a node-level outage would have removed the vacant
    time before publication.  Streams are keyed by resource *name*, so
    the result is a pure function of ``(slots, config, salt)`` and is
    identical across :class:`~repro.sim.experiment.ParallelRunner`
    worker processes.
    """
    if not len(slots):
        return slots.copy()
    horizon_start = min(slot.start for slot in slots)
    horizon_end = max(slot.end for slot in slots)
    generator = FailureGenerator(config)
    streams: dict[str, list[Outage]] = {}
    degraded = SlotList()
    for slot in slots:
        name = slot.resource.name
        outages = streams.get(name)
        if outages is None:
            outages = list(
                generator.stream(name, horizon_start, horizon_end, salt=salt)
            )
            streams[name] = outages
        for piece_start, piece_end in _subtract_outages(slot.start, slot.end, outages):
            degraded.insert(Slot(slot.resource, piece_start, piece_end, slot.price))
    return degraded


def _subtract_outages(
    start: float, end: float, outages: list[Outage]
) -> list[tuple[float, float]]:
    """The sub-spans of ``[start, end)`` untouched by ``outages``."""
    pieces: list[tuple[float, float]] = []
    cursor = start
    for outage in outages:
        if outage.end <= cursor:
            continue
        if outage.start >= end:
            break
        if outage.start > cursor:
            pieces.append((cursor, outage.start))
        cursor = outage.end
        if cursor >= end:
            break
    if cursor < end:
        pieces.append((cursor, end))
    return pieces


# --------------------------------------------------------------------- #
# Recovery                                                              #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard recovery fights for one job.

    Attributes:
        max_revocations: Per-job revocation budget: a job revoked more
            than this many times is rejected (``None`` retries forever —
            hot-swap/re-search/backoff still make every attempt finite
            work, so there is no livelock either way).
        backoff_base: Resubmission delay after the first revocation that
            could not be recovered in place; ``0`` re-queues immediately
            (the legacy behaviour).
        backoff_factor: Multiplier applied per further revocation.
        backoff_cap: Upper bound on the resubmission delay.
    """

    max_revocations: int | None = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_revocations is not None and self.max_revocations < 0:
            raise InvalidRequestError(
                f"max_revocations must be >= 0, got {self.max_revocations!r}"
            )
        if self.backoff_base < 0:
            raise InvalidRequestError(
                f"backoff_base must be >= 0, got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise InvalidRequestError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.backoff_cap < self.backoff_base:
            raise InvalidRequestError(
                f"backoff_cap {self.backoff_cap!r} below base {self.backoff_base!r}"
            )

    def delay(self, revocations: int) -> float:
        """Resubmission delay after the ``revocations``-th revocation."""
        if self.backoff_base <= 0.0:
            return 0.0
        exponent = max(0, revocations - 1)
        return min(self.backoff_cap, self.backoff_base * self.backoff_factor**exponent)


class RecoveryOutcome(enum.Enum):
    """What happened to one revoked job, in decreasing order of grace."""

    #: A retained phase-1 alternative was recommitted in the same event.
    HOT_SWAP = "hot_swap"
    #: An immediate single-job search found a replacement window.
    RESEARCH = "research"
    #: The job returned to the queue (possibly with a backoff delay).
    RESUBMIT = "resubmit"
    #: The per-job revocation budget ran out; the job was rejected.
    REJECT = "reject"


@dataclass(frozen=True)
class RecoveryEvent:
    """Audit record of one revocation's recovery.

    Attributes:
        time: Outage start (when the revocation happened).
        job_name: The revoked job.
        outcome: How recovery resolved it.
        revocations: The job's revocation count including this one.
        window: The recommitted window for in-place recoveries.
        delay: Backoff delay for RESUBMIT outcomes.
        error: The typed rejection error for REJECT outcomes.
    """

    time: float
    job_name: str
    outcome: RecoveryOutcome
    revocations: int
    window: Window | None = None
    delay: float = 0.0
    error: RecoveryExhaustedError | None = None


class RecoveryManager:
    """Retained-alternative store plus retry accounting for one VO run.

    Owned by the :class:`~repro.grid.metascheduler.Metascheduler`, which
    calls :meth:`retain` when it commits a window and drives the
    hot-swap → re-search → resubmit ladder from its outage handler.  The
    manager itself never mutates the trace or the pending queue — it
    validates windows, commits nothing, and keeps the audit log.
    """

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy or RetryPolicy()
        self.events: list[RecoveryEvent] = []
        self._retained: dict[int, list[Window]] = {}
        self._revocations: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Alternative retention                                              #
    # ------------------------------------------------------------------ #

    def retain(self, job: Job, windows: list[Window], chosen: Window) -> int:
        """Keep the job's unused phase-1 alternatives; returns the count.

        Phase-1 alternatives are pairwise disjoint, so equality with the
        chosen window identifies exactly the committed one.
        """
        kept = [window for window in windows if window != chosen]
        self._retained[job.uid] = kept
        return len(kept)

    def retained(self, job: Job) -> list[Window]:
        """The job's currently retained alternatives (possibly stale)."""
        return list(self._retained.get(job.uid, ()))

    def prune(self, now: float) -> int:
        """Drop retained windows that start before ``now``.

        A window starting in the past can never be recommitted, so
        pruning at every tick bounds the store's memory by the lookahead
        horizon instead of the run length.
        """
        dropped = 0
        for uid in list(self._retained):
            windows = self._retained[uid]
            kept = [window for window in windows if window.start >= now]
            dropped += len(windows) - len(kept)
            if kept:
                self._retained[uid] = kept
            else:
                del self._retained[uid]
        return dropped

    def discard(self, job: Job) -> None:
        """Forget a job entirely (rejected or otherwise finished)."""
        self._retained.pop(job.uid, None)

    # ------------------------------------------------------------------ #
    # Retry accounting                                                   #
    # ------------------------------------------------------------------ #

    def register_revocation(self, job: Job) -> int:
        """Count one more revocation for the job; returns the new total."""
        count = self._revocations.get(job.uid, 0) + 1
        self._revocations[job.uid] = count
        return count

    def revocations(self, job: Job) -> int:
        """How many times outages have revoked the job so far."""
        return self._revocations.get(job.uid, 0)

    def exhausted(self, job: Job) -> RecoveryExhaustedError | None:
        """The typed rejection error once the budget is spent, else None."""
        limit = self.policy.max_revocations
        if limit is None:
            return None
        count = self.revocations(job)
        if count <= limit:
            return None
        return RecoveryExhaustedError(
            f"job {job.name!r} revoked {count} times, budget is {limit}",
            job_name=job.name,
            revocations=count,
            limit=limit,
        )

    def record(self, event: RecoveryEvent) -> None:
        """Append one recovery event to the audit log."""
        self.events.append(event)

    def outcome_counts(self) -> dict[str, int]:
        """Recovery events per outcome value (every outcome present)."""
        counts = {outcome.value: 0 for outcome in RecoveryOutcome}
        for event in self.events:
            counts[event.outcome.value] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Window (re)acquisition                                             #
    # ------------------------------------------------------------------ #

    def find_hot_swap(
        self,
        job: Job,
        environment: "VOEnvironment",
        now: float,
        *,
        algorithm: SlotSearchAlgorithm = SlotSearchAlgorithm.AMP,
        rho: float = 1.0,
    ) -> Window | None:
        """The best retained alternative still feasible at ``now``.

        A retained window survives revalidation when it starts at or
        after ``now``, still satisfies the job's constraints (per-slot
        price cap for ALP, aggregate budget for AMP), and every
        allocation span is vacant on its node — which also excludes
        anything touching the just-recorded outage interval.  Best =
        earliest start, cheapest on ties (the same preference order the
        phase-1 scan discovers windows in).
        """
        budget = (
            job.request.scaled_budget(rho)
            if algorithm is SlotSearchAlgorithm.AMP
            else None
        )
        best: Window | None = None
        for window in self._retained.get(job.uid, ()):
            if window.start < now:
                continue
            if not window.satisfies(job.request, budget=budget):
                continue
            if best is not None and (window.start, window.cost) >= (
                best.start,
                best.cost,
            ):
                continue
            if all(
                environment.node_for(allocation.resource.uid).schedule.is_free(
                    allocation.start, allocation.end
                )
                for allocation in window.allocations
            ):
                best = window
        return best

    def consume(self, job: Job, window: Window) -> None:
        """Remove a recommitted window from the job's retained set."""
        windows = self._retained.get(job.uid)
        if windows is None:
            return
        self._retained[job.uid] = [w for w in windows if w != window]

    def research(
        self,
        job: Job,
        environment: "VOEnvironment",
        now: float,
        *,
        horizon: float,
        min_slot_length: float = 0.0,
        algorithm: SlotSearchAlgorithm = SlotSearchAlgorithm.AMP,
        rho: float = 1.0,
    ) -> Window | None:
        """Incremental re-search: one fresh window for one job, right now.

        Publishes the environment's vacant slots over the metascheduler's
        lookahead horizon from ``now`` and runs a single ALP/AMP scan —
        the phase-1 primitive without the batch machinery, so a revoked
        job need not wait for the next iteration when capacity exists.
        """
        slots = environment.vacant_slot_list(
            now, now + horizon, min_length=min_slot_length
        )
        index = SlotIndex(slots)
        if algorithm is SlotSearchAlgorithm.AMP:
            return index.find_amp_window(
                job.request, budget=job.request.scaled_budget(rho)
            )
        return index.find_alp_window(job.request)
