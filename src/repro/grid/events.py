"""Discrete-event simulation driver for virtual-organization runs.

The examples drive the metascheduler with hand-written loops; longer
studies want a proper event queue.  :class:`SimulationDriver` wires the
three event sources of the Section 2/Section 7 model together on a
single timeline:

* **scheduling ticks** — the periodic batch iterations;
* **job arrivals** — from any object with a ``stream(start, end)``
  method (:mod:`repro.grid.arrivals`), or explicit submissions;
* **node outages** — scheduled failures with repair times, resubmitting
  the jobs they kill.

Events at equal times fire in insertion-stable priority order
(arrivals → outages → ticks), so a job arriving exactly at a tick is
batched by that tick, and an outage at a tick is visible to it.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

from repro.core.errors import InvalidRequestError
from repro.core.job import Job
from repro.grid.metascheduler import IterationReport, Metascheduler
from repro.grid.node import ComputeNode
from repro.grid.resilience import FailureConfig, FailureGenerator, RecoveryOutcome

__all__ = ["EventKind", "SimulationEvent", "ArrivalSource", "SimulationDriver"]


class EventKind(enum.IntEnum):
    """Event families, ordered by same-time firing priority."""

    ARRIVAL = 0
    OUTAGE = 1
    TICK = 2
    CUSTOM = 3


class ArrivalSource(Protocol):
    """Anything that can produce a submission stream (duck-typed)."""

    def stream(self, start: float, end: float) -> Iterable[tuple[float, Job]]:
        """Yield ``(submit_time, job)`` pairs inside ``[start, end)``."""


@dataclass(frozen=True)
class SimulationEvent:
    """One fired event, as recorded in the driver's log.

    Attributes:
        time: Firing time.
        kind: Event family.
        description: Human-readable note (job name, node name, ...).
        report: The iteration report, for TICK events.
    """

    time: float
    kind: EventKind
    description: str
    report: IterationReport | None = None


class SimulationDriver:
    """Runs a metascheduler on an event-queue timeline."""

    def __init__(self, metascheduler: Metascheduler) -> None:
        self.metascheduler = metascheduler
        self.log: list[SimulationEvent] = []
        self._queue: list[tuple[float, int, int, Callable[[float], str]]] = []
        self._sequence = itertools.count()
        self._kinds: dict[int, EventKind] = {}

    # ------------------------------------------------------------------ #
    # Event scheduling                                                   #
    # ------------------------------------------------------------------ #

    def _push(self, time: float, kind: EventKind, action: Callable[[float], str]) -> None:
        if time < 0:
            raise InvalidRequestError(f"event time must be non-negative, got {time!r}")
        sequence = next(self._sequence)
        self._kinds[sequence] = kind
        heapq.heappush(self._queue, (time, int(kind), sequence, action))

    def add_arrivals(self, source: ArrivalSource, start: float, end: float) -> int:
        """Schedule every submission of ``source`` in ``[start, end)``.

        Returns the number of arrivals scheduled.
        """
        count = 0
        for submit_time, job in source.stream(start, end):
            self.add_submission(job, submit_time)
            count += 1
        return count

    def add_submission(self, job: Job, at_time: float) -> None:
        """Schedule one explicit job submission."""

        def fire(now: float) -> str:
            self.metascheduler.submit(job, at_time=now)
            return f"submit {job.name}"

        self._push(at_time, EventKind.ARRIVAL, fire)

    def add_outage(self, node: ComputeNode, at_time: float, duration: float) -> None:
        """Schedule a node failure lasting ``duration`` time units."""
        if duration <= 0:
            raise InvalidRequestError(f"outage duration must be positive, got {duration!r}")

        def fire(now: float) -> str:
            manager = self.metascheduler.recovery
            before = len(manager.events) if manager is not None else 0
            resubmitted = self.metascheduler.inject_outage(node, now, now + duration)
            prefix = f"outage {node.name} [{now:g}, {now + duration:g})"
            if manager is None:
                names = ",".join(job.name for job in resubmitted) or "none"
                return f"{prefix} resubmitted: {names}"
            outcomes: dict[RecoveryOutcome, list[str]] = {}
            for event in manager.events[before:]:
                outcomes.setdefault(event.outcome, []).append(event.job_name)
            if not outcomes:
                return f"{prefix} revoked: none"
            parts = ", ".join(
                f"{outcome.value}: {','.join(names)}"
                for outcome, names in outcomes.items()
            )
            return f"{prefix} {parts}"

        self._push(at_time, EventKind.OUTAGE, fire)

    def add_failures(
        self,
        failures: FailureGenerator | FailureConfig,
        start: float,
        end: float,
    ) -> int:
        """Schedule seeded MTBF/MTTR outage streams for every node.

        Draws each node's outage stream over ``[start, end)`` from the
        failure model (streams are hash-keyed by node name, so the
        timeline is reproducible regardless of node iteration order) and
        schedules one outage event per failure.

        Returns the number of outages scheduled.
        """
        generator = (
            failures
            if isinstance(failures, FailureGenerator)
            else FailureGenerator(failures)
        )
        count = 0
        for node in self.metascheduler.environment.nodes():
            for outage in generator.stream(node.name, start, end):
                self.add_outage(node, outage.start, outage.duration)
                count += 1
        return count

    def add_ticks(self, start: float, end: float) -> int:
        """Schedule the periodic scheduling iterations over ``[start, end]``.

        Returns the number of ticks scheduled.
        """
        if end < start:
            raise InvalidRequestError(f"end {end!r} precedes start {start!r}")
        count = 0
        now = start
        while now <= end:
            self._push(now, EventKind.TICK, self._fire_tick)
            count += 1
            now += self.metascheduler.period
        return count

    def add_custom(self, at_time: float, action: Callable[[float], str]) -> None:
        """Schedule an arbitrary action; it returns its log description."""
        self._push(at_time, EventKind.CUSTOM, action)

    def _fire_tick(self, now: float) -> str:
        report = self.metascheduler.run_iteration(now)
        self._last_report = report
        return (
            f"tick #{report.index}: batch {report.batch_size}, "
            f"scheduled {report.scheduled}, postponed {report.postponed}"
        )

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None) -> list[SimulationEvent]:
        """Fire events in time order until the queue drains (or ``until``).

        Returns the events fired by this call, in firing order.
        """
        fired: list[SimulationEvent] = []
        while self._queue:
            time, kind_value, sequence, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._last_report = None
            description = action(time)
            event = SimulationEvent(
                time=time,
                kind=EventKind(kind_value),
                description=description,
                report=self._last_report,
            )
            fired.append(event)
            self.log.append(event)
        if fired:
            self.metascheduler.trace.mark_completions(fired[-1].time)
        return fired

    _last_report: IterationReport | None = None

    def pending_events(self) -> int:
        """Events still waiting in the queue."""
        return len(self._queue)
