"""Job arrival processes for the global user flow.

Section 7 of the paper names "changes in the number of jobs for
servicing" as one of the dynamics co-scheduling strategies must absorb.
This module supplies the standard arrival models so VO simulations can
drive the metascheduler with a realistic global flow instead of a fixed
job list:

* :class:`PoissonArrivals` — memoryless arrivals at a given rate, the
  default model for independent users;
* :class:`BurstyArrivals` — alternating calm/burst phases, stressing the
  batch-postponement machinery.

Both emit ``(time, Job)`` pairs generated from a
:class:`~repro.sim.generators.JobGenerator`, so requests follow the
Section 5 parameter ranges unless configured otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import InvalidRequestError, InvariantViolationError
from repro.core.job import Job
from repro.sim.generators import JobGenerator

__all__ = ["PoissonArrivals", "BurstyArrivals"]


@dataclass
class PoissonArrivals:
    """Poisson process of global job submissions.

    Attributes:
        rate: Expected arrivals per time unit (``λ > 0``).
        generator: Source of job requests (fresh Section 5 generator
            when omitted).
        seed: Seed for the arrival-time RNG.
    """

    rate: float
    generator: JobGenerator | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise InvalidRequestError(f"rate must be positive, got {self.rate!r}")
        if self.generator is None:
            self.generator = JobGenerator(seed=self.seed)
        self._rng = random.Random(self.seed)
        self._counter = 0

    def stream(self, start: float, end: float) -> Iterator[tuple[float, Job]]:
        """Yield ``(submit_time, job)`` pairs inside ``[start, end)``."""
        if end < start:
            raise InvalidRequestError(f"end {end!r} precedes start {start!r}")
        now = start
        generator = self._checked_generator()
        while True:
            now += self._rng.expovariate(self.rate)
            if now >= end:
                return
            self._counter += 1
            yield now, Job(generator.generate_request(), name=f"arr{self._counter}")

    def _checked_generator(self) -> JobGenerator:
        """The job generator, which ``__post_init__`` always installs."""
        if self.generator is None:
            raise InvariantViolationError("PoissonArrivals has no job generator")
        return self.generator


@dataclass
class BurstyArrivals:
    """Two-phase arrival process: calm Poisson flow with periodic bursts.

    During a burst the rate multiplies by ``burst_factor``; bursts of
    ``burst_length`` start every ``burst_period`` time units.  The model
    is deliberately simple — its purpose is stressing postponement, not
    matching a trace.
    """

    base_rate: float
    burst_factor: float = 5.0
    burst_period: float = 500.0
    burst_length: float = 100.0
    generator: JobGenerator | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise InvalidRequestError(f"base_rate must be positive, got {self.base_rate!r}")
        if self.burst_factor < 1:
            raise InvalidRequestError(
                f"burst_factor must be >= 1, got {self.burst_factor!r}"
            )
        if self.burst_period <= 0 or not 0 < self.burst_length <= self.burst_period:
            raise InvalidRequestError(
                "need 0 < burst_length <= burst_period, got "
                f"{self.burst_length!r} / {self.burst_period!r}"
            )
        if self.generator is None:
            self.generator = JobGenerator(seed=self.seed)
        self._rng = random.Random(self.seed)
        self._counter = 0

    def _rate_at(self, time: float) -> float:
        phase = time % self.burst_period
        return self.base_rate * (self.burst_factor if phase < self.burst_length else 1.0)

    def stream(self, start: float, end: float) -> Iterator[tuple[float, Job]]:
        """Yield ``(submit_time, job)`` pairs via thinning of the peak rate."""
        if end < start:
            raise InvalidRequestError(f"end {end!r} precedes start {start!r}")
        peak = self.base_rate * self.burst_factor
        now = start
        generator = self._checked_generator()
        while True:
            now += self._rng.expovariate(peak)
            if now >= end:
                return
            # Thinning: accept with probability rate(t)/peak.
            if self._rng.random() <= self._rate_at(now) / peak:
                self._counter += 1
                yield now, Job(
                    generator.generate_request(), name=f"burst{self._counter}"
                )

    def _checked_generator(self) -> JobGenerator:
        """The job generator, which ``__post_init__`` always installs."""
        if self.generator is None:
            raise InvariantViolationError("BurstyArrivals has no job generator")
        return self.generator
