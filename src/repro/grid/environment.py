"""The virtual organization environment.

:class:`VOEnvironment` composes clusters into the resource pool of one
virtual organization.  Its two jobs are exactly the metascheduler's two
contact points with reality (paper Section 2):

* publish the **ordered list of vacant slots** over a scheduling horizon
  (built from every node's occupancy schedule), and
* **commit** a chosen window back into the node schedules as
  reservations, so the next iteration's slot list reflects it.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from repro.core.errors import InvalidRequestError, SlotListError
from repro.core.slot import Slot, SlotList
from repro.core.window import Window
from repro.grid.cluster import Cluster, ClusterSpec
from repro.grid.node import ComputeNode

__all__ = ["VOEnvironment"]


class VOEnvironment:
    """Resource pool of a virtual organization: clusters of priced nodes."""

    def __init__(self, clusters: Iterable[Cluster]) -> None:
        self._clusters = list(clusters)
        if not self._clusters:
            raise InvalidRequestError("environment needs at least one cluster")
        self._nodes_by_uid: dict[int, ComputeNode] = {}
        for cluster in self._clusters:
            for node in cluster:
                if node.resource.uid in self._nodes_by_uid:
                    raise InvalidRequestError(
                        f"node {node.name!r} appears in more than one cluster"
                    )
                self._nodes_by_uid[node.resource.uid] = node

    @classmethod
    def generate(
        cls,
        specs: Iterable[ClusterSpec],
        *,
        seed: int | None = None,
    ) -> "VOEnvironment":
        """Build an environment by sampling every cluster spec."""
        rng = random.Random(seed)
        return cls(spec.build(rng) for spec in specs)

    # ------------------------------------------------------------------ #
    # Topology                                                           #
    # ------------------------------------------------------------------ #

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        """The environment's clusters."""
        return tuple(self._clusters)

    def nodes(self) -> Iterator[ComputeNode]:
        """All nodes across all clusters."""
        for cluster in self._clusters:
            yield from cluster

    def node_count(self) -> int:
        """Total number of nodes."""
        return len(self._nodes_by_uid)

    def node_for(self, resource_uid: int) -> ComputeNode:
        """The node owning the resource with ``resource_uid``.

        Raises:
            SlotListError: For an unknown uid (e.g. a window built
                against a different environment).
        """
        try:
            return self._nodes_by_uid[resource_uid]
        except KeyError:
            raise SlotListError(
                f"resource uid {resource_uid} does not belong to this environment"
            ) from None

    # ------------------------------------------------------------------ #
    # Metascheduler contact points                                       #
    # ------------------------------------------------------------------ #

    def vacant_slot_list(
        self,
        horizon_start: float,
        horizon_end: float,
        *,
        min_length: float = 0.0,
        price_multiplier: float = 1.0,
    ) -> SlotList:
        """The ordered vacant-slot list over a horizon (paper Fig. 1 (a)).

        Args:
            min_length: Suppress gaps shorter than this.
            price_multiplier: Scales every published slot price, e.g. for
                demand-adjusted pricing experiments; node base prices are
                untouched.
        """
        if price_multiplier <= 0:
            raise InvalidRequestError(
                f"price_multiplier must be positive, got {price_multiplier!r}"
            )
        slots = SlotList()
        for node in self.nodes():
            for slot in node.vacant_slots(horizon_start, horizon_end, min_length=min_length):
                if price_multiplier == 1.0:
                    slots.insert(slot)
                else:
                    slots.insert(
                        Slot(
                            slot.resource,
                            slot.start,
                            slot.end,
                            price=slot.price * price_multiplier,
                        )
                    )
        return slots

    def commit_window(self, job_name: str, window: Window) -> None:
        """Reserve a scheduled window's spans in the node schedules.

        All-or-nothing: if any span is unexpectedly busy (which indicates
        a stale window), already-made reservations for this job are
        rolled back before re-raising.

        Raises:
            SlotListError: On double booking or foreign resources.
        """
        committed: list[ComputeNode] = []
        try:
            for resource, start, end in window.occupied_spans():
                node = self.node_for(resource.uid)
                node.reserve_for(job_name, start, end)
                committed.append(node)
        except SlotListError:
            for node in committed:
                node.cancel_reservations(job_name)
            raise

    def cancel_job(self, job_name: str) -> int:
        """Drop every reservation of ``job_name``; returns the count."""
        return sum(node.cancel_reservations(job_name) for node in self.nodes())

    def inject_outage(
        self,
        node: ComputeNode,
        start: float,
        end: float,
        *,
        live_jobs: Iterable[str] | None = None,
    ) -> list[str]:
        """Take ``node`` down during ``[start, end)`` (Section 7 dynamics).

        Everything occupying the node in that span is evicted: local jobs
        simply die, while every *live* global job whose task overlapped
        the outage loses **all** its reservations across the environment —
        its tasks start synchronously, so losing one node kills the
        co-allocation.  The outage itself is recorded as a busy interval
        (label ``outage:...``), so subsequent slot lists exclude it.

        A job that already ran to completion cannot be retroactively
        failed: its reservations are *history*, and erasing them would
        corrupt :meth:`utilization` and owner-income accounting on every
        node the job touched.  Callers that track job life cycles (the
        metascheduler) pass ``live_jobs`` — the names of jobs still
        holding active reservations at outage start — and only those are
        revoked.  An evicted reservation of a non-live job keeps its
        spans outside the outage (the work happened); the overlapped
        portion is subsumed by the outage interval, which stays busy but
        earns no income.

        Args:
            live_jobs: Names of global jobs considered live at outage
                start.  ``None`` (the legacy default for callers without
                life-cycle knowledge) treats every evicted job as live.

        Returns:
            The names of the live global jobs whose reservations were
            revoked (the metascheduler recovers or resubmits them).

        Raises:
            SlotListError: If the node does not belong to this
                environment or the span is empty.
        """
        if self._nodes_by_uid.get(node.resource.uid) is not node:
            raise SlotListError(
                f"node {node.name!r} does not belong to this environment"
            )
        if end <= start:
            raise SlotListError(f"outage span must be non-empty, got [{start!r}, {end!r})")
        from repro.grid.node import OUTAGE_LABEL_PREFIX, RESERVATION_LABEL_PREFIX

        live = None if live_jobs is None else set(live_jobs)
        evicted = node.schedule.clear_span(start, end)
        killed: list[str] = []
        for interval in evicted:
            if not interval.label.startswith(RESERVATION_LABEL_PREFIX):
                continue
            job_name = interval.label[len(RESERVATION_LABEL_PREFIX) :]
            if live is None or job_name in live:
                if job_name not in killed:
                    killed.append(job_name)
            else:
                # Historical reservation: restore the executed spans
                # outside the outage so accounting keeps them.
                if interval.start < start:
                    node.schedule.reserve(interval.start, start, interval.label)
                if interval.end > end:
                    node.schedule.reserve(end, interval.end, interval.label)
        for job_name in killed:
            self.cancel_job(job_name)
        node.schedule.reserve(start, end, f"{OUTAGE_LABEL_PREFIX}{node.name}")
        return killed

    # ------------------------------------------------------------------ #
    # Accounting                                                         #
    # ------------------------------------------------------------------ #

    def utilization(self, horizon_start: float, horizon_end: float) -> float:
        """Mean node utilization over the horizon, in ``[0, 1]``."""
        nodes = list(self.nodes())
        if not nodes:
            return 0.0
        return sum(node.utilization(horizon_start, horizon_end) for node in nodes) / len(
            nodes
        )

    def total_income(self, horizon_start: float, horizon_end: float) -> float:
        """Aggregate owner income from global-job reservations."""
        return sum(cluster.income(horizon_start, horizon_end) for cluster in self._clusters)

    def prune_before(self, time: float) -> int:
        """Forget occupancy history older than ``time`` on every node."""
        return sum(node.schedule.prune_before(time) for node in self.nodes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VOEnvironment({len(self._clusters)} clusters, "
            f"{self.node_count()} nodes)"
        )
