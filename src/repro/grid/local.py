"""Owner-local job flows — what makes the resources *non-dedicated*.

The paper's premise is that "along with global flows of external users'
jobs, owner's local job flows exist inside the resource domains"
(Section 1).  :class:`LocalJobFlow` fills node schedules with such local
jobs so that the vacant gaps published to the metascheduler have the
statistical shape of the paper's SlotGenerator output: release bursts
where several nodes of a cluster free up simultaneously, vacant spans of
50-300 time units, and short gaps between consecutive releases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import InvalidRequestError
from repro.grid.cluster import Cluster

__all__ = ["LocalLoadModel", "LocalJobFlow"]


@dataclass(frozen=True)
class LocalLoadModel:
    """Statistical shape of one owner's local workload.

    Attributes:
        busy_length_range: Uniform range of local-job durations.
        vacant_length_range: Uniform range of the vacant spans left
            between local jobs (paper slots: ``[50, 300]``).
        synchronized_release_probability: Probability that a node reuses
            the cluster's previous release time instead of drawing a new
            one — the paper's "probability that the nearby slots in the
            list have the same start time is 0.4".
        stagger_range: Uniform range of the offset between consecutive
            distinct release times (paper: ``[0, 10]``).
    """

    busy_length_range: tuple[float, float] = (30.0, 120.0)
    vacant_length_range: tuple[float, float] = (50.0, 300.0)
    synchronized_release_probability: float = 0.4
    stagger_range: tuple[float, float] = (0.0, 10.0)

    def __post_init__(self) -> None:
        for name in ("busy_length_range", "vacant_length_range", "stagger_range"):
            low, high = getattr(self, name)
            if not 0 <= low <= high:
                raise InvalidRequestError(f"{name} must satisfy 0 <= low <= high")
        probability = self.synchronized_release_probability
        if not 0 <= probability <= 1:
            raise InvalidRequestError(
                f"synchronized_release_probability must be in [0, 1], got {probability!r}"
            )


class LocalJobFlow:
    """Generates local-job occupancy for the nodes of a cluster."""

    def __init__(self, model: LocalLoadModel | None = None, *, seed: int | None = None) -> None:
        self.model = model or LocalLoadModel()
        self._rng = random.Random(seed)
        self._job_counter = 0

    def _next_job_name(self, cluster: Cluster) -> str:
        self._job_counter += 1
        return f"{cluster.name}-local{self._job_counter}"

    def occupy(self, cluster: Cluster, horizon_start: float, horizon_end: float) -> int:
        """Fill ``cluster``'s schedules with local jobs over the horizon.

        Each node alternates busy (local job) and vacant periods.  The
        *first release time* of a node either reuses the cluster's last
        release (synchronized, probability per the model) or staggers a
        small offset after it, reproducing the correlated-release
        structure of real domains.

        Returns:
            Number of local jobs created.
        """
        if horizon_end <= horizon_start:
            raise InvalidRequestError(
                f"horizon must be non-empty, got [{horizon_start!r}, {horizon_end!r})"
            )
        model = self.model
        rng = self._rng
        created = 0
        last_release = horizon_start
        for node in cluster:
            if rng.random() < model.synchronized_release_probability:
                release = last_release
            else:
                release = last_release + rng.uniform(*model.stagger_range)
                last_release = release
            release = min(release, horizon_end)
            # Initial local job from horizon start until the release point.
            if release > horizon_start:
                node.run_local_job(horizon_start, release, self._next_job_name(cluster))
                created += 1
            cursor = release
            while True:
                vacant = rng.uniform(*model.vacant_length_range)
                cursor += vacant
                if cursor >= horizon_end:
                    break
                busy = min(rng.uniform(*model.busy_length_range), horizon_end - cursor)
                if busy <= 0:
                    break
                node.run_local_job(cursor, cursor + busy, self._next_job_name(cluster))
                created += 1
                cursor += busy
        return created
