"""Workload traces — the audit log of a metascheduler run.

Every global job's life cycle (submission → zero or more postponements →
reservation → completion) is recorded as a :class:`JobRecord`, and the
whole run aggregates into a :class:`WorkloadTrace` with the usual
scheduling metrics (wait time, slowdown, throughput, owner income).
These are the quantities the paper's future-work section cares about
when comparing co-scheduling strategies, and the examples print them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.job import Job
from repro.core.window import Window

__all__ = ["JobState", "JobRecord", "WorkloadTrace", "TraceSummary"]


class JobState(enum.Enum):
    """Life-cycle states of a global job inside the metascheduler."""

    PENDING = "pending"
    SCHEDULED = "scheduled"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class JobRecord:
    """Trace entry for one global job.

    Attributes:
        job: The job itself.
        submit_time: When the user submitted it.
        state: Current life-cycle state.
        window: The committed window once scheduled.
        scheduled_iteration: Index of the iteration that placed it.
        postponements: How many iterations postponed it before placement.
        resubmissions: How many times an outage revoked its reservation
            and sent it back to the queue (Section 7 dynamics).
        recoveries: How many times an outage revoked its reservation and
            the recovery subsystem re-committed a window *in the same
            event* (hot-swap or immediate re-search), without the job
            ever returning to the queue.
    """

    job: Job
    submit_time: float
    state: JobState = JobState.PENDING
    window: Window | None = None
    scheduled_iteration: int | None = None
    postponements: int = 0
    resubmissions: int = 0
    recoveries: int = 0

    @property
    def start_time(self) -> float | None:
        """Execution start (window start), if scheduled."""
        return None if self.window is None else self.window.start

    @property
    def finish_time(self) -> float | None:
        """Execution end (window end), if scheduled."""
        return None if self.window is None else self.window.end

    @property
    def wait_time(self) -> float | None:
        """Time from submission to execution start."""
        if self.window is None:
            return None
        return self.window.start - self.submit_time

    @property
    def cost(self) -> float | None:
        """Money paid for the job's window, if scheduled."""
        return None if self.window is None else self.window.cost


@dataclass
class TraceSummary:
    """Aggregate metrics of one run.

    All means are over *scheduled* jobs; ``None`` when nothing was
    scheduled.

    ``state_counts`` and ``owner_income`` share definitions with the
    telemetry layer (:mod:`repro.obs`): the ``meta.jobs{state=...}``
    gauges the metascheduler exports are these state counts, and the
    income breakdown sums exactly what users were billed per node —
    the audit log and a metrics dashboard can never disagree.

    Attributes:
        state_counts: Jobs per life-cycle state (keyed by
            :class:`JobState` value; every state is present, possibly 0).
        owner_income: Income per resource (node) name, summed over the
            per-task allocation costs of placed jobs' windows.
    """

    submitted: int
    scheduled: int
    rejected: int
    mean_wait_time: float | None
    mean_execution_time: float | None
    mean_cost: float | None
    mean_postponements: float | None
    total_cost: float
    makespan: float | None
    state_counts: dict[str, int] = field(default_factory=dict)
    owner_income: dict[str, float] = field(default_factory=dict)

    @property
    def total_owner_income(self) -> float:
        """Income summed over all resources (equals ``total_cost``)."""
        return sum(self.owner_income.values())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value:.2f}"

        return (
            f"jobs: {self.scheduled}/{self.submitted} scheduled, {self.rejected} rejected | "
            f"wait {fmt(self.mean_wait_time)} | exec {fmt(self.mean_execution_time)} | "
            f"cost {fmt(self.mean_cost)} | makespan {fmt(self.makespan)}"
        )


class WorkloadTrace:
    """Collects job records over a metascheduler run."""

    def __init__(self) -> None:
        self._records: dict[int, JobRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self._records.values())

    def add(self, job: Job, submit_time: float) -> JobRecord:
        """Register a submitted job; returns its mutable record."""
        record = JobRecord(job=job, submit_time=submit_time)
        self._records[job.uid] = record
        return record

    def record_for(self, job: Job) -> JobRecord:
        """The record of ``job`` (KeyError for unknown jobs)."""
        return self._records[job.uid]

    def mark_scheduled(self, job: Job, window: Window, iteration: int) -> None:
        """Transition a job to SCHEDULED with its committed window."""
        record = self.record_for(job)
        record.state = JobState.SCHEDULED
        record.window = window
        record.scheduled_iteration = iteration

    def mark_postponed(self, job: Job) -> None:
        """Count one more postponement for a pending job."""
        self.record_for(job).postponements += 1

    def mark_rejected(self, job: Job) -> None:
        """Give up on a job (postponement limit or revocation budget).

        Any window reference is dropped: a rejected job holds no
        reservations (a revoked window was already cancelled), so a
        stale window would corrupt wait-time and cost statistics.
        """
        record = self.record_for(job)
        record.state = JobState.REJECTED
        record.window = None
        record.scheduled_iteration = None

    def mark_resubmitted(self, job: Job) -> None:
        """Return a scheduled job to PENDING after its window was revoked."""
        record = self.record_for(job)
        record.state = JobState.PENDING
        record.window = None
        record.scheduled_iteration = None
        record.resubmissions += 1

    def mark_recovered(self, job: Job, window: Window, iteration: int) -> None:
        """Swap a revoked job's window for a recovery window, same event.

        The job never leaves SCHEDULED: an outage revoked its old window
        and the recovery subsystem committed ``window`` immediately
        (hot-swap from retained alternatives or incremental re-search).
        """
        record = self.record_for(job)
        record.state = JobState.SCHEDULED
        record.window = window
        record.scheduled_iteration = iteration
        record.recoveries += 1

    def mark_completions(self, now: float) -> int:
        """Move scheduled jobs whose windows ended by ``now`` to COMPLETED."""
        completed = 0
        for record in self._records.values():
            if (
                record.state is JobState.SCHEDULED
                and record.window is not None
                and record.window.end <= now
            ):
                record.state = JobState.COMPLETED
                completed += 1
        return completed

    def in_state(self, state: JobState) -> list[JobRecord]:
        """All records currently in ``state``."""
        return [record for record in self._records.values() if record.state is state]

    def state_counts(self) -> dict[str, int]:
        """Jobs per life-cycle state (every state present, possibly 0).

        This is the definition the metascheduler's ``meta.jobs{state=...}``
        telemetry gauges export, so the two views always agree.
        """
        counts = {state.value: 0 for state in JobState}
        for record in self._records.values():
            counts[record.state.value] += 1
        return counts

    def owner_income(self) -> dict[str, float]:
        """Income per resource name from placed (scheduled/completed) jobs.

        Sums each window's per-task allocation costs onto the node that
        earns them; the total over all nodes equals the users' total
        spend (``TraceSummary.total_cost``).
        """
        income: dict[str, float] = {}
        for record in self._records.values():
            if record.state not in (JobState.SCHEDULED, JobState.COMPLETED):
                continue
            if record.window is None:
                continue
            for allocation in record.window.allocations:
                name = allocation.resource.name
                income[name] = income.get(name, 0.0) + allocation.cost
        return income

    def summary(self) -> TraceSummary:
        """Aggregate the trace into a :class:`TraceSummary`."""
        placed = [
            record
            for record in self._records.values()
            if record.state in (JobState.SCHEDULED, JobState.COMPLETED)
        ]
        rejected = len(self.in_state(JobState.REJECTED))

        def mean(values: list[float]) -> float | None:
            return sum(values) / len(values) if values else None

        waits = [record.wait_time for record in placed if record.wait_time is not None]
        lengths = [record.window.length for record in placed if record.window is not None]
        costs = [record.cost for record in placed if record.cost is not None]
        finishes = [
            record.finish_time for record in placed if record.finish_time is not None
        ]
        return TraceSummary(
            submitted=len(self._records),
            scheduled=len(placed),
            rejected=rejected,
            mean_wait_time=mean(waits),
            mean_execution_time=mean(lengths),
            mean_cost=mean(costs),
            mean_postponements=mean([float(r.postponements) for r in placed]),
            total_cost=sum(costs),
            makespan=max(finishes) if finishes else None,
            state_counts=self.state_counts(),
            owner_income=self.owner_income(),
        )
