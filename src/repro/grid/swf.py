"""Standard Workload Format (SWF) import/export.

Scheduling research exchanges workloads in the Parallel Workloads
Archive's SWF: one job per line, 18 whitespace-separated fields, ``;``
header comments.  This module maps the subset our model needs:

===== ============================== =======================
field SWF meaning                    mapped to
===== ============================== =======================
1     job number                     job name (``swf<N>``)
2     submit time                    submission time
4     run time                       (export only: window length)
8     requested processors           ``node_count``
9     requested time                 ``volume`` (etalon runtime)
===== ============================== =======================

Prices are not part of SWF; imports attach a max price through the same
calibrated rule as the Section 5 job generator (price-cap factor ×
nominal price at the minimum performance), so imported workloads drop
straight into the economic model.  Jobs with missing (``-1``) processor
or runtime fields are skipped and counted.

Export writes scheduled jobs back out with actual start/run times, so a
repro run can be analysed by standard SWF tooling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.errors import InvalidRequestError
from repro.core.job import Job, ResourceRequest
from repro.grid.trace import JobRecord, JobState

__all__ = ["SwfImportPolicy", "SwfImportResult", "parse_swf", "read_swf", "write_swf"]

#: Number of whitespace-separated fields in a standard SWF line.
SWF_FIELDS = 18


@dataclass(frozen=True)
class SwfImportPolicy:
    """How SWF jobs acquire the economic attributes SWF lacks.

    Attributes:
        min_performance: Performance requirement attached to every job
            (SWF has no such notion).
        price_cap_factor_range: Uniform range of the price-cap factor,
            as in the Section 5 generator.
        price_base: Price-law base the cap is expressed against.
        max_node_count: Jobs requesting more processors are clamped
            (``None`` keeps them as-is).
        seed: RNG seed for the price-cap draws.
    """

    min_performance: float = 1.0
    price_cap_factor_range: tuple[float, float] = (0.9, 1.3)
    price_base: float = 1.7
    max_node_count: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_performance <= 0:
            raise InvalidRequestError(
                f"min_performance must be positive, got {self.min_performance!r}"
            )
        low, high = self.price_cap_factor_range
        if not 0 < low <= high:
            raise InvalidRequestError(
                f"price_cap_factor_range must satisfy 0 < low <= high, got "
                f"{self.price_cap_factor_range!r}"
            )
        if self.max_node_count is not None and self.max_node_count < 1:
            raise InvalidRequestError(
                f"max_node_count must be >= 1, got {self.max_node_count!r}"
            )


@dataclass
class SwfImportResult:
    """Parsed workload plus bookkeeping.

    Attributes:
        submissions: ``(submit_time, job)`` pairs in file order.
        skipped: Lines dropped for missing processor/runtime fields.
        comments: The ``;`` header lines, verbatim.
    """

    submissions: list[tuple[float, Job]]
    skipped: int
    comments: list[str]


def parse_swf(text: str, policy: SwfImportPolicy | None = None) -> SwfImportResult:
    """Parse SWF text into submission pairs.

    Malformed non-comment lines (wrong field count, non-numeric fields)
    raise; missing values encoded as ``-1`` skip the job, per SWF
    convention.
    """
    policy = policy or SwfImportPolicy()
    rng = random.Random(policy.seed)
    submissions: list[tuple[float, Job]] = []
    skipped = 0
    comments: list[str] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            comments.append(raw)
            continue
        fields = line.split()
        if len(fields) != SWF_FIELDS:
            raise InvalidRequestError(
                f"SWF line {line_number}: expected {SWF_FIELDS} fields, got {len(fields)}"
            )
        try:
            job_number = int(fields[0])
            submit_time = float(fields[1])
            processors = int(float(fields[7]))
            requested_time = float(fields[8])
        except ValueError as error:
            raise InvalidRequestError(f"SWF line {line_number}: {error}") from None
        if processors <= 0 or requested_time <= 0:
            skipped += 1
            continue
        if policy.max_node_count is not None:
            processors = min(processors, policy.max_node_count)
        factor = rng.uniform(*policy.price_cap_factor_range)
        request = ResourceRequest(
            node_count=processors,
            volume=requested_time,
            min_performance=policy.min_performance,
            max_price=factor * policy.price_base**policy.min_performance,
        )
        submissions.append((submit_time, Job(request, name=f"swf{job_number}")))
    return SwfImportResult(submissions=submissions, skipped=skipped, comments=comments)


def read_swf(path: str | Path, policy: SwfImportPolicy | None = None) -> SwfImportResult:
    """Parse an SWF file from disk."""
    return parse_swf(Path(path).read_text(encoding="utf-8"), policy)


def write_swf(records: Iterable[JobRecord], path: str | Path, *, header: str = "") -> Path:
    """Export trace records as SWF.

    Scheduled/completed jobs get their actual wait and run times;
    unplaced jobs are emitted with ``-1`` markers, as SWF prescribes.
    Fields we do not model (memory, user, queue, ...) are ``-1``.
    """
    lines = []
    if header:
        lines.extend(f"; {line}" for line in header.splitlines())
    for number, record in enumerate(records, start=1):
        if record.window is not None:
            wait = record.window.start - record.submit_time
            run_time = record.window.length
            processors = record.job.request.node_count
            status = 1 if record.state in (JobState.SCHEDULED, JobState.COMPLETED) else 0
        else:
            wait = -1.0
            run_time = -1.0
            processors = -1
            status = 0
        fields = [
            str(number),                      # 1 job number
            f"{record.submit_time:g}",        # 2 submit time
            f"{wait:g}",                      # 3 wait time
            f"{run_time:g}",                  # 4 run time
            str(processors),                  # 5 allocated processors
            "-1",                             # 6 average CPU time
            "-1",                             # 7 used memory
            str(record.job.request.node_count),  # 8 requested processors
            f"{record.job.request.volume:g}",    # 9 requested time
            "-1",                             # 10 requested memory
            str(status),                      # 11 status
            "-1",                             # 12 user id
            "-1",                             # 13 group id
            "-1",                             # 14 executable
            "-1",                             # 15 queue
            "-1",                             # 16 partition
            "-1",                             # 17 preceding job
            "-1",                             # 18 think time
        ]
        lines.append(" ".join(fields))
    path = Path(path)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
