"""Compute nodes — priced resources with occupancy schedules.

A :class:`ComputeNode` is the grid-substrate counterpart of the core
model's :class:`~repro.core.resource.Resource`: it carries the same
economic attributes *plus* the local occupancy schedule from which
vacant slots are published.  Non-dedication (Section 1 of the paper) is
modelled by the owner's local jobs occupying the same schedule that the
metascheduler reserves into.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.errors import InvalidRequestError
from repro.core.resource import Resource
from repro.core.slot import Slot
from repro.grid.occupancy import BusyInterval, OccupancySchedule

__all__ = [
    "ComputeNode",
    "LOCAL_LABEL_PREFIX",
    "RESERVATION_LABEL_PREFIX",
    "OUTAGE_LABEL_PREFIX",
]

#: Label prefix used for the owner's local job occupancy.
LOCAL_LABEL_PREFIX = "local:"
#: Label prefix used for metascheduler (global job) reservations.
RESERVATION_LABEL_PREFIX = "job:"
#: Label prefix used for node outages (failure injection, Section 7).
OUTAGE_LABEL_PREFIX = "outage:"

_node_counter = itertools.count(1)


class ComputeNode:
    """One computational node of a virtual organization.

    Attributes:
        resource: The economic identity (name, performance, price) seen
            by the core algorithms.
        schedule: The node's occupancy schedule.
    """

    __slots__ = ("resource", "schedule")

    def __init__(self, name: str, *, performance: float = 1.0, price: float = 1.0) -> None:
        self.resource = Resource(name, performance=performance, price=price)
        self.schedule = OccupancySchedule()

    @property
    def name(self) -> str:
        """Node name (delegates to the resource)."""
        return self.resource.name

    @property
    def performance(self) -> float:
        """Relative performance rate ``P``."""
        return self.resource.performance

    @property
    def price(self) -> float:
        """Usage price per time unit ``C``."""
        return self.resource.price

    # ------------------------------------------------------------------ #
    # Occupancy                                                          #
    # ------------------------------------------------------------------ #

    def run_local_job(self, start: float, end: float, job_name: str = "") -> BusyInterval:
        """Occupy the node with one of the owner's local jobs."""
        label = f"{LOCAL_LABEL_PREFIX}{job_name or next(_node_counter)}"
        return self.schedule.reserve(start, end, label)

    def reserve_for(self, job_name: str, start: float, end: float) -> BusyInterval:
        """Commit a metascheduler reservation for a global job's task."""
        return self.schedule.reserve(start, end, f"{RESERVATION_LABEL_PREFIX}{job_name}")

    def cancel_reservations(self, job_name: str) -> int:
        """Drop every reservation made for ``job_name``; returns count."""
        return self.schedule.release_label(f"{RESERVATION_LABEL_PREFIX}{job_name}")

    def vacant_slots(self, horizon_start: float, horizon_end: float, *, min_length: float = 0.0) -> list[Slot]:
        """Publish the node's vacant slots over a horizon.

        Args:
            horizon_start: Beginning of the published window (usually the
                current scheduling-iteration time).
            horizon_end: End of the published window.
            min_length: Gaps shorter than this are not published —
                real local managers suppress unusably short fragments.
        """
        if min_length < 0:
            raise InvalidRequestError(f"min_length must be >= 0, got {min_length!r}")
        return [
            Slot(self.resource, start, end)
            for start, end in self.schedule.vacant_spans(horizon_start, horizon_end)
            if end - start >= min_length
        ]

    # ------------------------------------------------------------------ #
    # Accounting                                                         #
    # ------------------------------------------------------------------ #

    def utilization(self, horizon_start: float, horizon_end: float) -> float:
        """Overall busy fraction of the node within the horizon."""
        return self.schedule.utilization(horizon_start, horizon_end)

    def local_share(self, horizon_start: float, horizon_end: float) -> float:
        """Fraction of busy time owed to the owner's local jobs.

        The balance between this and the global share is exactly what the
        paper's ``T*`` quota protects (Section 2).
        """
        busy = self.schedule.busy_time(horizon_start, horizon_end)
        if busy <= 0:
            return 0.0
        local = self.schedule.busy_time(
            horizon_start, horizon_end, label_prefix=LOCAL_LABEL_PREFIX
        )
        return local / busy

    def income(self, horizon_start: float, horizon_end: float) -> float:
        """Owner income from metascheduler reservations within the horizon."""
        reserved = self.schedule.busy_time(
            horizon_start, horizon_end, label_prefix=RESERVATION_LABEL_PREFIX
        )
        return reserved * self.resource.price

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeNode({self.name!r}, P={self.performance:g}, "
            f"C={self.price:g}, busy={len(self.schedule)})"
        )


def total_income(nodes: Iterable[ComputeNode], horizon_start: float, horizon_end: float) -> float:
    """Aggregate owner income over ``nodes`` within the horizon."""
    return sum(node.income(horizon_start, horizon_end) for node in nodes)
