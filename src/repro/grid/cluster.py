"""Clusters (resource domains) of the virtual organization.

The paper's environment consists of "resource domains (clusters,
computational nodes equipped with multicore processors, etc.)" whose
owners run local job flows alongside the global flow (Section 1).  A
:class:`Cluster` groups nodes that share ownership; node performance and
price are drawn per node, so a cluster is homogeneous in administration
but may be heterogeneous in hardware generations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import InvalidRequestError
from repro.core.pricing import ExponentialPricing
from repro.grid.node import ComputeNode

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Blueprint for generating a cluster.

    Attributes:
        name: Cluster name (node names become ``"{name}-n{i}"``).
        node_count: Number of nodes.
        performance_range: Uniform sampling range of node performance
            (paper default ``[1, 3]``).
        pricing: Price law mapping performance to price per time unit.
    """

    name: str
    node_count: int
    performance_range: tuple[float, float] = (1.0, 3.0)
    pricing: ExponentialPricing = field(default_factory=ExponentialPricing)

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise InvalidRequestError(f"node_count must be >= 1, got {self.node_count!r}")
        low, high = self.performance_range
        if not 0 < low <= high:
            raise InvalidRequestError(
                f"performance_range must satisfy 0 < low <= high, got {self.performance_range!r}"
            )

    def build(self, rng: random.Random) -> "Cluster":
        """Instantiate a cluster, sampling node attributes with ``rng``."""
        nodes = []
        low, high = self.performance_range
        for index in range(self.node_count):
            performance = rng.uniform(low, high)
            price = self.pricing.sample(performance, rng)
            nodes.append(
                ComputeNode(
                    f"{self.name}-n{index}", performance=performance, price=price
                )
            )
        return Cluster(self.name, nodes)


class Cluster:
    """A named group of compute nodes under one owner."""

    __slots__ = ("name", "_nodes")

    def __init__(self, name: str, nodes: list[ComputeNode]) -> None:
        if not nodes:
            raise InvalidRequestError(f"cluster {name!r} must have at least one node")
        self.name = name
        self._nodes = list(nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ComputeNode]:
        return iter(self._nodes)

    def __getitem__(self, index: int) -> ComputeNode:
        return self._nodes[index]

    @property
    def nodes(self) -> tuple[ComputeNode, ...]:
        """The cluster's nodes."""
        return tuple(self._nodes)

    def utilization(self, horizon_start: float, horizon_end: float) -> float:
        """Mean node utilization over the horizon."""
        if not self._nodes:
            return 0.0
        return sum(
            node.utilization(horizon_start, horizon_end) for node in self._nodes
        ) / len(self._nodes)

    def income(self, horizon_start: float, horizon_end: float) -> float:
        """Owner income from global-job reservations over the horizon."""
        return sum(node.income(horizon_start, horizon_end) for node in self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster({self.name!r}, {len(self._nodes)} nodes)"
