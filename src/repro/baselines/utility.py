"""Utility-function slot selection — the ref. [7] style comparator.

The paper's introduction cites Ernemann et al. (ref. [7]) for "heuristic
algorithms for slot selection based on user defined utility functions".
This baseline implements that family over our slot model: the user
supplies a utility ``U(window)`` and the finder returns the feasible
window maximizing it, scanning every candidate start time (O(m²), like
the greedy baseline).

Two stock utilities cover the common cases:

* :func:`earliness_utility` — rewards early starts, penalizes cost:
  ``U = -(start_weight · start + cost_weight · cost)``.  With
  ``cost_weight = 0`` this reduces to first-fit; with
  ``start_weight = 0`` to the cheapest-window baseline — so the utility
  finder generalizes both.
* :func:`deadline_utility` — full value before a deadline, linear decay
  to zero afterwards, minus a cost term: the classic soft-deadline
  shape of economic grid scheduling.
"""

from __future__ import annotations

from typing import Callable

from repro.core.alp import ForwardScan
from repro.core.amp import cheapest_subset
from repro.core.errors import InvalidRequestError
from repro.core.job import ResourceRequest
from repro.core.slot import SlotList
from repro.core.window import Window

__all__ = ["UtilityFunction", "earliness_utility", "deadline_utility", "utility_find_window"]

#: A utility function scores a candidate window; higher is better.
UtilityFunction = Callable[[Window], float]


def earliness_utility(*, start_weight: float = 1.0, cost_weight: float = 0.0) -> UtilityFunction:
    """Linear earliness/cost utility ``U = -(w_s·start + w_c·cost)``.

    Raises:
        InvalidRequestError: For negative weights or both zero.
    """
    if start_weight < 0 or cost_weight < 0 or start_weight + cost_weight == 0:
        raise InvalidRequestError(
            f"weights must be non-negative and not both zero, got "
            f"({start_weight!r}, {cost_weight!r})"
        )

    def utility(window: Window) -> float:
        return -(start_weight * window.start + cost_weight * window.cost)

    return utility


def deadline_utility(
    deadline: float,
    *,
    value: float = 1000.0,
    decay: float = 1.0,
    cost_weight: float = 1.0,
) -> UtilityFunction:
    """Soft-deadline utility: full ``value`` if the job *finishes* by
    ``deadline``, linearly decaying by ``decay`` per time unit late,
    minus ``cost_weight · cost``.

    Raises:
        InvalidRequestError: For non-positive value/decay or negative
            cost weight.
    """
    if value <= 0 or decay <= 0 or cost_weight < 0:
        raise InvalidRequestError(
            f"need value > 0, decay > 0, cost_weight >= 0; got "
            f"({value!r}, {decay!r}, {cost_weight!r})"
        )

    def utility(window: Window) -> float:
        lateness = max(0.0, window.end - deadline)
        return value - decay * lateness - cost_weight * window.cost

    return utility


def utility_find_window(
    slot_list: SlotList,
    request: ResourceRequest,
    utility: UtilityFunction,
    *,
    budget: float | None = None,
) -> Window | None:
    """The feasible window maximizing ``utility`` over the whole list.

    Candidate windows are generated exactly as AMP generates them — at
    every slot-start event, the ``N`` cheapest alive candidates — so the
    search space matches the economic model; ``utility`` then ranks the
    candidates instead of the earliest-fit rule.

    Args:
        budget: Optional cost cap (defaults to ``request.budget``).

    Returns:
        The best-utility window, or ``None`` when no feasible candidate
        exists.  Ties resolve to the earlier-generated candidate.
    """
    if budget is None:
        budget = request.budget
    best: Window | None = None
    best_utility = float("-inf")
    scan = ForwardScan(request, check_price=False)
    for slot in slot_list:
        if not scan.offer(slot):
            continue
        if scan.size < request.node_count:
            continue
        chosen, total_cost = cheapest_subset(scan.candidates, request)
        if total_cost > budget:
            continue
        candidate = scan.build_window(chosen)
        candidate_utility = utility(candidate)
        if candidate_utility > best_utility:
            best = candidate
            best_utility = candidate_utility
    return best
