"""Backfilling baselines (paper refs [11, 12], discussed in Section 3).

The paper positions ALP/AMP against backfilling: "the backfill algorithm
has quadratic complexity O(m²)... able to find a rectangular window of
concurrent slots... provided that all available computational nodes have
equal performance, and tasks of any job have identical resource
requirements".  This module implements that comparator twice:

* :func:`backfill_find_window` — a slot-list window finder with exactly
  the classic backfill assumptions (etalon runtimes, no prices, all
  candidate start times probed → O(m²)).  It is WindowFinder-compatible,
  so the alternative-search scheme and the benchmarks can swap it in for
  ALP/AMP directly.
* :class:`BackfillScheduler` — a queue-based scheduler over grid nodes
  with *conservative* and *EASY* variants, for end-to-end comparisons on
  the grid substrate.

Both deliberately ignore resource prices: backfilling predates economic
scheduling, which is the gap the paper's algorithms fill.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import InvalidRequestError
from repro.core.job import Job, ResourceRequest
from repro.core.slot import Slot, SlotList
from repro.core.window import TaskAllocation, Window
from repro.grid.node import ComputeNode

__all__ = [
    "backfill_find_window",
    "BackfillVariant",
    "BackfillAssignment",
    "BackfillScheduler",
]


def backfill_find_window(slot_list: SlotList, request: ResourceRequest) -> Window | None:
    """Classic backfill window search on a slot list — O(m²).

    Probes *every* slot start time as a candidate window start and, for
    each, scans the whole list counting slots that cover
    ``[T, T + volume)`` — the paper's characterization of backfilling's
    quadratic cost.  Matching backfill's homogeneity assumption, the task
    runtime is the request's etalon volume on every node (performance
    differences are ignored — conservatively, since real runtimes on
    ``P >= 1`` nodes are shorter), and prices are ignored entirely.

    Returns the earliest rectangular window of ``request.node_count``
    concurrent slots, or ``None``.
    """
    duration = request.volume
    for candidate in slot_list:
        window_start = candidate.start
        window_end = window_start + duration
        chosen: list[Slot] = []
        taken_resources: set[int] = set()
        for slot in slot_list:
            if slot.start > window_start:
                break
            if slot.resource.uid in taken_resources:
                continue
            if not request.admits_performance(slot.resource):
                continue
            if slot.contains_span(window_start, window_end):
                chosen.append(slot)
                taken_resources.add(slot.resource.uid)
                if len(chosen) == request.node_count:
                    allocations = [
                        TaskAllocation(slot, window_start, window_end)
                        for slot in chosen
                    ]
                    return Window(request, allocations)
    return None


class BackfillVariant(enum.Enum):
    """Reservation policies of queue-based backfilling."""

    #: Every queued job receives a reservation immediately, in queue
    #: order; later jobs fill earlier holes only if a hole fits them
    #: (Maui-style conservative backfilling, ref. [12]).
    CONSERVATIVE = "conservative"
    #: Only the queue head holds a reservation; other jobs may run only
    #: if they finish before the head's reserved start (or don't touch
    #: its nodes) — EASY backfilling, ref. [11].
    EASY = "easy"


@dataclass(frozen=True)
class BackfillAssignment:
    """One job's placement produced by :class:`BackfillScheduler`."""

    job: Job
    start: float
    end: float
    nodes: tuple[ComputeNode, ...]

    @property
    def duration(self) -> float:
        """Wall-clock duration of the placement."""
        return self.end - self.start

    @property
    def cost(self) -> float:
        """What the placement would cost at the nodes' posted prices.

        Backfilling itself is price-blind; the cost is computed only so
        the benchmarks can compare economics across schedulers.
        """
        return sum(node.price for node in self.nodes) * self.duration


class BackfillScheduler:
    """Queue-based backfilling over grid compute nodes.

    The scheduler plans against the nodes' occupancy schedules and
    *commits* reservations for every placement (so runs are directly
    comparable with the metascheduler's committed windows).  Task
    duration is the request's etalon volume on every chosen node —
    backfill's equal-performance assumption.
    """

    def __init__(
        self,
        nodes: Sequence[ComputeNode],
        *,
        variant: BackfillVariant = BackfillVariant.CONSERVATIVE,
        horizon: float = 1e7,
    ) -> None:
        if not nodes:
            raise InvalidRequestError("backfill scheduler needs at least one node")
        if horizon <= 0:
            raise InvalidRequestError(f"horizon must be positive, got {horizon!r}")
        self.nodes = list(nodes)
        self.variant = variant
        self.horizon = horizon

    # ------------------------------------------------------------------ #
    # Placement primitives                                               #
    # ------------------------------------------------------------------ #

    def _candidate_starts(self, now: float) -> list[float]:
        starts = {now}
        for node in self.nodes:
            for interval in node.schedule:
                if now <= interval.end <= now + self.horizon:
                    starts.add(interval.end)
        return sorted(starts)

    def _free_nodes_at(self, start: float, duration: float, request: ResourceRequest) -> list[ComputeNode]:
        return [
            node
            for node in self.nodes
            if request.admits_performance(node.resource)
            and node.schedule.is_free(start, start + duration)
        ]

    def earliest_start(self, request: ResourceRequest, now: float) -> tuple[float, list[ComputeNode]] | None:
        """Earliest time ``>= now`` at which the job could be co-allocated.

        Probes ``now`` and every reservation end (the only times the free
        node count increases).  Quadratic in the number of reservations.
        """
        duration = request.volume
        for start in self._candidate_starts(now):
            free = self._free_nodes_at(start, duration, request)
            if len(free) >= request.node_count:
                return start, free[: request.node_count]
        return None

    def _place(self, job: Job, start: float, nodes: list[ComputeNode]) -> BackfillAssignment:
        end = start + job.request.volume
        for node in nodes:
            node.reserve_for(job.name, start, end)
        return BackfillAssignment(job=job, start=start, end=end, nodes=tuple(nodes))

    # ------------------------------------------------------------------ #
    # Queue policies                                                     #
    # ------------------------------------------------------------------ #

    def schedule(self, jobs: Sequence[Job], now: float = 0.0) -> list[BackfillAssignment]:
        """Place every job of the queue; returns assignments in queue order.

        Jobs that cannot be placed within the horizon are skipped (their
        assignment is simply absent from the result).
        """
        if self.variant is BackfillVariant.CONSERVATIVE:
            return self._schedule_conservative(jobs, now)
        return self._schedule_easy(jobs, now)

    def _schedule_conservative(self, jobs: Sequence[Job], now: float) -> list[BackfillAssignment]:
        assignments = []
        for job in jobs:
            found = self.earliest_start(job.request, now)
            if found is None:
                continue
            start, nodes = found
            assignments.append(self._place(job, start, nodes))
        return assignments

    def _schedule_easy(self, jobs: Sequence[Job], now: float) -> list[BackfillAssignment]:
        """EASY backfilling: one reservation (queue head), aggressive fill.

        The head of the remaining queue gets the earliest reservation.
        Every other job is backfilled only if its placement finishes by
        the head's reserved start or avoids the head's nodes entirely —
        the classic "don't delay the first job" guarantee.  The loop then
        repeats with the next unplaced head.
        """
        assignments: list[BackfillAssignment] = []
        remaining = list(jobs)
        while remaining:
            head, *rest = remaining
            found = self.earliest_start(head.request, now)
            placed_head = None
            if found is not None:
                start, nodes = found
                placed_head = self._place(head, start, nodes)
                assignments.append(placed_head)
            still_waiting: list[Job] = []
            for job in rest:
                found = self.earliest_start(job.request, now)
                if found is None:
                    continue
                start, nodes = found
                end = start + job.request.volume
                safe = placed_head is None or end <= placed_head.start or not (
                    set(node.resource.uid for node in nodes)
                    & set(node.resource.uid for node in placed_head.nodes)
                )
                if safe:
                    assignments.append(self._place(job, start, nodes))
                else:
                    still_waiting.append(job)
            if len(still_waiting) == len(rest) and placed_head is None:
                break  # no progress possible
            remaining = still_waiting
        return assignments
