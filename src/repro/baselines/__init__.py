"""Baseline schedulers the paper compares against (or that we add as controls).

* :mod:`repro.baselines.backfill` — classic backfilling (refs [11, 12]):
  the O(m²) slot-list window finder used in the complexity benchmark,
  plus queue-based conservative/EASY variants over grid nodes.
* :mod:`repro.baselines.firstfit` — earliest window, price-blind (ALP
  without its price condition): the non-economic control.
* :mod:`repro.baselines.greedy` — globally cheapest window (O(m²)): the
  cost-first ablation point.

All window finders share the :data:`repro.core.search.WindowFinder`
signature, so each can drive the multi-pass alternative search.
"""

from repro.baselines.backfill import (
    BackfillAssignment,
    BackfillScheduler,
    BackfillVariant,
    backfill_find_window,
)
from repro.baselines.firstfit import firstfit_find_window
from repro.baselines.greedy import cheapest_find_window
from repro.baselines.utility import (
    UtilityFunction,
    deadline_utility,
    earliness_utility,
    utility_find_window,
)

__all__ = [
    "backfill_find_window",
    "BackfillScheduler",
    "BackfillVariant",
    "BackfillAssignment",
    "firstfit_find_window",
    "cheapest_find_window",
    "UtilityFunction",
    "earliness_utility",
    "deadline_utility",
    "utility_find_window",
]
