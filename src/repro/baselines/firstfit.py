"""First-fit window finder — the price-blind control baseline.

First fit takes the earliest window of ``N`` suited slots while ignoring
every economic attribute.  It is exactly ALP with condition 2°c switched
off (equivalently AMP with an infinite budget), exposed as its own named
finder so that experiments can quote a non-economic control: the gap
between first-fit and ALP/AMP isolates what the *price* machinery costs
or buys.
"""

from __future__ import annotations

from repro.core import alp
from repro.core.job import ResourceRequest
from repro.core.slot import SlotList
from repro.core.window import Window

__all__ = ["firstfit_find_window"]


def firstfit_find_window(slot_list: SlotList, request: ResourceRequest) -> Window | None:
    """Earliest window of ``N`` performance/length-suited slots.

    Prices and budgets are ignored; performance (condition 2°a) and
    length (2°b) still apply, so the result is always executable.
    """
    return alp.find_window(slot_list, request, check_price=False)
