"""Greedy cheapest-window finder — a cost-first comparator.

Where ALP/AMP return the *earliest* acceptable window, this baseline
scans every candidate start time and returns the globally *cheapest*
window in the list (earliest among ties).  It trades the linear
complexity of the paper's algorithms for O(m²) probing, and start time
for cost — the opposite corner of the design space, which makes it a
useful ablation point for the benchmarks: how much cost does AMP's
earliest-fit greed actually leave on the table?
"""

from __future__ import annotations

from repro.core.alp import ForwardScan
from repro.core.amp import cheapest_subset
from repro.core.job import ResourceRequest
from repro.core.slot import SlotList
from repro.core.window import Window

__all__ = ["cheapest_find_window"]


def cheapest_find_window(
    slot_list: SlotList,
    request: ResourceRequest,
    *,
    budget: float | None = None,
) -> Window | None:
    """The cheapest feasible window in the whole list.

    Args:
        slot_list: Ordered vacant slots.
        request: The job's request; performance and length conditions
            apply per slot, and the budget bounds the window total.
        budget: Cost cap; defaults to ``request.budget``.

    Returns:
        The minimum-cost window of ``request.node_count`` slots whose
        total cost fits the budget; ties broken toward earlier starts.
        ``None`` when no candidate start admits a feasible window.
    """
    if budget is None:
        budget = request.budget
    best: Window | None = None
    scan = ForwardScan(request, check_price=False)
    for slot in slot_list:
        if not scan.offer(slot):
            continue
        if scan.size < request.node_count:
            continue
        chosen, total_cost = cheapest_subset(scan.candidates, request)
        if total_cost > budget:
            continue
        if best is None or total_cost < best.cost - 1e-12:
            best = scan.build_window(chosen)
    return best
