"""Worker-kill injection and the supervised-restart ladder.

Two parallel layers run real OS processes: the experiment engine's
:class:`~repro.sim.experiment.ParallelRunner` (a
``concurrent.futures`` process pool) and the
:class:`~repro.core.shard_search.ShardedSearchExecutor` process mode
(one pipe-connected ``multiprocessing.Process`` per shard).  This module
provides both the *supervision* those layers use to survive a dead
worker and the *injection* the chaos harness uses to kill one on
purpose:

* :class:`WorkerSupervisor` — the restart budget and bounded
  exponential-backoff ladder (the same shape as
  :class:`~repro.grid.resilience.RetryPolicy`, shrunk to process
  restarts).  Because every worker assignment is derived-seed pure,
  a restarted worker recomputes exactly what the dead one would have
  produced, so supervised recovery is byte-identical to an undisturbed
  run; an exhausted budget raises
  :class:`~repro.core.errors.WorkerLostError`.
* :class:`CrashOnceSpanTask` — a picklable stand-in for the experiment
  engine's span task that ``SIGKILL``s its own worker process exactly
  once (a sentinel file makes the second attempt succeed), driving the
  pool's broken-pool recovery path with a *real* killed process.
* :func:`kill_shard_worker` — ``SIGKILL`` one shard's worker process so
  the executor's next operation exercises respawn-and-replay.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.errors import InvalidRequestError, InvariantViolationError
from repro.obs.telemetry import get_telemetry

if TYPE_CHECKING:
    from repro.core.shard_search import ShardedSearchExecutor
    from repro.sim.experiment import ExperimentConfig, ExperimentResult

__all__ = [
    "DEFAULT_SUPERVISOR",
    "CrashOnceSpanTask",
    "WorkerSupervisor",
    "kill_shard_worker",
]


@dataclass(frozen=True)
class WorkerSupervisor:
    """Restart budget + backoff ladder for dead parallel workers.

    Attributes:
        max_restarts: How many times a lost worker (or broken pool) may
            be replaced before :class:`~repro.core.errors.WorkerLostError`
            is raised.  ``0`` disables supervision: the first loss is
            fatal.
        backoff_base: Sleep before the first restart, in seconds.  The
            default keeps tests fast while still exercising the ladder.
        backoff_factor: Multiplier applied per further restart.
        backoff_cap: Upper bound on any single sleep.
    """

    max_restarts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise InvalidRequestError(
                f"max_restarts must be >= 0, got {self.max_restarts!r}"
            )
        if self.backoff_base < 0:
            raise InvalidRequestError(
                f"backoff_base must be >= 0, got {self.backoff_base!r}"
            )
        if self.backoff_factor < 1.0:
            raise InvalidRequestError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.backoff_cap < self.backoff_base:
            raise InvalidRequestError(
                f"backoff_cap {self.backoff_cap!r} below base {self.backoff_base!r}"
            )

    def delay(self, restarts: int) -> float:
        """Backoff before restart number ``restarts`` (1-based).

        Same ladder as :meth:`RetryPolicy.delay
        <repro.grid.resilience.RetryPolicy.delay>`:
        ``min(cap, base * factor**(restarts - 1))``.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        exponent = max(0, restarts - 1)
        return min(self.backoff_cap, self.backoff_base * self.backoff_factor**exponent)

    def pause(self, restarts: int) -> None:
        """Sleep the ladder delay for restart number ``restarts``."""
        delay = self.delay(restarts)
        if delay > 0.0:
            time.sleep(delay)


#: Supervisor used when a parallel layer is constructed without one.
DEFAULT_SUPERVISOR = WorkerSupervisor()


@dataclass(frozen=True)
class CrashOnceSpanTask:
    """Span task that ``SIGKILL``s its own pool worker exactly once.

    A drop-in for :func:`repro.sim.experiment._run_span` (the
    ``span_task`` seam of :class:`~repro.sim.experiment.ParallelRunner`):
    the first worker whose span contains ``victim_index`` creates the
    sentinel file and kills itself — breaking the whole
    ``concurrent.futures`` pool, exactly like a real OOM-kill — and
    every later attempt, which sees the sentinel, computes the span
    normally.  Instances are pickled into the worker, so all state must
    be immutable values.

    Attributes:
        sentinel: Path used to remember that the kill already happened.
        victim_index: Iteration index whose owning span triggers the
            kill (faults target *work*, not worker identity, so the
            campaign is worker-count independent).
    """

    sentinel: str
    victim_index: int

    def __call__(
        self, config: "ExperimentConfig", start: int, stop: int
    ) -> "ExperimentResult":
        """Run the span, killing this worker first if it is the victim."""
        from repro.sim.experiment import _run_span

        if start <= self.victim_index < stop and not Path(self.sentinel).exists():
            Path(self.sentinel).touch()
            os.kill(os.getpid(), signal.SIGKILL)
        return _run_span(config, start, stop)


def kill_shard_worker(executor: "ShardedSearchExecutor", shard: int) -> int:
    """``SIGKILL`` the worker process behind ``shard``; returns its pid.

    Only meaningful for a process-mode
    :class:`~repro.core.shard_search.ShardedSearchExecutor`; the
    executor's next operation on the shard observes the dead pipe and
    runs its supervised respawn-and-replay path.

    Raises:
        InvalidRequestError: When the executor runs in-process or the
            shard index is out of range.
        InvariantViolationError: When the worker has no pid (never
            started).
    """
    workers: list[Any] = getattr(executor, "_workers", [])
    if not workers:
        raise InvalidRequestError(
            "kill_shard_worker needs a process-mode ShardedSearchExecutor "
            "(constructed with processes=True)"
        )
    if not 0 <= shard < len(workers):
        raise InvalidRequestError(
            f"shard {shard} out of range for {len(workers)} workers"
        )
    worker = workers[shard]
    pid = worker.pid
    if pid is None:
        raise InvariantViolationError(f"shard {shard} worker was never started")
    worker.kill()
    worker.join()
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("chaos.workers_killed", 1, layer="shard")
    return int(pid)
