"""Crash-point sweeps and chaos campaigns over the durable + parallel layers.

The harness turns the fault primitives (:mod:`repro.chaos.faults`,
:mod:`repro.chaos.fs`, :mod:`repro.chaos.proc`) into end-to-end
*campaigns*, each asserting the recovery contract of one layer:

* :func:`sweep_crash_points` — run a fixed reference workload through a
  :class:`~repro.grid.checkpoint.DurableMetascheduler`, crashing at
  **every** journal sequence point (full-record and torn variants),
  restoring from disk, finishing the workload, and requiring the final
  state to be byte-identical to an uninterrupted oracle run.
* :func:`sweep_experiment_resume` — the same sweep over the experiment
  engine's outcome checkpoint: crash at every record of a checkpointed
  series, resume with ``--resume`` semantics, and require the merged
  result to equal the uninterrupted series (serial and parallel).
* ``io`` campaign — the non-crash storage faults: ``ENOSPC`` and a
  failed ``fsync`` must fail-closed
  (:class:`~repro.core.errors.JournalClosedError` on the next append), a
  failed snapshot rename must leave the previous snapshot restorable,
  and a silent bit-flip must be *detected* on replay
  (:class:`~repro.core.errors.JournalCorruptError`), never re-applied.
* ``pool`` / ``shard`` campaigns — ``SIGKILL`` a real worker process
  under :class:`~repro.sim.experiment.ParallelRunner` and the
  process-mode :class:`~repro.core.shard_search.ShardedSearchExecutor`;
  supervised recovery must reproduce the undisturbed output exactly.

Campaigns never raise on a contract violation — they collect findings
into :class:`CampaignResult` so one run reports every failure — and all
randomized placement (which worker to kill, which record to starve)
derives from the single ``--chaos-seed`` via
:func:`~repro.chaos.faults.derive_fault_seed`, so a failing campaign
replays bit-for-bit.
"""

from __future__ import annotations

import json
import random
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.chaos.faults import FaultPlan, FaultPoint, SimulatedCrash, derive_fault_seed
from repro.chaos.fs import ChaosFilesystem
from repro.chaos.proc import CrashOnceSpanTask, WorkerSupervisor, kill_shard_worker
from repro.core import Job, Resource, ResourceRequest
from repro.core.errors import (
    InvalidRequestError,
    JournalClosedError,
    JournalCorruptError,
    PersistenceError,
)
from repro.core.journal import read_journal
from repro.core.shard_search import ShardedSearchExecutor
from repro.core.slot import Slot
from repro.core.window import Window
from repro.grid import Cluster, ComputeNode, Metascheduler, RetryPolicy, VOEnvironment
from repro.grid.checkpoint import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    DurableMetascheduler,
    snapshot_metascheduler,
)
from repro.obs.telemetry import get_telemetry
from repro.sim.checkpoint import ExperimentCheckpoint
from repro.sim.experiment import ExperimentConfig, ExperimentRunner, ParallelRunner

__all__ = [
    "CAMPAIGN_NAMES",
    "CampaignResult",
    "ChaosReport",
    "run_campaigns",
    "sweep_crash_points",
    "sweep_experiment_resume",
]

#: The reference metascheduler workload, as a replayable command script.
#: Each command journals exactly one record, so command ``c`` (1-based)
#: is journal write ``c + 1`` (the header is write 1) — the mapping the
#: crash-point sweep uses to address "journal append #k".
REFERENCE_SCRIPT: tuple[tuple[str | int | float, ...], ...] = (
    ("submit", 0, 0.0),
    ("submit", 1, 10.0),
    ("iteration", 0.0),
    ("submit", 2, 60.0),
    ("iteration", 50.0),
    ("iteration", 100.0),
    ("outage", 0, 160.0, 210.0),
    ("iteration", 150.0),
    ("completions", 250.0),
)


@dataclass
class CampaignResult:
    """Outcome of one chaos campaign.

    Attributes:
        name: Campaign name (see :data:`CAMPAIGN_NAMES`).
        runs: Fault scenarios executed.
        injected: Faults that actually fired across the scenarios.
        failures: One human-readable line per violated recovery
            contract; empty means the campaign passed.
    """

    name: str
    runs: int = 0
    injected: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every scenario upheld its recovery contract."""
        return not self.failures


@dataclass
class ChaosReport:
    """Aggregate of all campaigns of one ``chaos`` invocation."""

    #: The master ``--chaos-seed`` every campaign derived from.
    seed: int
    #: Per-campaign results, in execution order.
    campaigns: list[CampaignResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every campaign passed."""
        return all(campaign.ok for campaign in self.campaigns)

    def summary(self) -> str:
        """Render the per-campaign PASS/FAIL table plus failure detail."""
        lines = [f"chaos campaigns (seed {self.seed})"]
        for campaign in self.campaigns:
            verdict = "PASS" if campaign.ok else "FAIL"
            lines.append(
                f"  {campaign.name:<12} {verdict}  "
                f"({campaign.runs} scenarios, {campaign.injected} faults injected)"
            )
            for failure in campaign.failures:
                lines.append(f"    - {failure}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Reference workload (pinned uids, see tests/test_checkpoint.py)          #
# ---------------------------------------------------------------------- #


def _build_reference_meta() -> Metascheduler:
    """A small VO with pinned resource uids, so independent builds of
    the oracle and each crashed run produce byte-identical snapshots."""
    nodes = []
    for index in range(4):
        node = ComputeNode(
            f"n{index}", performance=1.0 + index * 0.5, price=1.0 + index
        )
        node.resource = Resource(
            f"n{index}",
            performance=1.0 + index * 0.5,
            price=1.0 + index,
            uid=900 + index,
        )
        nodes.append(node)
    environment = VOEnvironment([Cluster("c0", nodes)])
    return Metascheduler(
        environment, period=50.0, horizon=500.0, recovery=RetryPolicy()
    )


def _reference_job(index: int) -> Job:
    return Job(
        ResourceRequest(node_count=2, volume=60.0, max_price=10.0),
        name=f"job{index}",
        uid=1000 + index,
    )


def _apply_command(
    target: DurableMetascheduler | Metascheduler,
    command: tuple[str | int | float, ...],
) -> None:
    """Execute one script command on a durable or plain metascheduler."""
    meta = target.meta if isinstance(target, DurableMetascheduler) else target
    kind = command[0]
    if kind == "submit":
        target.submit(_reference_job(int(command[1])), float(command[2]))
    elif kind == "iteration":
        target.run_iteration(float(command[1]))
    elif kind == "completions":
        if isinstance(target, DurableMetascheduler):
            target.mark_completions(float(command[1]))
        else:
            meta.trace.mark_completions(float(command[1]))
    elif kind == "outage":
        node = list(meta.environment.nodes())[int(command[1])]
        target.inject_outage(node, float(command[2]), float(command[3]))
    else:
        raise InvalidRequestError(f"unknown reference-script command {kind!r}")


def _canonical(meta: Metascheduler) -> str:
    return json.dumps(snapshot_metascheduler(meta), sort_keys=True)


def _reference_oracle() -> str:
    """Canonical final state of an uninterrupted reference run."""
    meta = _build_reference_meta()
    for command in REFERENCE_SCRIPT:
        _apply_command(meta, command)
    return _canonical(meta)


def _applied_commands(directory: Path) -> int:
    """Commands durably on disk: the last journal seq (header is 0).

    A torn trailing record is the crash artefact and counts as *not*
    applied — exactly what restore will skip.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        records = read_journal(directory / JOURNAL_NAME)
    return records[-1].seq if records else 0


def _restore_and_finish(directory: Path) -> str:
    """Restore a crashed durable run, finish the script, return state."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        applied = _applied_commands(directory)
        restored = DurableMetascheduler.restore(directory, fsync=False)
    try:
        for command in REFERENCE_SCRIPT[applied:]:
            _apply_command(restored, command)
        return _canonical(restored.meta)
    finally:
        restored._journal.close()


# ---------------------------------------------------------------------- #
# Campaign: durable metascheduler crash-point sweep                       #
# ---------------------------------------------------------------------- #


def sweep_crash_points(
    base_dir: str | Path,
    *,
    seed: int = 0,
    modes: Sequence[str] = ("crash", "torn"),
    snapshot_every: int = 3,
) -> CampaignResult:
    """Crash a durable run at every journal sequence point; verify restore.

    For every command of :data:`REFERENCE_SCRIPT` and every ``mode``
    (``crash`` = the record reached the OS buffer, ``torn`` = half of it
    did), the run is killed at that command's journal append, restored
    from disk, resumed from the journal's high-water mark, and the final
    state compared byte-for-byte against the uninterrupted oracle.

    The sweep is exhaustive rather than sampled, so ``seed`` only labels
    the campaign; it exists for signature uniformity with the sampled
    campaigns.
    """
    base = Path(base_dir)
    oracle = _reference_oracle()
    result = CampaignResult(name="sweep")
    for mode in modes:
        for command_index in range(1, len(REFERENCE_SCRIPT) + 1):
            result.runs += 1
            label = f"{mode}@journal-append-{command_index}"
            directory = base / f"sweep-{mode}-{command_index:02d}"
            plan = FaultPlan(
                (
                    FaultPoint(
                        "write", mode, index=command_index + 1, path=JOURNAL_NAME
                    ),
                )
            )
            durable = DurableMetascheduler(
                _build_reference_meta(),
                directory,
                snapshot_every=snapshot_every,
                fsync=False,
                fs=ChaosFilesystem(plan),
            )
            crashed = False
            try:
                for command in REFERENCE_SCRIPT:
                    _apply_command(durable, command)
            except SimulatedCrash:
                crashed = True
            finally:
                durable._journal.close()
            result.injected += len(plan.injected)
            if not crashed:
                result.failures.append(f"{label}: fault never fired")
                continue
            final = _restore_and_finish(directory)
            if final != oracle:
                result.failures.append(
                    f"{label}: restored state diverges from the oracle"
                )
    return result


# ---------------------------------------------------------------------- #
# Campaign: experiment checkpoint crash/resume sweep                      #
# ---------------------------------------------------------------------- #


def sweep_experiment_resume(
    base_dir: str | Path,
    *,
    seed: int = 20110368,
    iterations: int = 6,
    modes: Sequence[str] = ("crash", "torn"),
) -> CampaignResult:
    """Crash a checkpointed series at every outcome record; verify resume.

    Serial sweep: every outcome record of an
    :class:`~repro.sim.experiment.ExperimentRunner` run is crashed at
    (full and torn), then the series is resumed from the checkpoint path
    and must merge to the uninterrupted result.  A second, sampled pass
    does the same through :class:`~repro.sim.experiment.ParallelRunner`
    (two workers), exercising the checkpointed parallel path.
    """
    base = Path(base_dir)
    base.mkdir(parents=True, exist_ok=True)
    config = ExperimentConfig(iterations=iterations, seed=seed)
    result = CampaignResult(name="experiment")
    serial_reference = ExperimentRunner(config).run()
    for mode in modes:
        for record in range(1, iterations + 1):
            result.runs += 1
            label = f"serial-{mode}@outcome-{record}"
            path = base / f"experiment-{mode}-{record:02d}.jsonl"
            plan = FaultPlan(
                (FaultPoint("write", mode, index=record + 1, path=path.name),)
            )
            store = ExperimentCheckpoint(
                path, config, resume=False, fs=ChaosFilesystem(plan)
            )
            crashed = False
            try:
                ExperimentRunner(config).run(checkpoint=store)
            except SimulatedCrash:
                crashed = True
            result.injected += len(plan.injected)
            if not crashed:
                result.failures.append(f"{label}: fault never fired")
                continue
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                resumed = ExperimentRunner(config).run(
                    checkpoint=str(path), resume=True
                )
            if resumed != serial_reference:
                result.failures.append(
                    f"{label}: resumed result diverges from the uninterrupted run"
                )
    # Parallel pass: same contract through the two-worker checkpointed
    # path; sampled (one crash point per mode) to bound wall time.
    parallel_reference = ParallelRunner(config, workers=2).run()
    sample_seed = derive_fault_seed(seed, "experiment-parallel")
    rng = random.Random(sample_seed)
    for mode in modes:
        record = rng.randrange(1, iterations + 1)
        result.runs += 1
        label = f"parallel-{mode}@outcome-{record}"
        path = base / f"experiment-parallel-{mode}-{record:02d}.jsonl"
        plan = FaultPlan(
            (FaultPoint("write", mode, index=record + 1, path=path.name),)
        )
        store = ExperimentCheckpoint(
            path, config, resume=False, fs=ChaosFilesystem(plan)
        )
        crashed = False
        try:
            ParallelRunner(config, workers=2).run(checkpoint=store)
        except SimulatedCrash:
            crashed = True
        result.injected += len(plan.injected)
        if not crashed:
            result.failures.append(f"{label}: fault never fired")
            continue
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            resumed = ParallelRunner(config, workers=2).run(
                checkpoint=str(path), resume=True
            )
        if resumed != parallel_reference:
            result.failures.append(
                f"{label}: resumed result diverges from the uninterrupted run"
            )
    return result


# ---------------------------------------------------------------------- #
# Campaign: non-crash I/O faults (fail-closed / survive / detect)         #
# ---------------------------------------------------------------------- #


def _io_campaign(base_dir: str | Path, seed: int) -> CampaignResult:
    """ENOSPC, failed fsync, failed rename, and a silent bit-flip."""
    base = Path(base_dir)
    base.mkdir(parents=True, exist_ok=True)
    oracle = _reference_oracle()
    result = CampaignResult(name="io")
    placement_seed = derive_fault_seed(seed, "io-placement")
    rng = random.Random(placement_seed)

    def run_faulted(
        directory: Path, plan: FaultPlan, *, fsync: bool
    ) -> tuple[DurableMetascheduler, str | None]:
        """Apply the script under ``plan``; returns the durable plus the
        name of the library error that interrupted it (None = ran out)."""
        durable = DurableMetascheduler(
            _build_reference_meta(),
            directory,
            snapshot_every=3,
            fsync=fsync,
            fs=ChaosFilesystem(plan),
        )
        try:
            for command in REFERENCE_SCRIPT:
                _apply_command(durable, command)
        except PersistenceError as error:
            return durable, type(error).__name__
        return durable, None

    def check_fail_closed(name: str, durable: DurableMetascheduler) -> None:
        """After the fault, the journal must refuse further appends."""
        try:
            _apply_command(durable, ("iteration", 400.0))
        except JournalClosedError:
            return
        result.failures.append(
            f"{name}: journal accepted an append after an I/O failure "
            "instead of failing closed"
        )

    # ENOSPC on a journal append: nothing hit the disk, the handle must
    # fail-closed, and restore+resume must reconverge on the oracle.
    result.runs += 1
    command_index = rng.randrange(3, len(REFERENCE_SCRIPT))
    directory = base / "io-enospc"
    plan = FaultPlan(
        (FaultPoint("write", "enospc", index=command_index + 1, path=JOURNAL_NAME),)
    )
    durable, interrupted = run_faulted(directory, plan, fsync=False)
    result.injected += len(plan.injected)
    if interrupted is None:
        result.failures.append("enospc: fault never fired")
    else:
        check_fail_closed("enospc", durable)
        if _restore_and_finish(directory) != oracle:
            result.failures.append("enospc: restored state diverges from the oracle")

    # Failed fsync (fsyncgate): the record may or may not be durable, so
    # the handle must poison itself; reopening resumes from whatever the
    # scan finds on disk.
    result.runs += 1
    command_index = rng.randrange(3, len(REFERENCE_SCRIPT))
    directory = base / "io-fsync"
    plan = FaultPlan(
        (
            FaultPoint(
                "fsync", "fsync_fail", index=command_index + 1, path=JOURNAL_NAME
            ),
        )
    )
    durable, interrupted = run_faulted(directory, plan, fsync=True)
    result.injected += len(plan.injected)
    if interrupted is None:
        result.failures.append("fsync_fail: fault never fired")
    else:
        check_fail_closed("fsync_fail", durable)
        if _restore_and_finish(directory) != oracle:
            result.failures.append(
                "fsync_fail: restored state diverges from the oracle"
            )

    # Failed snapshot rename: the previous snapshot must stay intact and
    # restorable; the journal (which already holds the command) resumes.
    result.runs += 1
    directory = base / "io-rename"
    plan = FaultPlan(
        (FaultPoint("replace", "rename_fail", index=2, path=SNAPSHOT_NAME),)
    )
    durable, interrupted = run_faulted(directory, plan, fsync=False)
    durable._journal.close()
    result.injected += len(plan.injected)
    if interrupted is None:
        result.failures.append("rename_fail: fault never fired")
    elif _restore_and_finish(directory) != oracle:
        result.failures.append("rename_fail: restored state diverges from the oracle")

    # Silent mid-file bit-flip: the full run "succeeds", but replay must
    # detect the corruption (checksum / sequence validation), never
    # silently re-apply the mutated record.
    result.runs += 1
    directory = base / "io-bitflip"
    flip_index = rng.randrange(2, len(REFERENCE_SCRIPT) - 1)
    plan = FaultPlan(
        (FaultPoint("write", "bitflip", index=flip_index + 1, path=JOURNAL_NAME),)
    )
    durable, interrupted = run_faulted(directory, plan, fsync=False)
    durable._journal.close()
    result.injected += len(plan.injected)
    if interrupted is not None:
        result.failures.append(f"bitflip: run failed early with {interrupted}")
    else:
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                DurableMetascheduler.restore(directory, fsync=False)
            result.failures.append(
                "bitflip: restore silently replayed a corrupted journal record"
            )
        except JournalCorruptError:
            pass

    # ENOSPC on the experiment checkpoint format: the run dies with a
    # typed error, the writer fails closed, and a resume recomputes the
    # lost iteration.
    result.runs += 1
    config = ExperimentConfig(iterations=4, seed=seed)
    reference = ExperimentRunner(config).run()
    path = base / "io-sim-enospc.jsonl"
    plan = FaultPlan((FaultPoint("write", "enospc", index=3, path=path.name),))
    store = ExperimentCheckpoint(path, config, resume=False, fs=ChaosFilesystem(plan))
    try:
        ExperimentRunner(config).run(checkpoint=store)
        result.failures.append("sim-enospc: fault never fired")
    except PersistenceError:
        if not store._writer.poisoned:
            result.failures.append(
                "sim-enospc: checkpoint writer did not fail-closed"
            )
        resumed = ExperimentRunner(config).run(checkpoint=str(path), resume=True)
        if resumed != reference:
            result.failures.append(
                "sim-enospc: resumed result diverges from the uninterrupted run"
            )
    result.injected += len(plan.injected)
    return result


# ---------------------------------------------------------------------- #
# Campaign: killed pool worker (ParallelRunner)                           #
# ---------------------------------------------------------------------- #


def _pool_campaign(base_dir: str | Path, seed: int) -> CampaignResult:
    """SIGKILL one experiment pool worker; supervised retry must converge."""
    base = Path(base_dir)
    base.mkdir(parents=True, exist_ok=True)
    result = CampaignResult(name="pool", runs=1)
    config = ExperimentConfig(iterations=8, seed=seed)
    reference = ParallelRunner(config, workers=2).run()
    victim_seed = derive_fault_seed(seed, "pool-kill")
    victim = random.Random(victim_seed).randrange(config.iterations)
    sentinel = base / "pool.sentinel"
    runner = ParallelRunner(
        config,
        workers=2,
        span_task=CrashOnceSpanTask(str(sentinel), victim),
    )
    outcome = runner.run()
    if not sentinel.exists():
        result.failures.append("pool: the span task never killed its worker")
    else:
        result.injected += 1
    if outcome != reference:
        result.failures.append(
            "pool: result after supervised pool retry diverges from the "
            "undisturbed run"
        )
    return result


# ---------------------------------------------------------------------- #
# Campaign: killed shard worker (ShardedSearchExecutor)                   #
# ---------------------------------------------------------------------- #


def _shard_slots(rng: random.Random) -> list[Slot]:
    """A deterministic multi-resource vacant-slot list (pinned uids)."""
    slots: list[Slot] = []
    for offset in range(12):
        resource = Resource(
            f"r{offset}",
            performance=1.0 + (offset % 4) * 0.5,
            price=1.0 + (offset % 5),
            uid=700 + offset,
        )
        clock = 0.0
        for _ in range(3):
            clock += rng.uniform(0.0, 5.0)
            length = rng.uniform(30.0, 90.0)
            slots.append(Slot(resource, clock, clock + length, resource.price))
            clock += length
    return slots


def _window_signature(
    window: "Window | None",
) -> tuple[tuple[float, float, int], ...] | None:
    if window is None:
        return None
    return tuple(
        (allocation.start, allocation.end, allocation.source.resource.uid)
        for allocation in window.allocations
    )


def _slot_rows(executor: ShardedSearchExecutor) -> list[tuple[float, float, int, float]]:
    return [
        (slot.start, slot.end, slot.resource.uid, slot.price)
        for slot in executor.slot_list()
    ]


def _shard_campaign(base_dir: str | Path, seed: int) -> CampaignResult:
    """SIGKILL shard workers mid-sequence; replayed state must match."""
    result = CampaignResult(name="shard", runs=1)
    rows_seed = derive_fault_seed(seed, "shard-slots")
    rng = random.Random(rows_seed)
    slots = _shard_slots(rng)
    requests = [
        ResourceRequest(node_count=2, volume=40.0, max_price=8.0),
        ResourceRequest(node_count=3, volume=60.0, max_price=9.0),
        ResourceRequest(node_count=2, volume=30.0, max_price=6.0),
        ResourceRequest(node_count=2, volume=50.0, max_price=9.0),
        ResourceRequest(node_count=1, volume=25.0, max_price=5.0),
    ]
    shards = 3
    kill_steps = {1, 3}
    victim_seed = derive_fault_seed(seed, "shard-kill")
    victim_rng = random.Random(victim_seed)
    supervisor = WorkerSupervisor(max_restarts=2, backoff_base=0.0, backoff_cap=0.0)
    oracle = ShardedSearchExecutor(slots, shards)
    subject = ShardedSearchExecutor(
        slots, shards, processes=True, supervisor=supervisor
    )
    try:
        for step, request in enumerate(requests):
            if step in kill_steps:
                kill_shard_worker(subject, victim_rng.randrange(shards))
                result.injected += 1
            oracle_window = oracle.find_alp_window(request)
            subject_window = subject.find_alp_window(request)
            if _window_signature(oracle_window) != _window_signature(subject_window):
                result.failures.append(
                    f"shard: step {step} find diverges after supervised respawn"
                )
                break
            if oracle_window is not None and subject_window is not None:
                oracle.commit(oracle_window)
                subject.commit(subject_window)
        if _slot_rows(oracle) != _slot_rows(subject):
            result.failures.append(
                "shard: final slot state diverges from the in-process oracle"
            )
    finally:
        subject.close()
        oracle.close()
    return result


# ---------------------------------------------------------------------- #
# Campaign registry + entry point                                         #
# ---------------------------------------------------------------------- #


def _sweep_campaign(base_dir: str | Path, seed: int) -> CampaignResult:
    return sweep_crash_points(base_dir, seed=seed)


def _experiment_campaign(base_dir: str | Path, seed: int) -> CampaignResult:
    return sweep_experiment_resume(base_dir, seed=seed)


_CAMPAIGNS: dict[str, Callable[[str | Path, int], CampaignResult]] = {
    "sweep": _sweep_campaign,
    "experiment": _experiment_campaign,
    "io": _io_campaign,
    "pool": _pool_campaign,
    "shard": _shard_campaign,
}

#: Campaign names accepted by :func:`run_campaigns` and ``repro chaos``.
CAMPAIGN_NAMES: tuple[str, ...] = tuple(_CAMPAIGNS)


def run_campaigns(
    base_dir: str | Path,
    *,
    seed: int = 20110368,
    names: Sequence[str] | None = None,
) -> ChaosReport:
    """Run the selected chaos campaigns; returns the aggregate report.

    Args:
        base_dir: Scratch directory for journals, checkpoints, and
            sentinels (created if missing).
        seed: The single master seed (``--chaos-seed``) every campaign
            derives its fault placement from.
        names: Campaign subset to run, in :data:`CAMPAIGN_NAMES` order;
            ``None`` runs all of them.

    Raises:
        InvalidRequestError: For an unknown campaign name.
    """
    base = Path(base_dir)
    base.mkdir(parents=True, exist_ok=True)
    selected = list(CAMPAIGN_NAMES) if names is None else list(names)
    for name in selected:
        if name not in _CAMPAIGNS:
            raise InvalidRequestError(
                f"unknown chaos campaign {name!r}; expected a subset of "
                f"{list(CAMPAIGN_NAMES)}"
            )
    report = ChaosReport(seed=seed)
    telemetry = get_telemetry()
    for name in CAMPAIGN_NAMES:
        if name not in selected:
            continue
        campaign = _CAMPAIGNS[name](base / name, seed)
        report.campaigns.append(campaign)
        if telemetry.enabled:
            telemetry.count(
                "chaos.campaigns", 1, campaign=name, ok=str(campaign.ok).lower()
            )
            if telemetry.decisions.enabled:
                telemetry.decisions.emit(
                    "chaos.campaign",
                    campaign=name,
                    ok=campaign.ok,
                    runs=campaign.runs,
                    injected=campaign.injected,
                    failures=len(campaign.failures),
                )
    return report
