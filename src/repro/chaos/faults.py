"""Seeded fault schedules: the ``FaultPlan``/``FaultPoint`` model.

A chaos campaign is a *plan*: a small set of :class:`FaultPoint` entries,
each naming an operation (``write`` / ``fsync`` / ``replace`` /
``worker``), a fault kind, a target filter, and the 1-based occurrence at
which to fire — "tear journal append #17", "fail the snapshot rename",
"kill the worker process for shard 2".  The instrumented seams (the
chaos filesystem in :mod:`repro.chaos.fs`, the worker-kill helpers in
:mod:`repro.chaos.proc`) report every operation to the plan, which
decides deterministically whether that call is the one that faults.

Determinism is the whole point: plans contain no ambient entropy.  Any
randomized placement of fault points derives its RNG seed through
:func:`derive_fault_seed` from the campaign's single master seed
(``--chaos-seed``), the same discipline RPR001/RPR002 enforce for
iteration and node seeds — so a failing campaign replays bit-for-bit
from one integer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.errors import InvalidRequestError
from repro.obs.telemetry import get_telemetry

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
    "SimulatedCrash",
    "derive_fault_seed",
]

#: Fault kinds each instrumented operation supports.  ``crash`` models a
#: process death (``SIGKILL`` mid-syscall) at that point; the others are
#: I/O errors the caller is expected to survive or fail-closed on.
FAULT_KINDS: dict[str, tuple[str, ...]] = {
    "write": ("crash", "torn", "enospc", "bitflip"),
    "fsync": ("crash", "fsync_fail"),
    "replace": ("crash", "rename_fail"),
    "worker": ("kill",),
}


def derive_fault_seed(master_seed: int, label: str) -> int:
    """Derive a per-campaign RNG seed from the chaos master seed.

    Mirrors :func:`~repro.sim.experiment.derive_iteration_seed`: a keyed
    blake2b digest of ``master_seed`` and a campaign label, so every
    randomized fault placement is a pure function of ``--chaos-seed``
    and never of ambient entropy (RPR001/RPR002).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:chaos:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class SimulatedCrash(BaseException):
    """A fault point modelling process death fired.

    Derives from :class:`BaseException` (like :class:`KeyboardInterrupt`)
    so no library ``except OSError`` / ``except SchedulingError`` handler
    can absorb it: a simulated crash must unwind exactly as far as a real
    ``SIGKILL`` would — all the way out of the component under test.
    The chaos harness catches it, abandons the in-memory state, and
    exercises the restore path.
    """

    def __init__(self, point: "FaultPoint", target: str) -> None:
        super().__init__(f"simulated crash at {point.describe()} on {target!r}")
        #: The fault point that fired.
        self.point = point
        #: Name of the file/process the faulted operation targeted.
        self.target = target


@dataclass(frozen=True)
class FaultPoint:
    """One scheduled fault: *the Nth matching operation fails like this*.

    Attributes:
        op: Instrumented operation: ``"write"``, ``"fsync"``,
            ``"replace"`` (filesystem seam) or ``"worker"`` (process
            seam).
        kind: Fault to inject, one of :data:`FAULT_KINDS` for ``op``.
        index: 1-based occurrence of the matching operation to fault
            (``index=17`` fires on the 17th matching call).
        path: Substring filter on the operation's target (file name or
            worker label); ``None`` matches every target.
    """

    op: str
    kind: str
    index: int = 1
    path: str | None = None

    def __post_init__(self) -> None:
        kinds = FAULT_KINDS.get(self.op)
        if kinds is None:
            raise InvalidRequestError(
                f"unknown fault op {self.op!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.kind not in kinds:
            raise InvalidRequestError(
                f"fault kind {self.kind!r} is not valid for op {self.op!r}; "
                f"expected one of {list(kinds)}"
            )
        if self.index < 1:
            raise InvalidRequestError(
                f"fault index is 1-based and must be >= 1, got {self.index}"
            )

    def matches(self, op: str, target: str) -> bool:
        """Whether an operation on ``target`` is counted by this point."""
        if op != self.op:
            return False
        return self.path is None or self.path in target

    def describe(self) -> str:
        """Human-readable label, e.g. ``"write#17(torn)@journal.jsonl"``."""
        scope = f"@{self.path}" if self.path is not None else ""
        return f"{self.op}#{self.index}({self.kind}){scope}"


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault that actually fired during a campaign."""

    #: The fault point that fired.
    point: FaultPoint
    #: Target of the faulted operation (file name or worker label).
    target: str
    #: Global 1-based count of matching operations when it fired.
    call: int


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, consulted by instrumented seams.

    The plan is *stateful*: every call to :meth:`observe` counts the
    operation against each armed point and returns the point that fires
    on this call, if any.  Fired points are consumed — a plan injects
    each fault exactly once, and :attr:`injected` records what fired so
    campaigns can assert their faults actually landed.
    """

    #: The scheduled fault points.
    points: tuple[FaultPoint, ...] = ()
    #: Faults that fired, in firing order.
    injected: list[InjectedFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points = tuple(self.points)
        self._seen: dict[int, int] = {slot: 0 for slot in range(len(self.points))}
        self._consumed: set[int] = set()

    def observe(self, op: str, target: str) -> FaultPoint | None:
        """Count one operation; return the fault point firing on it, if any.

        All armed points matching ``(op, target)`` advance their
        occurrence counters; the first one whose counter reaches its
        ``index`` is consumed and returned.  Instrumented seams call
        this once per operation and inject the returned fault.
        """
        fired: FaultPoint | None = None
        fired_call = 0
        for slot, point in enumerate(self.points):
            if slot in self._consumed or not point.matches(op, target):
                continue
            self._seen[slot] += 1
            if fired is None and self._seen[slot] == point.index:
                fired = point
                fired_call = self._seen[slot]
                self._consumed.add(slot)
        if fired is not None:
            self.injected.append(
                InjectedFault(point=fired, target=target, call=fired_call)
            )
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.count("chaos.faults_injected", 1, op=fired.op, kind=fired.kind)
                if telemetry.decisions.enabled:
                    telemetry.decisions.emit(
                        "chaos.fault",
                        fault_op=fired.op,
                        kind=fired.kind,
                        target=target,
                        call=fired_call,
                    )
        return fired

    @property
    def pending(self) -> tuple[FaultPoint, ...]:
        """Points that have not fired yet."""
        return tuple(
            point
            for slot, point in enumerate(self.points)
            if slot not in self._consumed
        )

    def crash(self, point: FaultPoint, target: str) -> SimulatedCrash:
        """Build the :class:`SimulatedCrash` for a ``crash``-kind firing."""
        return SimulatedCrash(point, target)
