"""Fault-injecting filesystem: the chaos side of the ``fsio`` seam.

:class:`ChaosFilesystem` subclasses :class:`~repro.core.fsio.FileSystem`
and consults a :class:`~repro.chaos.faults.FaultPlan` before every
write, fsync, and rename the durability layer performs.  The injectable
faults are the classic storage failure modes:

========== =============================================================
``crash``  :class:`~repro.chaos.faults.SimulatedCrash` raised at the
           operation — a ``write`` crash lands *after* the full record
           hits the OS buffer, a ``torn`` crash lands mid-record, a
           ``replace`` crash leaves only the temp file.
``torn``   Half the payload is written, then the process "dies" — the
           torn-trailing-record case the journal must skip on reopen.
``enospc`` ``OSError(ENOSPC)`` before any byte is written — the journal
           must fail-closed (:class:`~repro.core.errors.JournalClosedError`
           on later appends).
``fsync_fail`` ``OSError(EIO)`` from ``fsync`` — the fsyncgate pattern:
           durability of the flushed record is unknown, the handle must
           poison itself.
``rename_fail`` ``OSError(EACCES)`` from the snapshot-publishing
           ``os.replace`` — the previous snapshot must survive intact.
``bitflip`` One bit of the payload flips silently before the write — the
           CRC must catch it on replay, never silently re-apply it.
========== =============================================================

Everything is deterministic: the plan decides *which* call faults, and
the bit-flip mutates a fixed position, so a failing campaign replays
exactly from its ``--chaos-seed``.
"""

from __future__ import annotations

import errno
from pathlib import Path
from typing import IO

from repro.chaos.faults import FaultPlan, FaultPoint
from repro.core.errors import InvariantViolationError
from repro.core.fsio import FileSystem

__all__ = ["ChaosFilesystem", "flip_one_bit"]


def flip_one_bit(text: str) -> str:
    """Flip the low bit of the last ASCII digit in ``text``.

    Deterministic by construction, and a digit XOR 1 is still a digit,
    so the mutated line stays valid JSON — the corruption is only
    detectable by the record checksum, which is exactly the property the
    CRC exists to provide.
    """
    for position in range(len(text) - 1, -1, -1):
        if text[position].isdigit():
            flipped = chr(ord(text[position]) ^ 1)
            return text[:position] + flipped + text[position + 1 :]
    raise InvariantViolationError(
        "bitflip fault needs at least one digit in the payload; journal "
        "records always contain seq/crc digits"
    )


class ChaosFilesystem(FileSystem):
    """A :class:`~repro.core.fsio.FileSystem` that injects planned faults.

    Args:
        plan: The fault schedule consulted before every instrumented
            operation.  Operations the plan does not fault pass straight
            through to the real filesystem.
    """

    def __init__(self, plan: FaultPlan) -> None:
        #: The fault schedule driving this filesystem.
        self.plan = plan

    def _target(self, stream: IO[str]) -> str:
        name = getattr(stream, "name", None)
        return str(name) if name is not None else "<stream>"

    def write(self, stream: IO[str], text: str) -> None:
        """Write ``text``, or inject the planned write fault."""
        target = self._target(stream)
        point = self.plan.observe("write", target)
        if point is None:
            super().write(stream, text)
            return
        self._inject_write(point, stream, text, target)

    def _inject_write(
        self, point: FaultPoint, stream: IO[str], text: str, target: str
    ) -> None:
        if point.kind == "enospc":
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        if point.kind == "bitflip":
            super().write(stream, flip_one_bit(text))
            return
        if point.kind == "torn":
            # Half the record reaches the OS, then the "process dies":
            # flush the fragment so the tear is actually on disk, exactly
            # what a SIGKILL between write() and the trailing newline
            # leaves behind.
            super().write(stream, text[: max(1, len(text) // 2)])
            super().flush(stream)
            raise self.plan.crash(point, target)
        # kind == "crash": the full record reached the OS buffer first.
        super().write(stream, text)
        super().flush(stream)
        raise self.plan.crash(point, target)

    def fsync(self, stream: IO[str]) -> None:
        """Fsync, or inject the planned fsync fault."""
        target = self._target(stream)
        point = self.plan.observe("fsync", target)
        if point is None:
            super().fsync(stream)
            return
        if point.kind == "fsync_fail":
            # Flush so user-space buffers drain, then report the device
            # error fsyncgate made famous: the kernel may have dropped
            # the dirty pages, durability is unknown.
            super().flush(stream)
            raise OSError(errno.EIO, "fsync failed: Input/output error (injected)")
        super().fsync(stream)
        raise self.plan.crash(point, target)

    def replace(self, source: str | Path, target: str | Path) -> None:
        """Rename, or inject the planned rename fault."""
        label = str(target)
        point = self.plan.observe("replace", label)
        if point is None:
            super().replace(source, target)
            return
        if point.kind == "rename_fail":
            raise OSError(
                errno.EACCES, f"cannot replace {label!r}: Permission denied (injected)"
            )
        # kind == "crash": die before the rename publishes the new file.
        raise self.plan.crash(point, label)
