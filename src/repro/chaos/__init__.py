"""Deterministic chaos engine: seeded fault injection for the scheduler.

The durability layer (journal + snapshots) and both parallel execution
layers (the experiment process pool, the sharded search workers) promise
to survive crashes, torn writes, full disks, and killed processes.  This
package makes those promises *testable* instead of aspirational:

* :mod:`repro.chaos.faults` — the :class:`FaultPlan`/:class:`FaultPoint`
  model.  Faults are scheduled from a seed derived with
  :func:`derive_fault_seed` (no ambient entropy, per RPR001/RPR002), so
  every campaign replays exactly from one ``--chaos-seed``.
* :mod:`repro.chaos.fs` — a fault-injecting
  :class:`~repro.core.fsio.FileSystem` threaded through the journal and
  both checkpoint formats: torn writes, ``ENOSPC``, failed ``fsync``,
  rename failure, CRC bit-flips, and simulated crashes.
* :mod:`repro.chaos.proc` — worker-kill injection and the bounded
  exponential-backoff :class:`WorkerSupervisor` used by
  :class:`~repro.sim.experiment.ParallelRunner` and the
  :class:`~repro.core.shard_search.ShardedSearchExecutor` process mode.
* :mod:`repro.chaos.harness` — the crash-point sweep: crash a reference
  :class:`~repro.grid.checkpoint.DurableMetascheduler` run at *every*
  journal sequence point, restore, and assert byte-identity against the
  uninterrupted oracle; plus killed-pool-worker and killed-shard-worker
  campaigns.  Exposed on the CLI as ``repro-scheduler chaos``.
"""

from repro.chaos.faults import (
    FaultPlan,
    FaultPoint,
    InjectedFault,
    SimulatedCrash,
    derive_fault_seed,
)
from repro.chaos.fs import ChaosFilesystem
from repro.chaos.harness import (
    CampaignResult,
    ChaosReport,
    run_campaigns,
    sweep_crash_points,
    sweep_experiment_resume,
)
from repro.chaos.proc import CrashOnceSpanTask, WorkerSupervisor, kill_shard_worker

__all__ = [
    "CampaignResult",
    "ChaosFilesystem",
    "ChaosReport",
    "CrashOnceSpanTask",
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
    "SimulatedCrash",
    "WorkerSupervisor",
    "derive_fault_seed",
    "kill_shard_worker",
    "run_campaigns",
    "sweep_crash_points",
    "sweep_experiment_resume",
]
