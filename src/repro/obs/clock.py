"""The injectable wall clock: the only module allowed to read real time.

Telemetry records (span start times, event timestamps, trace headers)
carry wall-clock stamps for log correlation.  Those are the *only*
legitimate wall-clock reads in the library — everywhere else an ambient
``time.time()`` would make output depend on when the code ran, which is
exactly what the determinism test matrix forbids (``repro-lint`` rule
RPR001 enforces this; this module is its entire allowlist).

Funnelling every stamp through :func:`now` buys two things:

* tests freeze time (:func:`freeze` / :func:`set_clock`) and assert on
  exact timestamps instead of ``pytest.approx`` windows;
* the lint allowlist shrinks to one module, so a new wall-clock read
  anywhere else is a lint failure, not a review-time judgement call.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["now", "set_clock", "reset_clock", "freeze", "system_clock"]

#: A clock is any zero-argument callable returning seconds since epoch.
Clock = Callable[[], float]


def system_clock() -> float:
    """The real wall clock (``time.time``)."""
    return _time.time()


_active: Clock = system_clock


def now() -> float:
    """Seconds since epoch according to the active clock."""
    return _active()


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` as the active clock; returns the previous one."""
    global _active
    previous = _active
    _active = clock
    return previous


def reset_clock() -> None:
    """Restore the real system clock."""
    set_clock(system_clock)


@contextmanager
def freeze(at: float = 0.0) -> Iterator[Callable[[float], None]]:
    """Freeze :func:`now` at ``at`` for the duration of the block.

    Yields an ``advance(seconds)`` callable so tests can step time
    explicitly::

        with freeze(at=1000.0) as advance:
            telemetry.event("tick")   # stamped 1000.0
            advance(2.5)
            telemetry.event("tock")   # stamped 1002.5
    """
    frozen = {"value": float(at)}

    def frozen_clock() -> float:
        return frozen["value"]

    def advance(seconds: float) -> None:
        frozen["value"] += seconds

    previous = set_clock(frozen_clock)
    try:
        yield advance
    finally:
        set_clock(previous)
