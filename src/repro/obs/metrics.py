"""Process-local metric instruments: counters, gauges, and histograms.

The scheduler's observability layer (ISSUE: "make the two-phase pipeline
measurable") needs exactly three instrument kinds:

* :class:`Counter` — monotonically increasing totals, e.g.
  ``search.slots_scanned`` or ``meta.postponements``;
* :class:`Gauge` — last-written values, e.g. ``meta.backlog``;
* :class:`Histogram` — value distributions with fixed bucket boundaries,
  e.g. ``search.alternatives_per_job`` or span durations.

Instruments live in a :class:`MetricRegistry`, keyed by metric name plus
an optional label set (``search.windows_found{algo=amp}``).  The module
is dependency-free (standard library only) so the hot algorithm modules
can import it without any risk of circular imports, and instrument
updates are plain attribute arithmetic — no locks, no allocation beyond
the instrument itself.  The registry is *process-local* by design: one
scheduling run, one registry (see ``docs/observability.md``).
"""

from __future__ import annotations

import math
from repro.core.errors import TelemetryUsageError
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, TypeVar

_InstrumentT = TypeVar("_InstrumentT", bound="Counter | Gauge | Histogram")

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "metric_key",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds: a 1-2.5-5 geometric ladder wide
#: enough for both sub-millisecond span durations (seconds) and large
#: integer quantities such as DP table cells.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    mantissa * 10.0**exponent for exponent in range(-6, 7) for mantissa in (1.0, 2.5, 5.0)
)


def metric_key(name: str, labels: Mapping[str, str] | None = None) -> str:
    """Canonical registry key ``name{k1=v1,k2=v2}`` with sorted labels.

    Without labels the key is the bare name, so unlabelled metrics keep
    their natural spelling in exports.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing total.

    Attributes:
        name: Canonical metric key (including labels).
        value: Current total; starts at zero.
    """

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise TelemetryUsageError(
                f"counter {self.name!r} cannot decrease (got {amount!r})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the instrument."""
        return {"kind": "counter", "name": self.name, "value": self.value}


@dataclass
class Gauge:
    """A last-written value (may move in either direction).

    Attributes:
        name: Canonical metric key (including labels).
        value: Most recently set value.
    """

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the instrument."""
        return {"kind": "gauge", "name": self.name, "value": self.value}


@dataclass
class Histogram:
    """A fixed-bucket distribution of observed values.

    Tracks count, sum, min, and max exactly, plus cumulative bucket
    counts (Prometheus-style ``le`` semantics: ``buckets[i]`` counts
    observations ``<= bounds[i]``; values above the last bound only land
    in the implicit ``+Inf`` bucket, i.e. in ``count``).

    Attributes:
        name: Canonical metric key (including labels).
        bounds: Ascending bucket upper bounds.
        counts: Per-bucket observation counts (non-cumulative storage).
        count: Total observations.
        total: Sum of observed values.
        minimum: Smallest observation (``inf`` before the first).
        maximum: Largest observation (``-inf`` before the first).
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise TelemetryUsageError(
                f"histogram bounds must be ascending, got {self.bounds!r}"
            )

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        # Linear scan is fine: bucket ladders are short and observations
        # cluster in the low buckets for every metric we record.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (``le`` semantics)."""
        running = 0
        cumulative = []
        for bucket in self.counts:
            running += bucket
            cumulative.append(running)
        return cumulative

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket counts.

        Returns the upper bound of the first bucket whose cumulative
        count reaches ``q · count`` (the maximum for values beyond the
        last bound); 0.0 when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryUsageError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        threshold = q * self.count
        for bound, cumulative in zip(self.bounds, self.cumulative_counts()):
            if cumulative >= threshold:
                return bound
        return self.maximum

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the instrument."""
        return {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": [
                [bound, cumulative]
                for bound, cumulative in zip(self.bounds, self.cumulative_counts())
                if cumulative
            ],
        }


class MetricRegistry:
    """Process-local home of every instrument, keyed by name + labels.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call for a key creates the instrument, later calls return the same
    object, so call sites never need registration boilerplate.  Asking
    for an existing key with a different instrument kind is a bug and
    raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        """Number of registered instruments."""
        return len(self._instruments)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        """Instruments in sorted key order (stable exports)."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def _get_or_create(
        self,
        kind: type[_InstrumentT],
        key: str,
        factory: Callable[[], _InstrumentT],
    ) -> _InstrumentT:
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {key!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` + ``labels`` (created on first use)."""
        key = metric_key(name, labels)
        return self._get_or_create(Counter, key, lambda: Counter(key))

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` + ``labels`` (created on first use)."""
        key = metric_key(name, labels)
        return self._get_or_create(Gauge, key, lambda: Gauge(key))

    def histogram(
        self, name: str, *, bounds: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        """The histogram for ``name`` + ``labels`` (created on first use).

        ``bounds`` only applies at creation; later calls return the
        existing instrument unchanged.
        """
        key = metric_key(name, labels)
        return self._get_or_create(
            Histogram,
            key,
            lambda: Histogram(key, bounds=bounds or DEFAULT_BUCKETS),
        )

    def get(self, name: str, **labels: str) -> Counter | Gauge | Histogram | None:
        """Look up an instrument without creating it (``None`` if absent)."""
        return self._instruments.get(metric_key(name, labels))

    def clear(self) -> None:
        """Drop every instrument (used between runs and by tests)."""
        self._instruments.clear()

    def snapshot(self) -> list[dict]:
        """JSON-serializable dump of all instruments, sorted by key."""
        return [instrument.to_dict() for instrument in self]
