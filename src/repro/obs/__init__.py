"""Observability for the two-phase scheduler: metrics, spans, events.

The pipeline (phase-1 ALP/AMP alternative search → phase-2 backward-run
DP → VO metascheduler) is instrumented with three primitives:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  histograms in a process-local registry, e.g.
  ``search.slots_scanned``, ``search.windows_found{algo=amp}``,
  ``dp.table_cells``, ``meta.postponements``;
* **spans** (:mod:`repro.obs.spans`) — nested wall-clock timings forming
  a trace tree per scheduling operation
  (``with span("phase1.find_alternatives", jobs=4): ...``);
* **events** (:mod:`repro.obs.events`) — a structured log with an
  in-memory ring buffer and an optional JSONL file sink.

Everything hangs off one switchable :class:`~repro.obs.telemetry.Telemetry`
context (:func:`configure` / :func:`disable` / :func:`get_telemetry`);
telemetry is **off by default** and the disabled paths are engineered to
cost nothing in the hot scan loops (see ``docs/observability.md`` for
the full metric catalog, trace schema, and overhead notes).  Exporters
(:mod:`repro.obs.export`) cover JSONL traces (replayed by
``repro.cli stats``), the Prometheus text format, and human-readable
summary tables.

Wall-clock timestamps flow through the injectable
:mod:`repro.obs.clock` — the single module the ``repro-lint`` RPR001
entropy rule allowlists — so tests can freeze time and every other
wall-clock read in the library is a lint error.

Import-order note: the submodules up to and including ``telemetry`` are
standard-library-only and are imported by the core algorithm modules;
``export`` (which touches :mod:`repro.core.errors`) must stay *last*
here so that partially initialized packages always resolve.
"""

from repro.obs.clock import freeze, now, reset_clock, set_clock
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    metric_key,
)
from repro.obs.events import JsonlSink, RingBuffer
from repro.obs.spans import NOOP_SPAN, NoopSpan, SpanHandle, SpanRecord
from repro.obs.context import TraceContext
from repro.obs.decisions import (
    NOOP_DECISIONS,
    DecisionLog,
    decision_sort_key,
    decisions_for_job,
    render_explain,
)
from repro.obs.telemetry import (
    Telemetry,
    configure,
    count,
    disable,
    event,
    get_telemetry,
    install,
    observe,
    set_gauge,
    span,
    telemetry_enabled,
    traced,
)
from repro.obs.export import (
    TRACE_FORMAT,
    TraceData,
    prometheus_from_trace,
    prometheus_text,
    read_trace,
    render_summary,
    render_trace_summary,
    trace_records,
    write_trace,
)
from repro.obs.merge import canonical_trace, merge_trace_files, merge_traces
from repro.obs.profile import PhaseCost, phase_costs, render_profile

__all__ = [
    # clock
    "now",
    "set_clock",
    "reset_clock",
    "freeze",
    # instruments
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "metric_key",
    "DEFAULT_BUCKETS",
    # spans
    "SpanRecord",
    "SpanHandle",
    "NoopSpan",
    "NOOP_SPAN",
    # events
    "RingBuffer",
    "JsonlSink",
    # decisions and trace context
    "DecisionLog",
    "NOOP_DECISIONS",
    "decision_sort_key",
    "decisions_for_job",
    "render_explain",
    "TraceContext",
    # façade
    "Telemetry",
    "get_telemetry",
    "configure",
    "install",
    "disable",
    "telemetry_enabled",
    "span",
    "count",
    "observe",
    "set_gauge",
    "event",
    "traced",
    # exporters
    "TRACE_FORMAT",
    "TraceData",
    "trace_records",
    "write_trace",
    "read_trace",
    "prometheus_text",
    "prometheus_from_trace",
    "render_summary",
    "render_trace_summary",
    # merge and profile
    "merge_traces",
    "merge_trace_files",
    "canonical_trace",
    "PhaseCost",
    "phase_costs",
    "render_profile",
]
