"""Timing spans: nested wall-clock measurements forming a trace tree.

A *span* measures one named stretch of work (``phase1.find_alternatives``,
``phase2.optimize``, ``meta.iteration`` …).  Spans opened while another
span is active become its children, so one scheduling iteration yields a
tree whose root is the outermost operation and whose leaves are the hot
inner calls — the "where does wall-clock time go" artefact the ROADMAP's
performance goal needs.

The module only defines the record type and the context-manager handle;
the active-span stack lives in :class:`repro.obs.telemetry.Telemetry`
(one stack per thread).  When telemetry is disabled, call sites receive
the shared :data:`NOOP_SPAN` singleton instead — entering and exiting it
allocates nothing and touches no state, which is what keeps the scan
loops free of overhead by default.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry

__all__ = ["SpanRecord", "SpanHandle", "NoopSpan", "NOOP_SPAN"]


@dataclass
class SpanRecord:
    """One completed (or still-open) node of the trace tree.

    Attributes:
        name: Operation name, dot-namespaced (``scheduler.schedule``).
        started_at: Wall-clock start (:func:`repro.obs.clock.now`), for
            log correlation.
        duration: Elapsed seconds (perf-counter based); 0.0 while open.
        attributes: Caller-supplied context (job name, batch size, …).
        children: Sub-spans, in start order.
        status: ``"ok"`` or ``"error"`` (an exception escaped the span).
    """

    name: str
    started_at: float
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    status: str = "ok"

    def total_by_name(self, accumulator: dict[str, tuple[int, float]] | None = None) -> dict[str, tuple[int, float]]:
        """Aggregate ``name -> (call count, total seconds)`` over the subtree."""
        if accumulator is None:
            accumulator = {}
        count, total = accumulator.get(self.name, (0, 0.0))
        accumulator[self.name] = (count + 1, total + self.duration)
        for child in self.children:
            child.total_by_name(accumulator)
        return accumulator

    def to_dict(self) -> dict:
        """JSON-serializable form (children nested recursively)."""
        record = {
            "kind": "span",
            "name": self.name,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        """Rebuild a record (and its subtree) from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            started_at=payload.get("started_at", 0.0),
            duration=payload.get("duration", 0.0),
            attributes=dict(payload.get("attributes", {})),
            children=[cls.from_dict(child) for child in payload.get("children", [])],
            status=payload.get("status", "ok"),
        )


class SpanHandle:
    """Context manager that times one span and links it into the tree.

    Created by ``Telemetry.span``; not instantiated directly.  On entry
    it pushes itself on the owning telemetry's span stack; on exit it
    records the elapsed time, marks the status, pops the stack, and —
    for root spans — hands the finished tree back to the telemetry.
    """

    __slots__ = ("_telemetry", "record", "_started")

    def __init__(self, telemetry: "Telemetry", record: SpanRecord) -> None:
        self._telemetry = telemetry
        self.record = record
        self._started = 0.0

    def annotate(self, **attributes: object) -> None:
        """Attach extra attributes to the span while it is open."""
        self.record.attributes.update(attributes)

    def __enter__(self) -> "SpanHandle":
        """Start timing and become the innermost active span."""
        self._telemetry._push_span(self.record)
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        """Stop timing, record status, and pop the span stack."""
        self.record.duration = time.perf_counter() - self._started
        if exc_type is not None:
            self.record.status = "error"
        self._telemetry._pop_span(self.record)
        return False


class NoopSpan:
    """Zero-cost stand-in used whenever telemetry is disabled.

    A single module-level instance (:data:`NOOP_SPAN`) is shared by every
    disabled call site: entering, annotating, and exiting are empty
    methods, so the disabled path performs no allocation and no work.
    """

    __slots__ = ()

    def annotate(self, **attributes: object) -> None:
        """Ignore attributes (telemetry is off)."""

    def __enter__(self) -> "NoopSpan":
        """Return self without touching any state."""
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        """Propagate exceptions unchanged."""
        return False


#: The shared disabled-mode span (see :class:`NoopSpan`).
NOOP_SPAN = NoopSpan()
