"""Exporters: JSONL traces, Prometheus text format, and summary tables.

Three audiences, three formats:

* **machines, offline** — :func:`write_trace` / :func:`read_trace` dump
  and replay the whole telemetry state as JSON Lines (one object per
  line: a ``meta`` header, then ``metric``, ``span``, and ``event``
  records).  ``repro.cli stats`` is a thin wrapper over this pair.
* **machines, scraping** — :func:`prometheus_text` renders the metric
  registry in the Prometheus exposition format, so a future HTTP
  endpoint (or a file-based node-exporter collector) needs no new code.
* **humans** — :func:`render_summary` / :func:`render_trace_summary`
  produce the fixed-width tables the CLI prints after ``--metrics``,
  reusing the same :func:`repro.sim.ascii_plot.table` renderer as the
  rest of the reporting stack (imported lazily to keep this package
  import-light on the hot path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.errors import TelemetryError
from repro.obs import clock
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import SpanRecord
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = [
    "TRACE_FORMAT",
    "TraceData",
    "trace_records",
    "write_trace",
    "read_trace",
    "prometheus_text",
    "prometheus_from_trace",
    "render_summary",
    "render_trace_summary",
]

#: Identifier stamped into every trace's ``meta`` line; bump on breaking
#: schema changes so ``stats`` can refuse traces it cannot interpret.
TRACE_FORMAT = "repro-telemetry-v1"


@dataclass
class TraceData:
    """Parsed contents of one telemetry trace (live or from a file).

    Attributes:
        meta: The header record (format id, creation time, context).
        metrics: Instrument snapshots (``to_dict`` form, sorted by key).
        spans: Root span trees.
        events: Structured events, oldest first.
        decisions: Decision records, in emission order.
    """

    meta: dict = field(default_factory=dict)
    metrics: list[dict] = field(default_factory=list)
    spans: list[SpanRecord] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    decisions: list[dict] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """Whether the trace holds no data at all (not even a header)."""
        return not (
            self.meta or self.metrics or self.spans or self.events or self.decisions
        )

    @property
    def has_data(self) -> bool:
        """Whether any record beyond the ``meta`` header was captured.

        A header-only trace means the run executed but telemetry stayed
        off (or nothing was instrumented) — the ``stats``/``explain``
        commands treat that the same as an empty file.
        """
        return bool(self.metrics or self.spans or self.events or self.decisions)

    def trace_context(self) -> TraceContext | None:
        """The context embedded in the ``meta`` header, if any."""
        context = self.meta.get("context")
        if not isinstance(context, dict) or "trace_id" not in context:
            return None
        return TraceContext.from_dict(context)

    def metric_value(self, name: str) -> float | None:
        """Value of a counter/gauge by exact key, ``None`` when absent."""
        for metric in self.metrics:
            if metric.get("name") == name and "value" in metric:
                return metric["value"]
        return None

    def span_aggregates(self) -> dict[str, tuple[int, float]]:
        """``name -> (calls, total seconds)`` over every recorded tree."""
        totals: dict[str, tuple[int, float]] = {}
        for root in self.spans:
            root.total_by_name(totals)
        return totals


def trace_records(telemetry: Telemetry | None = None) -> list[dict]:
    """The active telemetry state as a list of JSON-serializable records.

    The first record is always the ``meta`` header; metric, span, and
    event records follow in that order.
    """
    telemetry = telemetry or get_telemetry()
    meta: dict = {
        "kind": "meta",
        "format": TRACE_FORMAT,
        "created_at": clock.now(),
        "metrics": len(telemetry.registry),
        "spans": len(telemetry.traces),
        "events": len(telemetry.events),
        "decisions": len(telemetry.decisions),
    }
    if telemetry.context is not None:
        meta["context"] = telemetry.context.to_dict()
    records: list[dict] = [meta]
    records.extend(telemetry.registry.snapshot())
    records.extend(root.to_dict() for root in telemetry.traces)
    records.extend(telemetry.events)
    records.extend(telemetry.decisions.records)
    return records


def write_trace(path: str, telemetry: Telemetry | None = None) -> int:
    """Dump the telemetry state to ``path`` as JSONL; returns line count.

    Raises:
        TelemetryError: When ``path`` cannot be written.
    """
    records = trace_records(telemetry)
    try:
        with open(path, "w", encoding="utf-8") as stream:
            for record in records:
                stream.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
                stream.write("\n")
    except OSError as error:
        raise TelemetryError(f"cannot write trace {path!r}: {error}") from error
    return len(records)


def read_trace(path: str) -> TraceData:
    """Parse a JSONL telemetry trace back into a :class:`TraceData`.

    Tolerates missing ``meta`` (sink-streamed traces start with whatever
    was emitted first) but rejects unreadable files and malformed lines.
    Every failure mode maps to one diagnostic line naming the file and
    line number — a truncated trailing record (the writer was killed
    mid-append) is called out as such rather than as generic bad JSON,
    and no parse problem ever escapes as a raw traceback.

    Raises:
        TelemetryError: When the file is missing, malformed, truncated,
            or declares an unknown trace format.
    """
    data = TraceData()
    try:
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.readlines()
    except OSError as error:
        raise TelemetryError(f"cannot read trace {path!r}: {error}") from error
    last_content = 0
    for line_number, line in enumerate(lines, start=1):
        if line.strip():
            last_content = line_number
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if line_number == last_content:
                raise TelemetryError(
                    f"{path}:{line_number}: truncated trailing record — the "
                    "file ends mid-JSON, most likely the writing process was "
                    "killed during an append; re-run or trim the last line"
                ) from error
            raise TelemetryError(
                f"{path}:{line_number}: not valid JSON ({error.msg})"
            ) from error
        if not isinstance(record, dict):
            raise TelemetryError(
                f"{path}:{line_number}: expected a JSON object per line, "
                f"got {type(record).__name__}"
            )
        kind = record.get("kind")
        if kind == "meta":
            declared = record.get("format")
            if declared != TRACE_FORMAT:
                raise TelemetryError(
                    f"{path}: unsupported trace format {declared!r} "
                    f"(expected {TRACE_FORMAT!r})"
                )
            data.meta = record
        elif kind in ("counter", "gauge", "histogram"):
            data.metrics.append(record)
        elif kind == "span":
            try:
                data.spans.append(SpanRecord.from_dict(record))
            except (KeyError, TypeError, AttributeError) as error:
                raise TelemetryError(
                    f"{path}:{line_number}: malformed span record "
                    f"({error.__class__.__name__}: {error})"
                ) from error
        elif kind == "event":
            data.events.append(record)
        elif kind == "decision":
            data.decisions.append(record)
        else:
            raise TelemetryError(
                f"{path}:{line_number}: unknown record kind {kind!r}"
            )
    return data


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a canonical metric key into ``(name, labels)``."""
    if "{" not in key:
        return key, {}
    name, _, label_text = key.partition("{")
    labels = {}
    for pair in label_text.rstrip("}").split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


def _prometheus_name(name: str) -> str:
    """A metric name made safe for the Prometheus exposition format."""
    sanitized = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return f"repro_{sanitized}"


def _prometheus_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{{{inner}}}"


def _prometheus_lines(snapshots: list[dict]) -> str:
    """Shared renderer: instrument snapshots → Prometheus text format.

    ``snapshots`` must be in sorted key order (the registry iterates
    sorted; trace-backed callers sort before calling) so the output is
    byte-stable for identical inputs.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for snapshot in snapshots:
        name, labels = _split_key(snapshot["name"])
        prom = _prometheus_name(name)
        kind = snapshot["kind"]
        if prom not in typed:
            lines.append(f"# TYPE {prom} {kind}")
            typed.add(prom)
        if kind in ("counter", "gauge"):
            lines.append(f"{prom}{_prometheus_labels(labels)} {snapshot['value']:g}")
        else:
            for bound, cumulative in snapshot["buckets"]:
                bucket_labels = dict(labels, le=f"{bound:g}")
                lines.append(f"{prom}_bucket{_prometheus_labels(bucket_labels)} {cumulative}")
            inf_labels = dict(labels, le="+Inf")
            lines.append(f"{prom}_bucket{_prometheus_labels(inf_labels)} {snapshot['count']}")
            lines.append(f"{prom}_sum{_prometheus_labels(labels)} {snapshot['sum']:g}")
            lines.append(f"{prom}_count{_prometheus_labels(labels)} {snapshot['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text(registry: MetricRegistry | None = None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters/gauges become single samples; histograms expand into
    cumulative ``_bucket`` series (``le`` labels) plus ``_sum`` and
    ``_count``, exactly as a Prometheus client library would emit them.
    """
    registry = registry if registry is not None else get_telemetry().registry
    return _prometheus_lines([metric.to_dict() for metric in registry])


def prometheus_from_trace(data: TraceData) -> str:
    """Render a recorded (or merged) trace's metrics as Prometheus text.

    Same output contract as :func:`prometheus_text` — including the
    histogram ``_bucket``/``le`` expansion — so a file-based collector
    can scrape saved traces.  Snapshots are sorted by key first, making
    the text byte-stable regardless of merge order.
    """
    snapshots = sorted(data.metrics, key=lambda snapshot: str(snapshot.get("name", "")))
    return _prometheus_lines(snapshots)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_trace_summary(data: TraceData) -> str:
    """Human-readable summary of a parsed trace (metrics, spans, events)."""
    from repro.sim.ascii_plot import table

    sections: list[str] = []

    simple = [m for m in data.metrics if m["kind"] in ("counter", "gauge")]
    if simple:
        rows = [
            [metric["name"], metric["kind"], _format_value(metric["value"])]
            for metric in simple
        ]
        sections.append("counters and gauges:")
        sections.append(table(rows, header=["metric", "kind", "value"]))

    histograms = [m for m in data.metrics if m["kind"] == "histogram"]
    if histograms:
        rows = []
        for metric in histograms:
            count = metric["count"]
            mean = metric["sum"] / count if count else 0.0
            rows.append(
                [
                    metric["name"],
                    str(count),
                    _format_value(mean),
                    _format_value(metric["min"]) if metric["min"] is not None else "-",
                    _format_value(metric["max"]) if metric["max"] is not None else "-",
                ]
            )
        sections.append("")
        sections.append("histograms:")
        sections.append(table(rows, header=["metric", "count", "mean", "min", "max"]))

    aggregates = data.span_aggregates()
    if aggregates:
        ranked = sorted(aggregates.items(), key=lambda item: item[1][1], reverse=True)
        rows = [
            [name, str(calls), f"{total * 1e3:.2f}", f"{total / calls * 1e3:.3f}"]
            for name, (calls, total) in ranked
        ]
        sections.append("")
        sections.append("spans (by cumulative time):")
        sections.append(
            table(rows, header=["span", "calls", "total ms", "mean ms"])
        )

    if data.events:
        sections.append("")
        sections.append(f"events: {len(data.events)} recorded (newest last)")

    if data.decisions:
        sections.append("")
        jobs = sorted(
            {
                str(record["job"])
                for record in data.decisions
                if record.get("job") is not None
            }
        )
        note = f"decisions: {len(data.decisions)} recorded"
        if jobs:
            note += f" across {len(jobs)} job(s) — replay with: repro explain --job <id>"
        sections.append(note)

    if not sections:
        return "(telemetry recorded no data)"
    return "\n".join(sections)


def render_summary(telemetry: Telemetry | None = None) -> str:
    """Human-readable summary of the live telemetry state."""
    telemetry = telemetry or get_telemetry()
    data = TraceData(
        meta={"kind": "meta", "format": TRACE_FORMAT},
        metrics=telemetry.registry.snapshot(),
        spans=list(telemetry.traces),
        events=telemetry.events.to_list(),
        decisions=list(telemetry.decisions.records),
    )
    return render_trace_summary(data)
