"""The telemetry façade: one switchable object behind every instrument.

Design constraints (see ``docs/observability.md``):

* **Disabled by default, free when disabled.**  Every recording method
  starts with a single ``self.enabled`` check; ``span`` returns the
  shared :data:`~repro.obs.spans.NOOP_SPAN` singleton, so disabled call
  sites allocate nothing.  The truly hot per-slot loops in
  :mod:`repro.core.alp` / :mod:`repro.core.amp` go further and branch to
  an uninstrumented copy of the loop, so they pay exactly one boolean
  check per *search*, not per slot.
* **Stdlib only.**  This module is imported by the core algorithm
  modules, so it must never import back into :mod:`repro.core` or
  :mod:`repro.sim`.
* **Process-local, swappable.**  A module-level active instance serves
  the whole process; :func:`configure` installs a fresh one and
  :func:`disable` restores the inert default.  Hot paths fetch it via
  :func:`get_telemetry` at call time, so reconfiguration takes effect
  immediately.

Environment: setting ``REPRO_TELEMETRY=1`` enables telemetry at import
time — that is how the CI benchmark smoke run measures instrumented
overhead without code changes.
"""

from __future__ import annotations

import functools
import os
import threading
from typing import Any, Callable

from repro.obs import clock
from repro.obs.context import TraceContext
from repro.obs.decisions import NOOP_DECISIONS, DecisionLog
from repro.obs.events import JsonlSink, RingBuffer
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import NOOP_SPAN, NoopSpan, SpanHandle, SpanRecord

__all__ = [
    "Telemetry",
    "get_telemetry",
    "configure",
    "install",
    "disable",
    "telemetry_enabled",
    "span",
    "count",
    "observe",
    "set_gauge",
    "event",
    "traced",
]


class Telemetry:
    """Registry + span stack + event log behind one enable switch.

    Attributes:
        enabled: Master switch; when ``False`` every recording method is
            a near-free no-op (one attribute check).
        registry: The :class:`~repro.obs.metrics.MetricRegistry`.
        events: The bounded in-memory event buffer.
        traces: Completed *root* span trees, in completion order.
        sink: Optional streaming :class:`~repro.obs.events.JsonlSink`
            receiving events and completed root spans as they happen.
        decisions: The :class:`~repro.obs.decisions.DecisionLog`; the
            shared :data:`~repro.obs.decisions.NOOP_DECISIONS` instance
            when telemetry is disabled.
        context: Optional :class:`~repro.obs.context.TraceContext`
            identifying this participant's logical run (stamped into
            trace ``meta`` lines, threaded through workers/restores).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        ring_size: int = 2048,
        sink: JsonlSink | None = None,
        max_traces: int = 4096,
        decisions: DecisionLog | None = None,
        context: TraceContext | None = None,
    ) -> None:
        """Build a telemetry context.

        Args:
            enabled: Master switch.
            ring_size: Capacity of the in-memory event buffer.
            sink: Optional JSONL stream for events and root spans.
            max_traces: Cap on retained root span trees; beyond it the
                oldest trees are dropped (long VO runs stay bounded).
            decisions: Decision log to attach; defaults to a fresh
                enabled log when telemetry is enabled, the shared no-op
                otherwise.
            context: Trace context of this participant, if it belongs to
                a multi-process or resumable run.
        """
        self.enabled = enabled
        self.registry = MetricRegistry()
        self.events = RingBuffer(ring_size)
        self.traces: list[SpanRecord] = []
        self.sink = sink
        if decisions is None:
            decisions = DecisionLog() if enabled else NOOP_DECISIONS
        self.decisions = decisions
        self.context = context
        self._max_traces = max_traces
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Metric instruments                                                 #
    # ------------------------------------------------------------------ #

    def count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment counter ``name`` by ``amount`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.counter(name, **labels).increment(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set gauge ``name`` to ``value`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------ #
    # Spans                                                              #
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attributes: object) -> SpanHandle | NoopSpan:
        """A context manager timing ``name``; nests under the active span.

        Disabled telemetry returns the shared no-op singleton.  Each
        completed span also feeds the ``span.seconds{span=...}``
        histogram, so summaries can rank operations by time without
        walking the trees.
        """
        if not self.enabled:
            return NOOP_SPAN
        record = SpanRecord(name=name, started_at=clock.now(), attributes=attributes)
        return SpanHandle(self, record)

    def current_span(self) -> SpanRecord | None:
        """The innermost open span of this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push_span(self, record: SpanRecord) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            stack[-1].children.append(record)
        stack.append(record)

    def _pop_span(self, record: SpanRecord) -> None:
        stack = self._local.stack
        popped = stack.pop()
        if popped is not record:
            # Deferred import: this module must stay stdlib-only at import
            # time (core's hot loops import it), and this branch only runs
            # on a corrupted span stack.
            from repro.core.errors import TelemetryError

            raise TelemetryError(
                f"span stack corrupted: popped {popped.name!r}, "
                f"expected {record.name!r}"
            )
        self.observe("span.seconds", record.duration, span=record.name)
        if not stack:
            self.traces.append(record)
            if len(self.traces) > self._max_traces:
                del self.traces[: -self._max_traces]
            if self.sink is not None:
                self.sink.emit(record.to_dict())

    # ------------------------------------------------------------------ #
    # Events                                                             #
    # ------------------------------------------------------------------ #

    def event(self, name: str, **fields: object) -> None:
        """Log one structured event (no-op when disabled).

        ``fields`` must be JSON-serializable; the event is stamped with
        wall-clock time, buffered in the ring, and streamed to the sink
        when one is attached.
        """
        if not self.enabled:
            return
        payload = {"kind": "event", "name": name, "ts": clock.now(), **fields}
        self.events.append(payload)
        if self.sink is not None:
            self.sink.emit(payload)

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Clear metrics, events, traces, and decisions (sink stays attached)."""
        self.registry.clear()
        self.events.clear()
        self.traces.clear()
        if self.decisions is not NOOP_DECISIONS:
            self.decisions.clear()

    def close(self) -> None:
        """Close the attached sink, if any."""
        if self.sink is not None:
            self.sink.close()


def _from_environment() -> Telemetry:
    """The import-time default: enabled only when ``REPRO_TELEMETRY`` asks."""
    flag = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return Telemetry(enabled=flag not in ("", "0", "false", "no"))


_ACTIVE: Telemetry = _from_environment()


def get_telemetry() -> Telemetry:
    """The process-wide active telemetry context."""
    return _ACTIVE


def configure(
    *,
    enabled: bool = True,
    ring_size: int = 2048,
    sink: JsonlSink | None = None,
    trace_path: str | None = None,
    decisions: DecisionLog | None = None,
    context: TraceContext | None = None,
) -> Telemetry:
    """Install (and return) a fresh active telemetry context.

    Args:
        enabled: Master switch of the new context.
        ring_size: In-memory event buffer capacity.
        sink: Pre-built JSONL sink, if the caller manages the file.
        trace_path: Convenience: build a :class:`JsonlSink` at this path
            (ignored when ``sink`` is given).
        decisions: Decision log to attach (default: fresh when enabled).
        context: Trace context identifying this participant's run.
    """
    global _ACTIVE
    if sink is None and trace_path is not None:
        sink = JsonlSink(trace_path)
    _ACTIVE = Telemetry(
        enabled=enabled,
        ring_size=ring_size,
        sink=sink,
        decisions=decisions,
        context=context,
    )
    return _ACTIVE


def install(telemetry: Telemetry) -> Telemetry:
    """Install an *existing* context as the active one.

    The save/restore counterpart of :func:`configure`: a scope that must
    temporarily swap in its own context (a traced worker shard running
    in-process) captures :func:`get_telemetry` first and reinstalls it
    here when done.  The previous context is not closed.
    """
    global _ACTIVE
    _ACTIVE = telemetry
    return telemetry


def disable() -> None:
    """Restore the inert default context (previous data is discarded)."""
    global _ACTIVE
    _ACTIVE.close()
    _ACTIVE = Telemetry(enabled=False)


def telemetry_enabled() -> bool:
    """Whether the active context is recording."""
    return _ACTIVE.enabled


# ---------------------------------------------------------------------- #
# Module-level conveniences (delegate to the active context)             #
# ---------------------------------------------------------------------- #


def span(name: str, **attributes: object) -> SpanHandle | NoopSpan:
    """``with span("phase1.find_alternatives", job=...):`` on the active context."""
    return _ACTIVE.span(name, **attributes)


def count(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment a counter on the active context."""
    _ACTIVE.count(name, amount, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation on the active context."""
    _ACTIVE.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the active context."""
    _ACTIVE.set_gauge(name, value, **labels)


def event(name: str, **fields: object) -> None:
    """Log a structured event on the active context."""
    _ACTIVE.event(name, **fields)


def traced(name: str | None = None) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator wrapping a function in a span named after it.

    ``@traced()`` uses the function's qualified name; ``@traced("x")``
    overrides it.  The active context is consulted per call, so the
    decorated function stays no-op-cheap while telemetry is off.
    """

    def decorate(function: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            telemetry = _ACTIVE
            if not telemetry.enabled:
                return function(*args, **kwargs)
            with telemetry.span(span_name):
                return function(*args, **kwargs)

        return wrapper

    return decorate
