"""The telemetry façade: one switchable object behind every instrument.

Design constraints (see ``docs/observability.md``):

* **Disabled by default, free when disabled.**  Every recording method
  starts with a single ``self.enabled`` check; ``span`` returns the
  shared :data:`~repro.obs.spans.NOOP_SPAN` singleton, so disabled call
  sites allocate nothing.  The truly hot per-slot loops in
  :mod:`repro.core.alp` / :mod:`repro.core.amp` go further and branch to
  an uninstrumented copy of the loop, so they pay exactly one boolean
  check per *search*, not per slot.
* **Stdlib only.**  This module is imported by the core algorithm
  modules, so it must never import back into :mod:`repro.core` or
  :mod:`repro.sim`.
* **Process-local, swappable.**  A module-level active instance serves
  the whole process; :func:`configure` installs a fresh one and
  :func:`disable` restores the inert default.  Hot paths fetch it via
  :func:`get_telemetry` at call time, so reconfiguration takes effect
  immediately.

Environment: setting ``REPRO_TELEMETRY=1`` enables telemetry at import
time — that is how the CI benchmark smoke run measures instrumented
overhead without code changes.
"""

from __future__ import annotations

import functools
import os
import threading
from typing import Any, Callable

from repro.obs import clock
from repro.obs.events import JsonlSink, RingBuffer
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import NOOP_SPAN, NoopSpan, SpanHandle, SpanRecord

__all__ = [
    "Telemetry",
    "get_telemetry",
    "configure",
    "disable",
    "telemetry_enabled",
    "span",
    "count",
    "observe",
    "set_gauge",
    "event",
    "traced",
]


class Telemetry:
    """Registry + span stack + event log behind one enable switch.

    Attributes:
        enabled: Master switch; when ``False`` every recording method is
            a near-free no-op (one attribute check).
        registry: The :class:`~repro.obs.metrics.MetricRegistry`.
        events: The bounded in-memory event buffer.
        traces: Completed *root* span trees, in completion order.
        sink: Optional streaming :class:`~repro.obs.events.JsonlSink`
            receiving events and completed root spans as they happen.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        ring_size: int = 2048,
        sink: JsonlSink | None = None,
        max_traces: int = 4096,
    ) -> None:
        """Build a telemetry context.

        Args:
            enabled: Master switch.
            ring_size: Capacity of the in-memory event buffer.
            sink: Optional JSONL stream for events and root spans.
            max_traces: Cap on retained root span trees; beyond it the
                oldest trees are dropped (long VO runs stay bounded).
        """
        self.enabled = enabled
        self.registry = MetricRegistry()
        self.events = RingBuffer(ring_size)
        self.traces: list[SpanRecord] = []
        self.sink = sink
        self._max_traces = max_traces
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Metric instruments                                                 #
    # ------------------------------------------------------------------ #

    def count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment counter ``name`` by ``amount`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.counter(name, **labels).increment(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set gauge ``name`` to ``value`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------ #
    # Spans                                                              #
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attributes: object) -> SpanHandle | NoopSpan:
        """A context manager timing ``name``; nests under the active span.

        Disabled telemetry returns the shared no-op singleton.  Each
        completed span also feeds the ``span.seconds{span=...}``
        histogram, so summaries can rank operations by time without
        walking the trees.
        """
        if not self.enabled:
            return NOOP_SPAN
        record = SpanRecord(name=name, started_at=clock.now(), attributes=attributes)
        return SpanHandle(self, record)

    def current_span(self) -> SpanRecord | None:
        """The innermost open span of this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push_span(self, record: SpanRecord) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            stack[-1].children.append(record)
        stack.append(record)

    def _pop_span(self, record: SpanRecord) -> None:
        stack = self._local.stack
        popped = stack.pop()
        if popped is not record:
            # Deferred import: this module must stay stdlib-only at import
            # time (core's hot loops import it), and this branch only runs
            # on a corrupted span stack.
            from repro.core.errors import TelemetryError

            raise TelemetryError(
                f"span stack corrupted: popped {popped.name!r}, "
                f"expected {record.name!r}"
            )
        self.observe("span.seconds", record.duration, span=record.name)
        if not stack:
            self.traces.append(record)
            if len(self.traces) > self._max_traces:
                del self.traces[: -self._max_traces]
            if self.sink is not None:
                self.sink.emit(record.to_dict())

    # ------------------------------------------------------------------ #
    # Events                                                             #
    # ------------------------------------------------------------------ #

    def event(self, name: str, **fields: object) -> None:
        """Log one structured event (no-op when disabled).

        ``fields`` must be JSON-serializable; the event is stamped with
        wall-clock time, buffered in the ring, and streamed to the sink
        when one is attached.
        """
        if not self.enabled:
            return
        payload = {"kind": "event", "name": name, "ts": clock.now(), **fields}
        self.events.append(payload)
        if self.sink is not None:
            self.sink.emit(payload)

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Clear metrics, events, and traces (the sink is left attached)."""
        self.registry.clear()
        self.events.clear()
        self.traces.clear()

    def close(self) -> None:
        """Close the attached sink, if any."""
        if self.sink is not None:
            self.sink.close()


def _from_environment() -> Telemetry:
    """The import-time default: enabled only when ``REPRO_TELEMETRY`` asks."""
    flag = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return Telemetry(enabled=flag not in ("", "0", "false", "no"))


_ACTIVE: Telemetry = _from_environment()


def get_telemetry() -> Telemetry:
    """The process-wide active telemetry context."""
    return _ACTIVE


def configure(
    *,
    enabled: bool = True,
    ring_size: int = 2048,
    sink: JsonlSink | None = None,
    trace_path: str | None = None,
) -> Telemetry:
    """Install (and return) a fresh active telemetry context.

    Args:
        enabled: Master switch of the new context.
        ring_size: In-memory event buffer capacity.
        sink: Pre-built JSONL sink, if the caller manages the file.
        trace_path: Convenience: build a :class:`JsonlSink` at this path
            (ignored when ``sink`` is given).
    """
    global _ACTIVE
    if sink is None and trace_path is not None:
        sink = JsonlSink(trace_path)
    _ACTIVE = Telemetry(enabled=enabled, ring_size=ring_size, sink=sink)
    return _ACTIVE


def disable() -> None:
    """Restore the inert default context (previous data is discarded)."""
    global _ACTIVE
    _ACTIVE.close()
    _ACTIVE = Telemetry(enabled=False)


def telemetry_enabled() -> bool:
    """Whether the active context is recording."""
    return _ACTIVE.enabled


# ---------------------------------------------------------------------- #
# Module-level conveniences (delegate to the active context)             #
# ---------------------------------------------------------------------- #


def span(name: str, **attributes: object) -> SpanHandle | NoopSpan:
    """``with span("phase1.find_alternatives", job=...):`` on the active context."""
    return _ACTIVE.span(name, **attributes)


def count(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment a counter on the active context."""
    _ACTIVE.count(name, amount, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation on the active context."""
    _ACTIVE.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the active context."""
    _ACTIVE.set_gauge(name, value, **labels)


def event(name: str, **fields: object) -> None:
    """Log a structured event on the active context."""
    _ACTIVE.event(name, **fields)


def traced(name: str | None = None) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator wrapping a function in a span named after it.

    ``@traced()`` uses the function's qualified name; ``@traced("x")``
    overrides it.  The active context is consulted per call, so the
    decorated function stays no-op-cheap while telemetry is off.
    """

    def decorate(function: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            telemetry = _ACTIVE
            if not telemetry.enabled:
                return function(*args, **kwargs)
            with telemetry.span(span_name):
                return function(*args, **kwargs)

        return wrapper

    return decorate
