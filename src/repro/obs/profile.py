"""Cost attribution: where does one scheduling cycle's time go?

The instrumented hot paths accumulate per-phase wall time into the
``phase.seconds{phase=...}`` histogram family — index scans,
feasibility checks, cross-job slot subtraction, the phase-2 DP, journal
fsyncs, checkpoint snapshots (see ``docs/observability.md`` for the full
phase list).  This module aggregates a recorded (or merged) trace into
the ``repro profile`` report: per-phase call counts, cumulative time,
and the share of the total attributed time, plus the work counters
(DP cells touched, slots scanned, journal appends) that put the timings
in units of algorithmic work.

Falls back to span aggregates when a trace predates the phase timers,
so old traces still profile — just at span granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.export import TraceData

__all__ = ["PhaseCost", "phase_costs", "render_profile"]

#: Histogram family fed by the per-phase timers in the hot paths.
PHASE_METRIC = "phase.seconds"

#: Counter prefixes worth showing next to the timings: they measure the
#: *work* each phase performed, not just the time it took.
_WORK_COUNTER_PREFIXES = ("search.", "dp.", "journal.", "checkpoint.", "scheduler.")


@dataclass(frozen=True)
class PhaseCost:
    """Aggregated cost of one instrumented phase.

    Attributes:
        phase: Phase label (``phase1.index_scan``, ``journal.fsync`` …).
        calls: Number of timed stretches.
        total_seconds: Cumulative wall time across all calls.
        share: Fraction of the total attributed time (0.0–1.0).
    """

    phase: str
    calls: int
    total_seconds: float
    share: float

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per call (0.0 when there were no calls)."""
        return self.total_seconds / self.calls if self.calls else 0.0


def _phase_label(key: str) -> str | None:
    """Extract the ``phase`` label from a ``phase.seconds{phase=X}`` key."""
    name, _, label_text = key.partition("{")
    if name != PHASE_METRIC:
        return None
    for pair in label_text.rstrip("}").split(","):
        label, _, value = pair.partition("=")
        if label == "phase":
            return value
    return None


def phase_costs(data: TraceData) -> list[PhaseCost]:
    """Per-phase cost rows for a trace, largest share first.

    Prefers the explicit ``phase.seconds`` histograms; when a trace has
    none (recorded before the phase timers existed), falls back to the
    span aggregates so the report degrades instead of vanishing.
    """
    totals: dict[str, tuple[int, float]] = {}
    for snapshot in data.metrics:
        if snapshot.get("kind") != "histogram":
            continue
        phase = _phase_label(snapshot["name"])
        if phase is None:
            continue
        calls, total = totals.get(phase, (0, 0.0))
        totals[phase] = (calls + snapshot["count"], total + snapshot["sum"])
    if not totals:
        totals = dict(data.span_aggregates())
    grand_total = sum(total for _, total in totals.values())
    rows = [
        PhaseCost(
            phase=phase,
            calls=calls,
            total_seconds=total,
            share=(total / grand_total) if grand_total > 0 else 0.0,
        )
        for phase, (calls, total) in totals.items()
    ]
    rows.sort(key=lambda row: (-row.total_seconds, row.phase))
    return rows


def render_profile(data: TraceData) -> str:
    """The ``repro profile`` report for a recorded (or merged) trace."""
    from repro.sim.ascii_plot import table

    costs = phase_costs(data)
    if not costs:
        return "(trace contains no timing data to profile)"

    sections: list[str] = ["phase cost attribution:"]
    rows = [
        [
            cost.phase,
            str(cost.calls),
            f"{cost.total_seconds * 1e3:.2f}",
            f"{cost.mean_seconds * 1e3:.3f}",
            f"{cost.share * 100:.1f}%",
        ]
        for cost in costs
    ]
    sections.append(
        table(rows, header=["phase", "calls", "total ms", "mean ms", "share"])
    )

    counters = [
        metric
        for metric in data.metrics
        if metric.get("kind") == "counter"
        and metric["name"].startswith(_WORK_COUNTER_PREFIXES)
    ]
    if counters:
        sections.append("")
        sections.append("work counters:")
        counter_rows = [
            [metric["name"], f"{metric['value']:g}"] for metric in counters
        ]
        sections.append(table(counter_rows, header=["counter", "value"]))
    return "\n".join(sections)
