"""Decision records: why the scheduler accepted, pruned, or degraded.

The metric registry answers *how much* (slots scanned, windows found);
decision records answer *why*: which candidate windows a job's search
considered, why each was pruned (price cap, budget, occupancy,
start-hint skip), which alternative the phase-2 DP chose, and when the
optimizer stepped its resolution down or fell back to the greedy
selection.  ``repro explain --job J`` replays the decision path for one
job from a recorded trace.

Design rules, mirroring the rest of :mod:`repro.obs`:

* **Zero-cost when off.**  Call sites fetch the log once per operation
  (``decisions = telemetry.decisions``) and guard every emit with
  ``if decisions.enabled:`` — the ``repro-lint`` rule RPR006 enforces
  the guard inside ``core/`` and ``grid/``.  The shared
  :data:`NOOP_DECISIONS` instance backs every disabled context.
* **Deterministic.**  Records carry *no* wall-clock stamps — only
  logical fields (iteration, sequence number, operation, job, payload).
  The sequence counter resets at every iteration scope, so the records
  produced for iteration *i* are byte-identical regardless of which
  worker ran it; cross-worker merges sort by ``(iteration, seq)``.
* **Bounded.**  A ``max_records`` cap drops the newest records beyond
  the limit (counted in :attr:`DecisionLog.dropped`) so a pathological
  run cannot exhaust memory.

Stdlib-only on purpose: the core algorithm modules import this through
:mod:`repro.obs.telemetry`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.core.errors import TelemetryUsageError

__all__ = [
    "DecisionLog",
    "NOOP_DECISIONS",
    "decision_sort_key",
    "decisions_for_job",
    "render_explain",
]


class DecisionLog:
    """Append-only structured log of scheduling decisions.

    Attributes:
        enabled: Master switch; when ``False`` :meth:`emit` must not be
            called (call sites guard, RPR006 checks them).
        records: Emitted decision records, in emission order.
        max_records: Retention cap; emits beyond it are dropped.
        dropped: Number of records dropped by the cap.
    """

    __slots__ = ("enabled", "records", "max_records", "dropped", "_scope", "_seq")

    def __init__(self, *, enabled: bool = True, max_records: int = 200_000) -> None:
        """Create a log retaining at most ``max_records`` records."""
        if max_records < 1:
            raise TelemetryUsageError(
                f"max_records must be >= 1, got {max_records!r}"
            )
        self.enabled = enabled
        self.records: list[dict] = []
        self.max_records = max_records
        self.dropped = 0
        self._scope: dict = {}
        self._seq = 0

    @contextmanager
    def scope(self, **fields: object) -> Iterator[None]:
        """Stamp ``fields`` onto every record emitted inside the block.

        A scope that (re)binds ``iteration`` resets the sequence counter,
        which is what makes decision streams worker-count-invariant: the
        records of one iteration are numbered the same no matter which
        worker — or how many — produced them.
        """
        saved_scope = self._scope
        saved_seq = self._seq
        self._scope = {**saved_scope, **fields}
        if "iteration" in fields:
            self._seq = 0
        try:
            yield
        finally:
            self._scope = saved_scope
            self._seq = saved_seq

    def emit(self, op: str, **fields: object) -> None:
        """Record one decision (``op`` plus scope and caller fields).

        Callers must check :attr:`enabled` first; the emit itself does
        not re-check so the guard stays visible at the call site.
        """
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        record = {"kind": "decision", "op": op, "seq": self._seq}
        record.update(self._scope)
        record.update(fields)
        self._seq += 1
        self.records.append(record)

    def clear(self) -> None:
        """Drop all records and reset the counters."""
        self.records.clear()
        self.dropped = 0
        self._scope = {}
        self._seq = 0

    def __len__(self) -> int:
        """Number of retained records."""
        return len(self.records)


#: Shared disabled log backing every telemetry context that is off.
NOOP_DECISIONS = DecisionLog(enabled=False)


def decision_sort_key(record: dict) -> tuple[float, int]:
    """Canonical ordering key: ``(iteration, seq)``.

    Records without an iteration sort first (scope-less emits from
    one-shot pipelines), preserving their emission order via ``seq``.
    """
    iteration = record.get("iteration")
    if not isinstance(iteration, (int, float)):
        iteration = float("-inf")
    seq = record.get("seq")
    if not isinstance(seq, int):
        seq = 0
    return (float(iteration), seq)


def decisions_for_job(records: list[dict], job: str) -> list[dict]:
    """The decision path of ``job``: its records in canonical order."""
    matched = [record for record in records if record.get("job") == job]
    matched.sort(key=decision_sort_key)
    return matched


def _describe(record: dict) -> str:
    """One human line for a decision record's payload."""
    skip = {"kind", "op", "seq", "iteration", "job"}
    parts = []
    for key in sorted(record):
        if key in skip:
            continue
        value = record[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_explain(records: list[dict], job: str) -> str:
    """Render the decision path for ``job`` as a fixed-width table.

    Returns a one-line "(no decisions ...)" note when the trace holds no
    records for the job — the CLI treats that as a normal (exit 0) answer
    because an uninstrumented run legitimately records nothing.
    """
    from repro.sim.ascii_plot import table

    path = decisions_for_job(records, job)
    if not path:
        return f"(no decisions recorded for job {job!r})"
    rows = []
    for record in path:
        iteration = record.get("iteration")
        rows.append(
            [
                "-" if iteration is None else str(iteration),
                str(record.get("seq", "-")),
                str(record.get("op", "?")),
                _describe(record),
            ]
        )
    header = f"decision path for job {job!r} ({len(path)} records):"
    return header + "\n" + table(rows, header=["iter", "seq", "decision", "detail"])
