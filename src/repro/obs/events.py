"""Structured event log: an in-memory ring buffer plus a JSONL sink.

Telemetry *events* are discrete, timestamped facts ("iteration 3
scheduled 5 jobs", "DP infeasible, falling back") as opposed to the
aggregated instruments of :mod:`repro.obs.metrics`.  Two destinations:

* :class:`RingBuffer` — always on while telemetry is enabled; keeps the
  last ``capacity`` events in memory for post-mortem inspection without
  unbounded growth on long VO runs;
* :class:`JsonlSink` — optional streaming writer producing one JSON
  object per line, the same format ``repro.cli stats`` replays.

Both accept plain dict payloads that must be JSON-serializable; the
telemetry façade stamps them with wall-clock time before delivery.
"""

from __future__ import annotations

import json
from repro.core.errors import TelemetryUsageError
from collections import deque
from types import TracebackType
from typing import IO, Iterable, Iterator

__all__ = ["RingBuffer", "JsonlSink"]


class RingBuffer:
    """Bounded in-memory event store (oldest entries evicted first)."""

    def __init__(self, capacity: int = 2048) -> None:
        """Create a buffer holding at most ``capacity`` events."""
        if capacity < 1:
            raise TelemetryUsageError(
                f"ring buffer capacity must be >= 1, got {capacity!r}"
            )
        self._events: deque[dict] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._events.maxlen or 0

    def __len__(self) -> int:
        """Events currently retained."""
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        """Retained events, oldest first."""
        return iter(self._events)

    def append(self, event: dict) -> None:
        """Store one event, evicting the oldest when full."""
        self._events.append(event)

    def to_list(self) -> list[dict]:
        """Snapshot of retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all retained events."""
        self._events.clear()


class JsonlSink:
    """Streams events to a file as JSON Lines (one object per line).

    The file is opened lazily on the first emit, so configuring a sink
    costs nothing until telemetry actually produces data.  Use as a
    context manager or call :meth:`close` explicitly; emitting after
    close raises :class:`~repro.core.errors.TelemetryUsageError`.
    """

    def __init__(self, path: str) -> None:
        """Create a sink writing to ``path`` (truncates existing files)."""
        self.path = path
        self._stream: IO[str] | None = None
        self._closed = False

    def emit(self, event: dict) -> None:
        """Append one event as a JSON line (compact separators)."""
        if self._closed:
            raise TelemetryUsageError(f"sink for {self.path!r} is closed")
        if self._stream is None:
            self._stream = open(self.path, "w", encoding="utf-8")
        self._stream.write(json.dumps(event, separators=(",", ":"), sort_keys=True))
        self._stream.write("\n")

    def emit_many(self, events: Iterable[dict]) -> None:
        """Append several events in order."""
        for event in events:
            self.emit(event)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self._closed = True

    def __enter__(self) -> "JsonlSink":
        """Support ``with JsonlSink(path) as sink:`` usage."""
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        """Close the sink when the block exits."""
        self.close()
        return False
