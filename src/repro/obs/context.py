"""Trace contexts: deterministic ids that tie multi-process traces together.

One experiment run — serial or sharded across ``ParallelRunner``
workers, possibly interrupted and restored from a
``DurableMetascheduler`` checkpoint — should read as *one* trace.  A
:class:`TraceContext` carries the identifiers that make that possible:

* ``trace_id`` — one per logical run, shared by every participant;
* ``span_id`` — the emitting participant's own id (the parent span id
  for anything it spawns);
* ``worker`` — the shard index, ``0`` for serial / the parent process.

Both ids are **derived from the experiment seed** with BLAKE2b, exactly
like :func:`repro.sim.experiment.derive_iteration_seed` derives shard
seeds — never from ambient entropy (``uuid4`` would trip RPR001 and
break byte-identical reruns).  Re-running the same seed yields the same
trace ids, which is a feature: traces of reruns line up.

The context rides in every trace file's ``meta`` line;
``repro stats --merge`` refuses to merge shards whose ``trace_id``
differ, because they belong to different runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["TraceContext"]


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class TraceContext:
    """Identifiers linking one participant to its logical run.

    Attributes:
        trace_id: Run-wide id, shared by all workers and restores.
        span_id: This participant's id (parent id for its children).
        worker: Shard index (``0`` for serial or the parent process).
    """

    trace_id: str
    span_id: str
    worker: int = 0

    @classmethod
    def derive(cls, seed: int, *, worker: int = 0) -> "TraceContext":
        """The deterministic context for ``seed`` and shard ``worker``.

        ``trace_id`` depends only on the seed, so every worker of one
        run shares it; ``span_id`` additionally hashes the worker index.
        """
        trace_id = _digest(f"trace:{seed}")
        span_id = _digest(f"span:{trace_id}:{worker}")
        return cls(trace_id=trace_id, span_id=span_id, worker=worker)

    def child(self, name: str) -> "TraceContext":
        """A derived context for a sub-participant named ``name``.

        The child keeps the trace id (same run) and derives its span id
        from this context's — the Dapper-style parent/child chain.
        """
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_digest(f"span:{self.span_id}:{name}"),
            worker=self.worker,
        )

    def for_worker(self, worker: int) -> "TraceContext":
        """The sibling context of shard ``worker`` in the same run."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_digest(f"span:{self.trace_id}:{worker}"),
            worker=worker,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (embedded in trace ``meta`` lines)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload.get("span_id", "")),
            worker=int(payload.get("worker", 0)),
        )
