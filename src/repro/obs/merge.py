"""Merging per-worker trace shards into one coherent trace.

``ParallelRunner --workers N`` gives every worker process its own
telemetry context (the main process cannot observe a child's registry),
so an instrumented parallel run produces *N* JSONL shards plus the
parent's own trace.  This module folds them back into one
:class:`~repro.obs.export.TraceData`:

* **metrics** — counters sum, gauges keep the last shard's value,
  histograms merge exactly (counts, sums, min/max, and per-bound
  cumulative bucket counts all add);
* **spans** — each shard's root spans are grouped under a synthetic
  ``worker`` root carrying the shard's worker id, so the merged tree
  stays one tree per participant;
* **events** and **decisions** — concatenated; decisions re-sort by
  their canonical ``(iteration, seq)`` key, which is worker-count
  invariant by construction (see :mod:`repro.obs.decisions`).

Shards are only merged when their ``trace_id``s agree — mixing runs is
refused with a :class:`~repro.core.errors.TelemetryError`.

:func:`canonical_trace` renders the *deterministic* portion of a trace
(everything except wall-clock stamps, durations, and worker ids) as a
stable text, which is how the test suite pins "a merged 4-worker trace
equals the serial trace, modulo worker ids and timing".
"""

from __future__ import annotations

import json
import math

from repro.core.errors import TelemetryError
from repro.obs.decisions import decision_sort_key
from repro.obs.export import TRACE_FORMAT, TraceData, read_trace
from repro.obs.spans import SpanRecord

__all__ = ["merge_traces", "merge_trace_files", "canonical_trace"]

#: Histograms fed by wall-clock/perf-counter readings; excluded from the
#: canonical form because their values can never repeat across runs.
_TIMING_METRICS = ("span.seconds", "phase.seconds")

#: Cache-warmth counter pairs whose *split* depends on process topology
#: (a serial run reuses one DP memo across every iteration; each worker
#: process holds its own), while their *sum* — the number of lookups —
#: is a property of the schedule alone.  The canonical form folds each
#: pair into a single ``<prefix>.lookups`` counter so equivalent runs
#: still pin the invariant part.
_CACHE_SPLIT_METRICS = ("dp.memo.hits", "dp.memo.misses")


def _bare_name(key: str) -> str:
    return key.partition("{")[0]


def _fold_cache_splits(metrics: list[dict]) -> list[dict]:
    """Fold hit/miss counter pairs into topology-invariant lookup totals."""
    folded: list[dict] = []
    lookups: dict[str, float] = {}
    for snapshot in metrics:
        name = str(snapshot["name"])
        bare, brace, labels = name.partition("{")
        if bare in _CACHE_SPLIT_METRICS:
            prefix = bare.rsplit(".", 1)[0]
            key = f"{prefix}.lookups{brace}{labels}"
            lookups[key] = lookups.get(key, 0) + snapshot["value"]
        else:
            folded.append(snapshot)
    folded.extend(
        {"kind": "counter", "name": name, "value": value}
        for name, value in lookups.items()
    )
    return folded


def _merge_histograms(target: dict, extra: dict) -> None:
    """Fold histogram snapshot ``extra`` into ``target`` in place."""
    target["count"] += extra["count"]
    target["sum"] += extra["sum"]
    for side in ("min", "max"):
        ours, theirs = target.get(side), extra.get(side)
        if ours is None:
            target[side] = theirs
        elif theirs is not None:
            target[side] = min(ours, theirs) if side == "min" else max(ours, theirs)
    merged: dict[float, int] = {}
    for snapshot in (target, extra):
        for bound, cumulative in snapshot.get("buckets", []):
            merged[float(bound)] = merged.get(float(bound), 0) + int(cumulative)
    target["buckets"] = [[bound, merged[bound]] for bound in sorted(merged)]


def merge_traces(shards: list[TraceData]) -> TraceData:
    """Merge trace shards of one run into a single :class:`TraceData`.

    Raises:
        TelemetryError: On an empty shard list or when shards declare
            different ``trace_id``s (they belong to different runs).
    """
    if not shards:
        raise TelemetryError("cannot merge an empty list of trace shards")
    trace_ids = {
        context.trace_id
        for context in (shard.trace_context() for shard in shards)
        if context is not None
    }
    if len(trace_ids) > 1:
        raise TelemetryError(
            "refusing to merge shards from different runs: trace ids "
            + ", ".join(sorted(trace_ids))
        )

    metrics: dict[str, dict] = {}
    spans: list[SpanRecord] = []
    events: list[dict] = []
    decisions: list[dict] = []
    workers: list[int] = []

    for index, shard in enumerate(shards):
        context = shard.trace_context()
        worker = context.worker if context is not None else index
        workers.append(worker)
        for snapshot in shard.metrics:
            merged = metrics.get(snapshot["name"])
            if merged is None:
                metrics[snapshot["name"]] = dict(snapshot)
            elif snapshot["kind"] == "counter":
                merged["value"] += snapshot["value"]
            elif snapshot["kind"] == "gauge":
                merged["value"] = snapshot["value"]
            else:
                _merge_histograms(merged, snapshot)
        if shard.spans:
            if len(shards) == 1:
                spans.extend(shard.spans)
            else:
                spans.append(
                    SpanRecord(
                        name="worker",
                        started_at=min(root.started_at for root in shard.spans),
                        duration=math.fsum(root.duration for root in shard.spans),
                        attributes={"worker": worker},
                        children=list(shard.spans),
                    )
                )
        events.extend(shard.events)
        decisions.extend(shard.decisions)

    decisions.sort(key=decision_sort_key)
    meta: dict = {
        "kind": "meta",
        "format": TRACE_FORMAT,
        "merged_from": len(shards),
        "workers": sorted(workers),
    }
    if trace_ids:
        meta["trace_id"] = trace_ids.pop()
    return TraceData(
        meta=meta,
        metrics=[metrics[name] for name in sorted(metrics)],
        spans=spans,
        events=events,
        decisions=decisions,
    )


def merge_trace_files(paths: list[str]) -> TraceData:
    """Read and merge several trace shard files (see :func:`merge_traces`)."""
    return merge_traces([read_trace(path) for path in paths])


def _span_skeleton(record: SpanRecord) -> dict:
    """The timing-free shape of a span subtree (worker wrappers elided)."""
    attributes = {
        key: value for key, value in record.attributes.items() if key != "worker"
    }
    return {
        "name": record.name,
        "attributes": attributes,
        "status": record.status,
        "children": [_span_skeleton(child) for child in record.children],
    }


def canonical_trace(data: TraceData) -> str:
    """The deterministic portion of a trace as a stable JSON text.

    Strips everything allowed to differ between equivalent runs — the
    meta header, wall-clock stamps, perf-counter durations and the
    timing histograms they feed, worker ids, and synthetic ``worker``
    wrapper spans — folds cache hit/miss splits into their
    topology-invariant lookup totals (:data:`_CACHE_SPLIT_METRICS`), and
    sorts what remains, so two traces of the same logical run compare
    byte-for-byte equal no matter how many workers produced them.
    """
    metrics = _fold_cache_splits(
        [
            snapshot
            for snapshot in data.metrics
            if _bare_name(snapshot["name"]) not in _TIMING_METRICS
        ]
    )
    metrics.sort(key=lambda snapshot: str(snapshot["name"]))

    roots: list[SpanRecord] = []
    for root in data.spans:
        if root.name == "worker":
            roots.extend(root.children)
        else:
            roots.append(root)
    skeletons = sorted(
        (json.dumps(_span_skeleton(root), sort_keys=True) for root in roots),
    )

    events = sorted(
        json.dumps(
            {key: value for key, value in event.items() if key not in ("ts", "worker")},
            sort_keys=True,
        )
        for event in data.events
    )
    decisions = [
        json.dumps(record, sort_keys=True)
        for record in sorted(data.decisions, key=decision_sort_key)
    ]
    document = {
        "metrics": metrics,
        "spans": skeletons,
        "events": events,
        "decisions": decisions,
    }
    return json.dumps(document, sort_keys=True, indent=1)
