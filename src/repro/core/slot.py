"""Time slots and the ordered vacant-slot list.

A :class:`Slot` is the unit of the economic model: a span of time on one
resource that a local resource manager has published as available to the
metascheduler (Section 2 of the paper).  The metascheduler's view of the
whole environment at one scheduling iteration is a :class:`SlotList` — the
paper's "ordered list of available slots", kept sorted by non-decreasing
start time (Fig. 1 (a)).

The one non-trivial operation is *slot subtraction* (Fig. 1 (b)): when a
window is allocated for a job, the occupied span ``K'`` is cut out of the
containing vacant slot ``K``, which is replaced by up to two remainder
slots ``K1 = [K.start, K'.start)`` and ``K2 = [K'.end, K.end)``.
Zero-length remainders are dropped.  This guarantees that alternatives
found for different jobs never intersect in processor time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.errors import SlotListError
from repro.core.resource import Resource

__all__ = ["Slot", "SlotList"]


@dataclass(frozen=True, slots=True)
class Slot:
    """A vacant time span on one resource.

    Mirrors the paper's ``Slot`` class (Section 3): the resource on which
    the slot is allocated, a usage cost per time unit, and the start/end
    times.  ``price`` defaults to the resource's own price but may be
    overridden, e.g. for time-of-day pricing experiments.

    Attributes:
        resource: The node publishing this vacant span.
        start: Start time of the span (inclusive).
        end: End time of the span (exclusive).
        price: Usage cost per time unit for this particular span.
    """

    resource: Resource
    start: float
    end: float
    price: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SlotListError(
                f"slot on {self.resource.name!r}: end {self.end!r} precedes start {self.start!r}"
            )
        if self.price == -1.0:
            object.__setattr__(self, "price", self.resource.price)
        elif self.price < 0:
            raise SlotListError(f"slot price must be non-negative, got {self.price!r}")

    @property
    def length(self) -> float:
        """Time span of the slot (the paper's ``length`` field)."""
        return self.end - self.start

    @property
    def performance(self) -> float:
        """Performance rate ``P(s)`` of the underlying resource."""
        return self.resource.performance

    def runtime_of(self, volume: float) -> float:
        """Execution time on this slot's node of a task with etalon runtime ``volume``."""
        return volume / self.resource.performance

    def cost_of(self, volume: float) -> float:
        """Cost of running a task with etalon runtime ``volume`` in this slot."""
        return self.price * self.runtime_of(volume)

    def remaining_from(self, time: float) -> float:
        """Length of the slot still available at (and after) ``time``.

        Used by the expiry rule of ALP step 3°: once the tentative window
        start ``T_last`` advances past a slot, only ``end - T_last`` of it
        remains usable.
        """
        return self.end - max(self.start, time)

    def contains_span(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` lies entirely inside this slot."""
        return self.start <= start and end <= self.end

    def overlaps(self, other: "Slot") -> bool:
        """Whether this slot shares processor time with ``other``.

        Two slots overlap only if they live on the same resource and their
        half-open spans intersect with positive measure.
        """
        if self.resource != other.resource:
            return False
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Slot({self.resource.name}, [{self.start:g}, {self.end:g}), "
            f"price={self.price:g})"
        )


def _sort_key(slot: Slot) -> tuple[float, float, int]:
    """Total order used by :class:`SlotList`.

    Primary key is the start time (the paper's only requirement); end time
    and resource uid break ties deterministically so that runs are
    reproducible regardless of insertion history.
    """
    return (slot.start, slot.end, slot.resource.uid)


class SlotList:
    """The ordered list of available slots (paper Fig. 1 (a)).

    The list is kept sorted by non-decreasing start time at all times.  It
    supports the operations the scheduling scheme needs:

    * ordered iteration (the forward scan of ALP/AMP),
    * insertion keeping order (``O(log m)`` search + ``O(m)`` shift),
    * the paper's *slot subtraction* of an allocated window span,
    * cheap copying, so alternative searches for different algorithms can
      run on identical snapshots of the environment.

    The container is intentionally list-backed rather than tree-backed:
    the search algorithms are linear scans, and ``m`` is a few hundred in
    every experiment of the paper, so locality beats asymptotics.
    """

    __slots__ = ("_slots",)

    def __init__(self, slots: Iterable[Slot] = ()) -> None:
        self._slots: list[Slot] = sorted(slots, key=_sort_key)

    # ------------------------------------------------------------------ #
    # Container protocol                                                 #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self._slots)

    def __getitem__(self, index: int) -> Slot:
        return self._slots[index]

    def __contains__(self, slot: Slot) -> bool:
        index = bisect.bisect_left(self._slots, _sort_key(slot), key=_sort_key)
        while index < len(self._slots) and _sort_key(self._slots[index]) == _sort_key(slot):
            if self._slots[index] == slot:
                return True
            index += 1
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlotList):
            return NotImplemented
        return self._slots == other._slots

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlotList({len(self._slots)} slots)"

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def insert(self, slot: Slot) -> None:
        """Insert ``slot`` keeping the list ordered by start time.

        Zero-length slots are silently dropped, matching the paper's rule
        "if slots K1 and K2 have a zero time span, it is not necessary to
        add them to the list".
        """
        if slot.length <= 0:
            return
        bisect.insort(self._slots, slot, key=_sort_key)

    def extend(self, slots: Iterable[Slot]) -> None:
        """Insert every slot of ``slots`` (order preserved by sorting)."""
        for slot in slots:
            self.insert(slot)

    def remove(self, slot: Slot) -> None:
        """Remove one occurrence of ``slot``.

        Raises:
            SlotListError: If the slot is not present.
        """
        index = bisect.bisect_left(self._slots, _sort_key(slot), key=_sort_key)
        while index < len(self._slots) and self._slots[index].start == slot.start:
            if self._slots[index] == slot:
                del self._slots[index]
                return
            index += 1
        raise SlotListError(f"slot {slot!r} not present in list")

    def subtract(self, resource: Resource, start: float, end: float) -> Slot:
        """Cut the span ``[start, end)`` on ``resource`` out of the list.

        Implements the paper's slot subtraction (Fig. 1 (b)): find the
        vacant slot ``K`` that contains the allocated span ``K'``, remove
        it, and insert the non-empty remainders ``K1`` and ``K2``.

        Returns:
            The containing slot ``K`` that was removed.

        Raises:
            SlotListError: If the span is empty or negative
                (``end <= start``) — subtracting nothing must not carve
                a containing slot into fragments — or if no vacant slot
                on ``resource`` fully contains ``[start, end)``.
        """
        if end <= start:
            raise SlotListError(
                f"cannot subtract empty or negative span [{start!r}, {end!r})"
            )
        for index, candidate in enumerate(self._slots):
            if candidate.start > start:
                break
            if candidate.resource == resource and candidate.contains_span(start, end):
                del self._slots[index]
                self.insert(Slot(candidate.resource, candidate.start, start, candidate.price))
                self.insert(Slot(candidate.resource, end, candidate.end, candidate.price))
                return candidate
        raise SlotListError(
            f"no vacant slot on {resource.name!r} contains span [{start:g}, {end:g})"
        )

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def copy(self) -> "SlotList":
        """Return an independent copy (slots themselves are immutable)."""
        clone = SlotList.__new__(SlotList)
        clone._slots = list(self._slots)
        return clone

    def slots_on(self, resource: Resource) -> list[Slot]:
        """All vacant slots on ``resource``, in start order."""
        return [slot for slot in self._slots if slot.resource == resource]

    def resources(self) -> list[Resource]:
        """Distinct resources appearing in the list, in first-seen order."""
        seen: dict[int, Resource] = {}
        for slot in self._slots:
            seen.setdefault(slot.resource.uid, slot.resource)
        return list(seen.values())

    def total_vacant_time(self) -> float:
        """Sum of the lengths of all vacant slots."""
        return sum(slot.length for slot in self._slots)

    def horizon(self) -> tuple[float, float]:
        """``(earliest start, latest end)`` over all slots.

        Raises:
            SlotListError: If the list is empty.
        """
        if not self._slots:
            raise SlotListError("horizon of an empty slot list is undefined")
        return (self._slots[0].start, max(slot.end for slot in self._slots))

    def is_sorted(self) -> bool:
        """Invariant check: starts are non-decreasing (used by tests)."""
        starts = [slot.start for slot in self._slots]
        return all(a <= b for a, b in zip(starts, starts[1:]))

    def check_no_overlap(self) -> bool:
        """Invariant check: no two slots share processor time.

        Quadratic; intended for tests and debugging, not hot paths.
        """
        by_resource: dict[int, list[Slot]] = {}
        for slot in self._slots:
            by_resource.setdefault(slot.resource.uid, []).append(slot)
        for group in by_resource.values():
            group.sort(key=lambda s: s.start)
            for left, right in zip(group, group[1:]):
                if left.end > right.start:
                    return False
        return True
