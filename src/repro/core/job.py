"""Jobs, resource requests, and job batches.

A *job* is an independent parallel application submitted to the virtual
organization.  Its :class:`ResourceRequest` is the economic contract of
Section 3 of the paper: ``N`` concurrent slots, reserved for a runtime
``t`` (expressed at etalon performance ``P = 1``), on nodes with
performance rate at least ``P``, at a price per time unit of at most
``C``.  AMP reinterprets the price requirement as the *job budget*
``S = C · t · N``.

A :class:`Batch` is the unit of one scheduling iteration
(``J = {j_1, ..., j_n}`` in Section 2), ordered by priority.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.errors import InvalidRequestError
from repro.core.resource import Resource
from repro.core.slot import Slot

__all__ = ["ResourceRequest", "Job", "Batch"]

_job_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ResourceRequest:
    """User requirements for one parallel job (paper Section 3).

    Attributes:
        node_count: ``N`` — number of concurrent slots (tasks) to
            co-allocate.  All tasks must start synchronously.
        volume: ``t`` — wall-clock runtime of each task on the *etalon*
            node (``P = 1``).  On a node with performance ``P(s)`` the
            task runs for ``volume / P(s)`` time units (Section 6).
        min_performance: ``P`` — minimum acceptable node performance
            rate (ALP/AMP condition 2°a).
        max_price: ``C`` — maximum acceptable price per time unit.  ALP
            applies it to every individual slot (condition 2°c); AMP
            applies it only through the aggregate budget.
    """

    node_count: int
    volume: float
    min_performance: float = 1.0
    max_price: float = math.inf

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise InvalidRequestError(f"node_count must be >= 1, got {self.node_count!r}")
        if self.volume <= 0:
            raise InvalidRequestError(f"volume must be positive, got {self.volume!r}")
        if self.min_performance <= 0:
            raise InvalidRequestError(
                f"min_performance must be positive, got {self.min_performance!r}"
            )
        if self.max_price <= 0:
            raise InvalidRequestError(f"max_price must be positive, got {self.max_price!r}")

    @property
    def budget(self) -> float:
        """The AMP job budget ``S = C · t · N`` (Section 3).

        ``inf`` when the request has no price requirement.
        """
        return self.max_price * self.volume * self.node_count

    def scaled_budget(self, rho: float) -> float:
        """The Section 6 extension ``S = ρ · C · t · N`` with ``0 < ρ <= 1``.

        Shrinking the budget trades schedule earliness for execution cost;
        ``rho = 1`` recovers the plain AMP budget.
        """
        if not 0 < rho <= 1:
            raise InvalidRequestError(f"rho must be in (0, 1], got {rho!r}")
        return rho * self.budget

    def runtime_on(self, resource: Resource) -> float:
        """Task execution time on ``resource`` (``t / P(s)``)."""
        return resource.runtime_of(self.volume)

    def admits_performance(self, resource: Resource) -> bool:
        """ALP/AMP condition 2°a: ``P(s_k) >= P``."""
        return resource.performance >= self.min_performance

    def admits_price(self, slot: Slot) -> bool:
        """ALP condition 2°c: ``C(s_k) <= C`` for an individual slot."""
        return slot.price <= self.max_price

    def fits_length(self, slot: Slot, window_start: float) -> bool:
        """ALP conditions 2°b / 3°: the slot still covers the task runtime.

        A slot fits at a tentative window start ``window_start`` when the
        span remaining from ``max(slot.start, window_start)`` to
        ``slot.end`` is at least the task's runtime on that node.  This is
        the consistent reading of the paper's conditions 2°b and 3° under
        the etalon-runtime convention (see DESIGN.md, Section 2).
        """
        if slot.start > window_start:
            return False
        return slot.remaining_from(window_start) >= self.runtime_on(slot.resource)


@dataclass(frozen=True, slots=True)
class Job:
    """An independent parallel job of the batch.

    Attributes:
        request: The job's resource request.
        name: Human-readable identifier, auto-generated when omitted.
        priority: Position weight inside the batch; *lower values are
            scheduled first* (the worked example's "Job 1 has the highest
            priority").  Ties preserve submission order.
        uid: Unique integer id, auto-assigned.
    """

    request: ResourceRequest
    name: str = ""
    priority: int = 0
    uid: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.uid == -1:
            object.__setattr__(self, "uid", next(_job_counter))
        if not self.name:
            object.__setattr__(self, "name", f"job{self.uid}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Job):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r = self.request
        return (
            f"Job({self.name!r}, N={r.node_count}, t={r.volume:g}, "
            f"P>={r.min_performance:g}, C<={r.max_price:g})"
        )


class Batch:
    """An ordered batch of jobs ``J = {j_1, ..., j_n}`` (Section 2).

    Iteration yields jobs in scheduling order: ascending ``priority``,
    submission order within equal priorities.  The batch is immutable from
    the scheduler's point of view; postponed jobs are carried into a *new*
    batch for the next iteration (see :mod:`repro.grid.metascheduler`).
    """

    __slots__ = ("_jobs",)

    def __init__(self, jobs: Iterable[Job] = ()) -> None:
        ordered = list(jobs)
        seen: set[int] = set()
        for job in ordered:
            if job.uid in seen:
                raise InvalidRequestError(f"duplicate job {job.name!r} in batch")
            seen.add(job.uid)
        ordered.sort(key=lambda job: job.priority)
        self._jobs: tuple[Job, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def __contains__(self, job: Job) -> bool:
        return job in self._jobs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch({[job.name for job in self._jobs]})"

    @property
    def jobs(self) -> tuple[Job, ...]:
        """The jobs in scheduling order."""
        return self._jobs

    def without(self, jobs_to_drop: Iterable[Job]) -> "Batch":
        """A new batch with ``jobs_to_drop`` removed (used for postponement)."""
        dropped = {job.uid for job in jobs_to_drop}
        return Batch(job for job in self._jobs if job.uid not in dropped)

    def total_volume(self) -> float:
        """Aggregate etalon compute volume ``sum(N_i * t_i)`` of the batch."""
        return sum(job.request.node_count * job.request.volume for job in self._jobs)
