"""Pricing mechanisms for resources and job budgets.

Section 5 of the paper prices nodes by the exponential law
``p = 1.7^performance`` with a ±25 % uniform perturbation; Section 6
proposes shrinking AMP budgets by a factor ``ρ`` to trade earliness for
cost; and Section 7 names supply-and-demand-aware pricing as future
work.  This module implements all three so the benchmarks can sweep
them:

* :class:`ExponentialPricing` — the published price law;
* :class:`BudgetPolicy` — the ``S = ρ·C·t·N`` budget family;
* :class:`DemandAdjustedPricing` — a simple load-multiplier pricing
  model for the future-work experiments (documented extension, not a
  paper result).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import InvalidRequestError
from repro.core.job import ResourceRequest
from repro.core.resource import DEFAULT_PRICE_BASE, Resource

__all__ = ["ExponentialPricing", "BudgetPolicy", "DemandAdjustedPricing"]


@dataclass(frozen=True)
class ExponentialPricing:
    """The paper's SlotGenerator price law (Section 5).

    The price of a slot on a node with performance ``P`` is drawn
    uniformly from ``[low_factor · p, high_factor · p]`` with
    ``p = base^P`` — "the price is a function of performance with some
    element of randomness".

    Attributes:
        base: Base of the exponential law (paper: 1.7).
        low_factor: Lower perturbation bound (paper: 0.75).
        high_factor: Upper perturbation bound (paper: 1.25).
    """

    base: float = DEFAULT_PRICE_BASE
    low_factor: float = 0.75
    high_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise InvalidRequestError(f"price base must be positive, got {self.base!r}")
        if not 0 < self.low_factor <= self.high_factor:
            raise InvalidRequestError(
                f"need 0 < low_factor <= high_factor, got "
                f"{self.low_factor!r}, {self.high_factor!r}"
            )

    def nominal(self, performance: float) -> float:
        """Deterministic price ``base^performance`` (no perturbation)."""
        if performance <= 0:
            raise InvalidRequestError(f"performance must be positive, got {performance!r}")
        return self.base**performance

    def mean(self, performance: float) -> float:
        """Expected perturbed price for a given performance."""
        return self.nominal(performance) * (self.low_factor + self.high_factor) / 2

    def sample(self, performance: float, rng: random.Random) -> float:
        """Draw one perturbed price using the supplied RNG."""
        return self.nominal(performance) * rng.uniform(self.low_factor, self.high_factor)

    def bounds(self, performance: float) -> tuple[float, float]:
        """The exact support of the sampled price (used by tests)."""
        nominal = self.nominal(performance)
        return (nominal * self.low_factor, nominal * self.high_factor)


@dataclass(frozen=True)
class BudgetPolicy:
    """The job-budget family ``S = ρ · C · t · N`` (Sections 3 and 6).

    ``ρ = 1`` is plain AMP; smaller values force AMP toward cheaper
    windows at the expense of later start times — the lever Section 6
    proposes for adapting schedules to time of day or load level.
    """

    rho: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.rho <= 1:
            raise InvalidRequestError(f"rho must be in (0, 1], got {self.rho!r}")

    def budget_for(self, request: ResourceRequest) -> float:
        """The AMP budget for one request under this policy."""
        return request.scaled_budget(self.rho)


@dataclass(frozen=True)
class DemandAdjustedPricing:
    """Supply-and-demand pricing extension (paper Section 7, future work).

    Scales a base pricing law by a multiplier that grows linearly with
    the observed utilization of the environment:

        ``price = base_price · (1 + sensitivity · utilization)``

    with ``utilization`` in ``[0, 1]`` (busy time / total time over the
    scheduling horizon).  This is *our* minimal instantiation of the
    paper's future-work idea; it exists so the ablation benchmark can
    show how demand-driven prices shift the ALP/AMP trade-off.
    """

    base: ExponentialPricing = ExponentialPricing()
    sensitivity: float = 0.5

    def __post_init__(self) -> None:
        if self.sensitivity < 0:
            raise InvalidRequestError(
                f"sensitivity must be non-negative, got {self.sensitivity!r}"
            )

    def multiplier(self, utilization: float) -> float:
        """Demand multiplier for a given utilization in ``[0, 1]``."""
        if not 0 <= utilization <= 1:
            raise InvalidRequestError(
                f"utilization must be within [0, 1], got {utilization!r}"
            )
        return 1.0 + self.sensitivity * utilization

    def sample(self, performance: float, utilization: float, rng: random.Random) -> float:
        """Draw a demand-adjusted price for a node of given performance."""
        return self.base.sample(performance, rng) * self.multiplier(utilization)

    def price_resource(self, resource: Resource, utilization: float, rng: random.Random) -> Resource:
        """A copy of ``resource`` repriced under current demand."""
        return Resource(
            name=resource.name,
            performance=resource.performance,
            price=self.sample(resource.performance, utilization, rng),
        )
