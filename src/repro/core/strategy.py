"""Scheduling strategies — sets of schedule *versions* (paper Section 7).

The paper's closing argument (refs [13, 14]): under environment dynamics
"a set of versions of scheduling, or a strategy, is required instead of
a single version".  This module implements that idea on top of the
two-phase scheduler: a :class:`ScheduleStrategy` holds several complete,
individually valid schedule versions for the same batch — produced under
different configurations (ALP vs AMP, time vs cost, shrunk budgets) —
and can answer, *without rescheduling*:

* which version is best under a criterion right now, and
* which versions **survive** a set of node failures (no task of any
  scheduled job touches a failed node), and which survivor is best.

Versions are built against the same initial slot list, so exactly one of
them is committed; the others are contingency plans.  Switching after a
failure is O(versions × windows) — the "scalable co-scheduling" property
the paper is after, versus a full rescheduling pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.criteria import Criterion
from repro.core.errors import InvalidRequestError
from repro.core.job import Batch
from repro.core.resource import Resource
from repro.core.scheduler import BatchScheduler, ScheduleOutcome, SchedulerConfig
from repro.core.slot import SlotList

__all__ = ["ScheduleVersion", "ScheduleStrategy", "build_strategy"]


@dataclass(frozen=True)
class ScheduleVersion:
    """One complete scheduling version of the batch.

    Attributes:
        name: Label identifying the configuration that produced it.
        config: The scheduler configuration used.
        outcome: The full two-phase outcome (combination, postponed...).
    """

    name: str
    config: SchedulerConfig
    outcome: ScheduleOutcome

    @property
    def total_time(self) -> float:
        """Batch time criterion ``T(s̄)`` of this version."""
        return self.outcome.combination.total_time

    @property
    def total_cost(self) -> float:
        """Batch cost criterion ``C(s̄)`` of this version."""
        return self.outcome.combination.total_cost

    @property
    def scheduled_count(self) -> int:
        """Jobs this version actually places."""
        return len(self.outcome.scheduled_jobs)

    def uses_resource(self, resource_uid: int) -> bool:
        """Whether any scheduled window runs a task on ``resource_uid``."""
        return any(
            allocation.resource.uid == resource_uid
            for window in self.outcome.scheduled_jobs.values()
            for allocation in window.allocations
        )

    def survives(self, failed: Iterable[Resource | int]) -> bool:
        """Whether the version avoids every failed resource entirely."""
        failed_uids = {
            item.uid if isinstance(item, Resource) else int(item) for item in failed
        }
        return not any(self.uses_resource(uid) for uid in failed_uids)


class ScheduleStrategy:
    """An ordered set of schedule versions for one batch."""

    def __init__(self, versions: Sequence[ScheduleVersion]) -> None:
        if not versions:
            raise InvalidRequestError("a strategy needs at least one version")
        names = [version.name for version in versions]
        if len(set(names)) != len(names):
            raise InvalidRequestError(f"version names must be unique, got {names}")
        self._versions = tuple(versions)

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[ScheduleVersion]:
        return iter(self._versions)

    @property
    def versions(self) -> tuple[ScheduleVersion, ...]:
        """All versions, in construction order."""
        return self._versions

    def version(self, name: str) -> ScheduleVersion:
        """Look a version up by name (KeyError when absent)."""
        for candidate in self._versions:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def best(
        self, criterion: Criterion = Criterion.TIME, *, require_full_coverage: bool = False
    ) -> ScheduleVersion:
        """The best version under ``criterion``.

        Versions placing more jobs always rank above versions placing
        fewer (a cheap schedule that drops half the batch is not
        "better"); the criterion breaks ties within equal coverage.

        Raises:
            InvalidRequestError: When ``require_full_coverage`` is set
                and no version schedules every job.
        """
        candidates = list(self._versions)
        if require_full_coverage:
            full = [v for v in candidates if not v.outcome.postponed]
            if not full:
                raise InvalidRequestError("no version schedules the whole batch")
            candidates = full
        return min(
            candidates,
            key=lambda v: (
                -v.scheduled_count,
                v.total_time if criterion is Criterion.TIME else v.total_cost,
            ),
        )

    def surviving(self, failed: Iterable[Resource | int]) -> list[ScheduleVersion]:
        """Versions untouched by the failed resources, in order."""
        failed_list = list(failed)
        return [version for version in self._versions if version.survives(failed_list)]

    def best_surviving(
        self, failed: Iterable[Resource | int], criterion: Criterion = Criterion.TIME
    ) -> ScheduleVersion | None:
        """The best version that survives the failures, or ``None``.

        ``None`` means every contingency plan is hit and a genuine
        rescheduling pass is unavoidable.
        """
        survivors = self.surviving(failed)
        if not survivors:
            return None
        return min(
            survivors,
            key=lambda v: (
                -v.scheduled_count,
                v.total_time if criterion is Criterion.TIME else v.total_cost,
            ),
        )


def build_strategy(
    slot_list: SlotList,
    batch: Batch,
    configs: dict[str, SchedulerConfig],
) -> ScheduleStrategy:
    """Build a strategy by scheduling the batch under each configuration.

    Every version is computed against the *same* snapshot of the slot
    list, so all versions are individually commitable and mutually
    exclusive contingency plans.

    Raises:
        InvalidRequestError: For an empty configuration set.
        InfeasibleConstraintError: Propagated from configurations using
            :attr:`InfeasiblePolicy.RAISE` on infeasible iterations —
            use the EARLIEST fallback for robust strategies.
    """
    if not configs:
        raise InvalidRequestError("need at least one configuration")
    versions = []
    for name, config in configs.items():
        outcome = BatchScheduler(config).schedule(slot_list, batch)
        versions.append(ScheduleVersion(name=name, config=config, outcome=outcome))
    return ScheduleStrategy(versions)
