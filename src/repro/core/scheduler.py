"""Two-phase batch scheduler façade.

:class:`BatchScheduler` wires the paper's full scheduling scheme together
for one iteration:

1. **Alternative search** (:mod:`repro.core.search`) with ALP or AMP,
   collecting disjoint alternative windows per job; jobs with no
   alternative are *postponed* to the next iteration.
2. **Constraint derivation**: the occupancy quota ``T*`` (eq. 2) and,
   for time minimization, the VO budget ``B*`` (eq. 3).
3. **Combination optimization** (:mod:`repro.core.optimize`): the
   backward-run DP picks one window per covered job.

The façade exists so that examples, the grid metascheduler, and the
experiment harness all run exactly the same pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.criteria import Criterion
from repro.core.errors import InfeasibleConstraintError, InvalidRequestError
from repro.core.job import Batch, Job
from repro.core.optimize import (
    DEFAULT_RESOLUTION,
    Combination,
    DPMemo,
    OptimizationBudget,
    minimize_cost,
    minimize_time,
    time_quota,
    vo_budget,
)
from repro.core.search import SearchResult, SlotSearchAlgorithm, find_alternatives
from repro.core.slot import SlotList
from repro.core.window import Window
from repro.obs.spans import NOOP_SPAN
from repro.obs.telemetry import get_telemetry

__all__ = ["InfeasiblePolicy", "SchedulerConfig", "ScheduleOutcome", "BatchScheduler"]


class InfeasiblePolicy(enum.Enum):
    """What to do when the phase-2 DP has no feasible combination."""

    #: Propagate :class:`InfeasibleConstraintError` to the caller (the
    #: experiment harness drops such iterations, as the paper does).
    RAISE = "raise"
    #: Fall back to each job's earliest-found alternative.  Keeps a VO
    #: running when the eq. (2) quota is too tight for the current batch.
    EARLIEST = "earliest"


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of one scheduling pipeline.

    Attributes:
        algorithm: Phase-1 slot search algorithm (ALP or AMP).
        objective: Phase-2 criterion to minimize; the dual criterion is
            constrained (time → budget ``B*``, cost → quota ``T*``).
        rho: AMP budget-shrink factor ``S = ρ·C·t·N`` (Section 6).
        resolution: DP discretization bins.
        max_alternatives_per_job: Optional cap on phase-1 alternatives.
        infeasible_policy: Behaviour when the DP constraint cannot be met.
        budget: Optional deadline/operation budget for phase 2; under
            overload the DP degrades (stepped-down resolution, then a
            greedy per-job selection) instead of stalling the iteration.
        search_shards: Partition-parallel phase-1 search over this many
            node shards (1 = serial).  Byte-identical to the serial path
            for every count (``tests/test_reference_oracles.py``); pays
            off only on fleet-scale slot lists (see docs/benchmarks.md).
        dp_memo: Cross-cycle DP memo for the phase-2 backward runs;
            ``None`` (the default) gives every :class:`BatchScheduler`
            built from this config its **own private** memo — schedulers
            never share cache state implicitly.  Memo hits reproduce the
            memo-off result exactly (value-keyed tables; see
            :class:`~repro.core.optimize.DPMemo`), so this knob only
            controls *where* the cache lives: pass one ``DPMemo``
            instance to several configs to opt into explicit sharing, or
            ``DPMemo(enabled=False)`` to recompute every run.
    """

    algorithm: SlotSearchAlgorithm = SlotSearchAlgorithm.AMP
    objective: Criterion = Criterion.TIME
    rho: float = 1.0
    resolution: int = DEFAULT_RESOLUTION
    max_alternatives_per_job: int | None = None
    infeasible_policy: InfeasiblePolicy = InfeasiblePolicy.RAISE
    budget: OptimizationBudget | None = None
    search_shards: int = 1
    dp_memo: DPMemo | None = None

    def __post_init__(self) -> None:
        if self.search_shards < 1:
            raise InvalidRequestError(
                f"search_shards must be >= 1, got {self.search_shards!r}"
            )


@dataclass
class ScheduleOutcome:
    """Everything one scheduling iteration produced.

    Attributes:
        combination: The chosen window per covered job (empty when no job
            had alternatives).
        search: The raw phase-1 result (all alternatives, modified list).
        postponed: Jobs without any alternative — to be re-batched next
            iteration (Section 2).
        quota: The eq. (2) occupancy quota ``T*`` over covered jobs.
        budget: The eq. (3) VO budget ``B*`` (``None`` for cost
            minimization, where the quota itself is the constraint).
        used_fallback: ``True`` when the earliest-alternative fallback
            replaced an infeasible DP (see :class:`InfeasiblePolicy`).
        degraded: ``True`` when the phase-2 optimization ran degraded
            (stepped-down resolution or greedy fallback) because of an
            :class:`~repro.core.optimize.OptimizationBudget`.
    """

    combination: Combination
    search: SearchResult
    postponed: list[Job]
    quota: float
    budget: float | None
    used_fallback: bool = False
    degraded: bool = False

    @property
    def scheduled_jobs(self) -> dict[Job, Window]:
        """The committed job → window assignment."""
        return self.combination.selection


def _earliest_combination(
    alternatives: dict[Job, list[Window]], objective: Criterion, limit: float
) -> Combination:
    """Fallback selection: each job takes its first-found (earliest) window."""
    selection = {job: windows[0] for job, windows in alternatives.items()}
    return Combination(
        selection=selection,
        total_cost=sum(window.cost for window in selection.values()),
        total_time=sum(window.length for window in selection.values()),
        objective=objective,
        limit=limit,
    )


class BatchScheduler:
    """Runs the full two-phase economic scheduling scheme for one batch."""

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()
        # Scheduler-local unless the config opts into explicit sharing:
        # DP cache traffic must never cross scheduler instances
        # implicitly (that was the old process-wide DEFAULT_DP_MEMO,
        # retired as the canonical RPR101 shared-state finding).
        self._dp_memo = (
            self.config.dp_memo if self.config.dp_memo is not None else DPMemo()
        )

    @property
    def dp_memo(self) -> DPMemo:
        """This scheduler's DP memo (shared only if the config says so)."""
        return self._dp_memo

    def schedule(self, slot_list: SlotList, batch: Batch) -> ScheduleOutcome:
        """Schedule ``batch`` against the vacant ``slot_list``.

        The input slot list is not modified; committed assignments live in
        the outcome's combination, and the slots left over after *all*
        alternatives were carved out are in ``outcome.search.remaining_slots``.

        Raises:
            InfeasibleConstraintError: Only under
                :attr:`InfeasiblePolicy.RAISE` when no combination fits
                the derived constraint.
        """
        config = self.config
        telemetry = get_telemetry()
        if telemetry.enabled:
            schedule_span = telemetry.span(
                "scheduler.schedule",
                algo=config.algorithm.value,
                objective=config.objective.value,
                jobs=len(batch),
                slots=len(slot_list),
            )
        else:
            schedule_span = NOOP_SPAN
        with schedule_span:
            # search_shards > 1 opts into the indexed scheme explicitly:
            # the sharded path only exists on top of it, and under
            # telemetry the explicit flag selects the instrumented
            # sharded search instead of the serial reference path.
            search = find_alternatives(
                slot_list,
                batch,
                config.algorithm,
                rho=config.rho,
                max_alternatives_per_job=config.max_alternatives_per_job,
                use_index=True if config.search_shards > 1 else None,
                shards=config.search_shards if config.search_shards > 1 else None,
            )
            postponed = search.jobs_without_alternatives()
            covered = {
                job: windows for job, windows in search.alternatives.items() if windows
            }
            if telemetry.enabled:
                telemetry.count("scheduler.batches")
                telemetry.count("scheduler.jobs_submitted", len(batch))
                telemetry.count("scheduler.jobs_postponed", len(postponed))
            if not covered:
                empty = Combination({}, 0.0, 0.0, config.objective, 0.0)
                return ScheduleOutcome(empty, search, postponed, quota=0.0, budget=None)

            quota = time_quota(covered)
            budget: float | None = None
            used_fallback = False
            try:
                if config.objective is Criterion.TIME:
                    budget = vo_budget(
                        covered,
                        quota,
                        resolution=config.resolution,
                        budget=config.budget,
                        memo=self._dp_memo,
                    )
                    combination = minimize_time(
                        covered,
                        budget,
                        resolution=config.resolution,
                        budget=config.budget,
                        memo=self._dp_memo,
                    )
                else:
                    combination = minimize_cost(
                        covered,
                        quota,
                        resolution=config.resolution,
                        budget=config.budget,
                        memo=self._dp_memo,
                    )
            except InfeasibleConstraintError:
                if config.infeasible_policy is InfeasiblePolicy.RAISE:
                    raise
                limit = budget if budget is not None else quota
                combination = _earliest_combination(covered, config.objective, limit)
                used_fallback = True
                if telemetry.enabled:
                    telemetry.count("scheduler.fallbacks")
                    if telemetry.decisions.enabled:
                        telemetry.decisions.emit(
                            "scheduler.fallback",
                            objective=config.objective.value,
                            limit=limit,
                        )
            if telemetry.enabled:
                telemetry.count("scheduler.jobs_scheduled", len(combination.selection))
            return ScheduleOutcome(
                combination=combination,
                search=search,
                postponed=postponed,
                quota=quota,
                budget=budget,
                used_fallback=used_fallback,
                degraded=combination.degraded,
            )
