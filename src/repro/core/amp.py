"""AMP — Algorithm based on Maximal job Price (paper Section 3).

AMP replaces ALP's per-slot price cap with a *job budget*
``S = C · t · N``: the window's **total** cost must fit the budget, but
individual slots may be arbitrarily expensive.  This widens the search
space — any ALP window is also an AMP window, but AMP can additionally
mix cheap slow nodes with expensive fast ones (Section 6's price/quality
argument), which is where its experimental advantage comes from.

The algorithm (paper steps 1°-4°):

1. Find the earliest window of ``N`` slots with ALP, *excluding* the
   price condition 2°c.
2. Sort the candidate slots by cost ascending and take the cheapest
   ``N``; if their total cost ``M_N`` fits the budget, the window is
   formed from them (extra candidates are simply left in the vacant
   list).
3. Otherwise keep scanning: add the next suited slot, advance the window
   start to it, expire candidates, and whenever at least ``N``
   candidates are alive re-try step 2.  Running out of slots while
   holding fewer than ``N`` candidates is a failure — the job is
   postponed.

Like ALP the scan is strictly forward, so complexity is ``O(m)`` slot
examinations; the re-sorting in step 2 touches only the (bounded)
candidate window.
"""

from __future__ import annotations

from repro.core.alp import ForwardScan
from repro.core.errors import InvalidRequestError, WindowNotFoundError
from repro.core.job import ResourceRequest
from repro.core.slot import Slot, SlotList
from repro.core.window import Window
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = ["find_window", "require_window", "cheapest_subset"]


def _slot_cost(slot: Slot, request: ResourceRequest) -> float:
    """Cost of placing one task of ``request`` in ``slot``.

    Per-slot total cost is ``price per unit × runtime on that node``
    (Section 6: ``C · t / P``), so a fast expensive node can undercut a
    slow cheap one — the effect AMP exploits.
    """
    return slot.cost_of(request.volume)


def cheapest_subset(candidates: list[Slot], request: ResourceRequest) -> tuple[list[Slot], float]:
    """The ``N`` cheapest candidate slots and their total cost ``M_N``.

    Implements AMP step 2°'s "sort window slots by their cost in
    ascending order; calculate total cost of first N slots".  Ties are
    broken by resource uid so results are deterministic.

    Raises:
        InvalidRequestError: If fewer than ``N`` candidates are supplied.
    """
    if len(candidates) < request.node_count:
        raise InvalidRequestError(
            f"need at least {request.node_count} candidates, got {len(candidates)}"
        )
    ranked = sorted(
        candidates, key=lambda slot: (_slot_cost(slot, request), slot.resource.uid)
    )
    chosen = ranked[: request.node_count]
    return chosen, sum(_slot_cost(slot, request) for slot in chosen)


def find_window(slot_list: SlotList, request: ResourceRequest, *, budget: float | None = None) -> Window | None:
    """Run AMP for a single job over ``slot_list``.

    Args:
        slot_list: The ordered list of vacant slots (not modified).
        request: The job's resource request.  Condition 2°a (performance)
            and 2°b (length) still apply to every slot; condition 2°c is
            replaced by the budget test.
        budget: The job budget ``S``.  Defaults to ``request.budget``
            (= ``C · t · N``).  Pass ``request.scaled_budget(rho)`` for
            the Section 6 extension ``S = ρ · C · t · N``.

    Returns:
        The earliest window whose ``N`` cheapest alive candidates fit the
        budget, or ``None`` when the scan is exhausted first.
    """
    if budget is None:
        budget = request.budget
    telemetry = get_telemetry()
    if telemetry.enabled:
        return _find_window_instrumented(telemetry, slot_list, request, budget)
    # Disabled-telemetry fast path — see the note in repro.core.alp.
    scan = ForwardScan(request, check_price=False)
    for slot in slot_list:
        if not scan.offer(slot):
            continue
        if scan.size < request.node_count:
            continue
        chosen, total_cost = cheapest_subset(scan.candidates, request)
        if total_cost <= budget:
            return scan.build_window(chosen)
    return None


def _find_window_instrumented(
    telemetry: Telemetry, slot_list: SlotList, request: ResourceRequest, budget: float
) -> Window | None:
    """The :func:`find_window` loop with scan accounting (telemetry on)."""
    scan = ForwardScan(request, check_price=False)
    decisions = telemetry.decisions
    record_decisions = decisions.enabled
    scanned = 0
    budget_checks = 0
    window: Window | None = None
    for slot in slot_list:
        scanned += 1
        if not scan.offer(slot):
            continue
        if scan.size < request.node_count:
            continue
        budget_checks += 1
        chosen, total_cost = cheapest_subset(scan.candidates, request)
        if total_cost <= budget:
            window = scan.build_window(chosen)
            break
        if record_decisions:
            # A candidate window existed but its N cheapest slots still
            # overran the budget S — the prune AMP is defined by.
            decisions.emit(
                "amp.budget_rejected",
                start=scan.window_start,
                cost=total_cost,
                budget=budget,
            )
    telemetry.count("search.slots_scanned", scanned, algo="amp")
    telemetry.observe("search.scan_depth", scanned, algo="amp")
    telemetry.count("search.budget_checks", budget_checks, algo="amp")
    if window is not None:
        telemetry.count("search.windows_found", 1, algo="amp")
        if budget_checks > 1:
            telemetry.count("search.budget_rejections", budget_checks - 1, algo="amp")
    else:
        telemetry.count("search.windows_missed", 1, algo="amp")
        telemetry.count("search.budget_rejections", budget_checks, algo="amp")
    if record_decisions:
        if window is not None:
            decisions.emit(
                "amp.window",
                start=window.start,
                length=window.length,
                cost=window.cost,
                budget=budget,
                scanned=scanned,
                budget_rejections=budget_checks - 1,
            )
        else:
            decisions.emit(
                "amp.no_window",
                budget=budget,
                scanned=scanned,
                budget_rejections=budget_checks,
            )
    return window


def require_window(slot_list: SlotList, request: ResourceRequest, *, budget: float | None = None, job_name: str | None = None) -> Window:
    """Like :func:`find_window` but raises on failure.

    Raises:
        WindowNotFoundError: When no suitable window exists.
    """
    window = find_window(slot_list, request, budget=budget)
    if window is None:
        limit = request.budget if budget is None else budget
        raise WindowNotFoundError(
            f"AMP found no window of {request.node_count} slots within budget "
            f"{limit:g} (volume {request.volume:g}, P>={request.min_performance:g}) "
            f"in a list of {len(slot_list)} slots",
            job_name=job_name,
        )
    return window
