"""Partition-parallel phase-1 slot search over disjoint node shards.

ROADMAP item 2: ``ParallelRunner`` shards *iterations* of an experiment,
but one scheduling cycle over a fleet-scale VO was still a single-process
scan.  This module scales out the cycle itself while keeping the result
bit-for-bit identical to the serial :class:`~repro.core.index.SlotIndex`
path (``tests/test_reference_oracles.py`` enforces the equality for
shard counts {1, 2, 3, 4, 7}).

**Why this is exact, not approximate.**  In the paper's forward scans
(Section 4) every *skip* condition is a pure per-row predicate — too
slow, too expensive, too short, expired against the start hint — while
only the candidate-accumulation loop (window start advance, expiry,
cheapest-subset ranking) depends on scan order.  So the search splits
cleanly:

* each worker owns the rows of one node partition
  (:func:`~repro.core.partition.partition_uids`) and applies the
  per-row predicates to its block, returning the surviving rows;
* the master merges the per-shard survivor streams back into global
  ``(start, end, uid)`` scan order — the exact order the serial index
  iterates, since row keys are globally unique — and runs the *same*
  candidate loop as :meth:`SlotIndex.find_alp_window` /
  :meth:`SlotIndex.find_amp_window_at`, float-op for float-op.

The cross-job subtract step (``commit``) stays sequential on the master:
each committed window rewrites the vacant-time state that every later
search of the *whole batch* scans, so it is a serialization point of the
paper's scheme, not an implementation artifact (see docs/model.md).
Subtraction itself is routed to the owning shard by resource uid and is
``O(log m)`` there.

**Where the speed comes from.**  Two effects stack:

1. the predicate sweep — the bulk of phase-1 wall time on large lists —
   runs on all shards concurrently;
2. each shard memoizes the *request-static* part of the predicate
   (performance, price-cap, and slot-length tests keyed by
   ``(volume, min_performance, max_price)``) and maintains the memo
   incrementally across commits, so the repeated passes of one
   alternative search only re-evaluate the cheap dynamic start-hint
   predicate over the pre-filtered survivors.

Workers exchange only primitive tuples — float/int rows, never ``Slot``
or ``Resource`` objects — so the protocol pickles cheaply and no worker
ever mints a :class:`Resource` uid.  The master keeps the only
``uid → Resource`` map and reconstructs value-equal ``Slot`` objects for
the returned windows.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import merge as heap_merge
from multiprocessing import Pipe, Process
from multiprocessing.connection import Connection
from operator import itemgetter
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core import errors
from repro.core.columns import ColumnStore, Row, SurvivorRow, static_survivor
from repro.core.errors import (
    InvalidRequestError,
    InvariantViolationError,
    SchedulingError,
    SlotListError,
    WorkerLostError,
)
from repro.core.job import ResourceRequest
from repro.core.partition import partition_uids, shard_owners
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList
from repro.core.window import Window, carved_allocation
from repro.obs.telemetry import get_telemetry

if TYPE_CHECKING:
    from repro.chaos.proc import WorkerSupervisor

__all__ = ["ShardedSearchExecutor"]

NEG_INF = float("-inf")
INF = float("inf")

# The row layouts and the static-predicate kernel are shared with the
# serial SlotIndex through repro.core.columns, so the serial and sharded
# fast paths cannot drift apart: ``Row`` is ``(start, end, uid,
# performance, price)``; ``SurvivorRow`` appends the precomputed runtime
# ``volume / performance`` so master and worker use the same float.

_row_key = itemgetter(0, 1, 2)


class _ShardState:
    """One partition's sorted row columns plus per-request filter memos.

    The same object backs both execution modes: in-process shards call it
    directly, worker processes drive it from :func:`_shard_worker`.  Rows
    live in a :class:`~repro.core.columns.ColumnStore`, so a memo-miss
    sweep evaluates the static predicates as one vectorized mask over
    the shard's columns — the identical kernel (and identical floats)
    the serial :class:`~repro.core.index.SlotIndex` uses.
    """

    __slots__ = ("_columns", "_memos")

    def __init__(self, rows: Sequence[Row]) -> None:
        self._columns = ColumnStore(rows)
        # (volume, min_performance, max_price) → rows surviving the
        # static predicates, in scan order.  Maintained incrementally by
        # commit/insert; the dynamic start-hint predicate is applied per
        # scan.
        self._memos: dict[tuple[float, float, float | None], list[SurvivorRow]] = {}

    def scan(
        self,
        volume: float,
        min_performance: float,
        max_price: float | None,
        start_hint: float,
        count_skips: bool,
    ) -> tuple[list[SurvivorRow], int, int, float]:
        """Rows of this shard surviving all scan predicates.

        Returns ``(survivors, hint_skips, runtime_skips, seconds)``:
        ``hint_skips`` counts rows failing the tier-1 ``end <=
        start_hint`` fast path over the *unfiltered* shard (the serial
        :meth:`SlotIndex.hint_skippable` count restricted to this
        partition) and ``runtime_skips`` the tier-2 prune — static
        survivors that cannot fit their runtime between the hint and
        their end (``end - start_hint < runtime``).  Both are 0 unless
        ``count_skips``; together they restrict the serial
        :meth:`SlotIndex.hint_prunes` pair to this partition.
        """
        began = perf_counter()
        key = (volume, min_performance, max_price)
        memo = self._memos.get(key)
        if memo is None:
            memo, _positions = self._columns.survivors(
                volume, min_performance, max_price
            )
            self._memos[key] = memo
        if start_hint == NEG_INF:
            survivors = list(memo)
        else:
            survivors = [
                entry
                for entry in memo
                if entry[1] > start_hint and entry[1] - start_hint >= entry[5]
            ]
        skips = 0
        runtime_skips = 0
        if count_skips and start_hint != NEG_INF:
            skips = self._columns.count_end_at_or_before(start_hint)
            runtime_skips = sum(
                1
                for entry in memo
                if entry[1] > start_hint and entry[1] - start_hint < entry[5]
            )
        return survivors, skips, runtime_skips, perf_counter() - began

    def commit(
        self,
        key: tuple[float, float, int],
        span_start: float,
        span_end: float,
        price: float,
        resource_name: str,
    ) -> None:
        """Subtract ``[span_start, span_end)`` from the row at ``key``.

        Raises:
            SlotListError: If no row matches the source slot — same
                contract as :meth:`SlotIndex.commit`.
        """
        columns = self._columns
        position = columns.bisect_key(key)
        if (
            position == len(columns)
            or columns.key_at(position) != key
            or columns.prices[position] != price
        ):
            raise SlotListError(
                f"no vacant slot on {resource_name!r} contains span "
                f"[{span_start:g}, {span_end:g})"
            )
        row = columns.delete_at(position)
        remainders: list[Row] = []
        if span_start > row[0]:
            remainders.append((row[0], span_start, row[2], row[3], row[4]))
        if row[1] > span_end:
            remainders.append((span_end, row[1], row[2], row[3], row[4]))
        for remainder in remainders:
            columns.insert_row(remainder)
        for memo_key, memo in self._memos.items():
            memo_position = bisect_left(memo, key, key=_row_key)
            if memo_position < len(memo) and _row_key(memo[memo_position]) == key:
                del memo[memo_position]
            volume, min_performance, max_price = memo_key
            for remainder in remainders:
                entry = static_survivor(remainder, volume, min_performance, max_price)
                if entry is not None:
                    insort(memo, entry, key=_row_key)

    def insert(self, row: Row, resource_name: str) -> None:
        """Re-insert vacant time (mirrors :meth:`SlotIndex.insert`).

        The same-resource overlap check bisects to the insertion
        neighbourhood (:meth:`ColumnStore.find_same_uid_overlap`)
        instead of scanning the whole row prefix.

        Raises:
            SlotListError: If the row overlaps an existing row of the
                same resource.
        """
        start, end, uid = row[0], row[1], row[2]
        overlap = self._columns.find_same_uid_overlap(start, end, uid)
        if overlap is not None:
            raise SlotListError(
                f"slot [{start:g}, {end:g}) on {resource_name!r} overlaps "
                f"vacant span [{overlap[0]:g}, {overlap[1]:g})"
            )
        self._columns.insert_row(row)
        for memo_key, memo in self._memos.items():
            volume, min_performance, max_price = memo_key
            entry = static_survivor(row, volume, min_performance, max_price)
            if entry is not None:
                insort(memo, entry, key=_row_key)

    def rows(self) -> list[Row]:
        """Current rows of this shard, in scan order."""
        return self._columns.rows()


def _shard_worker(connection: Connection, rows: list[Row]) -> None:
    """Worker-process loop: apply ops to one shard until told to stop.

    Every reply is a tagged tuple: ``("ok", payload)`` or
    ``("err", error type name, message)``.  Only library errors
    (:class:`SchedulingError`) are marshalled; anything else crashes the
    worker, which the master's supervisor observes as a dead pipe and
    answers with respawn-and-replay (then
    :class:`~repro.core.errors.WorkerLostError` once its restart budget
    is spent).
    """
    state = _ShardState(rows)
    while True:
        try:
            message = connection.recv()
        except EOFError:
            return
        op = message[0]
        if op == "stop":
            connection.send(("ok", None))
            return
        payload: object = None
        try:
            if op == "scan":
                payload = state.scan(*message[1:])
            elif op == "commit":
                state.commit(*message[1:])
            elif op == "insert":
                state.insert(*message[1:])
            elif op == "rows":
                payload = state.rows()
            else:
                raise InvalidRequestError(f"unknown shard op {op!r}")
        except SchedulingError as error:
            connection.send(("err", type(error).__name__, str(error)))
        else:
            connection.send(("ok", payload))


def _error_type(name: str) -> type[SchedulingError]:
    """Resolve a marshalled error type name back to its class."""
    resolved = getattr(errors, name, None)
    if isinstance(resolved, type) and issubclass(resolved, SchedulingError):
        return resolved
    return SchedulingError


class ShardedSearchExecutor:
    """Phase-1 search over node partitions, byte-identical to serial.

    Splits a slot list into ``shards`` blocks by resource uid and runs
    the scan predicates per block — in worker processes when
    ``processes`` is true, otherwise in-process through the identical
    :class:`_ShardState` code path.  The find/commit/insert surface
    mirrors :class:`~repro.core.index.SlotIndex`, so the multi-pass
    scheme in :mod:`repro.core.search` drives either interchangeably.

    The default is in-process: a multi-pass search re-scans the same
    request predicates over and over, so after the first pass each shard
    scan is a filter over its memoized survivor set — microseconds of
    work that a pipe round-trip (~0.5 ms per find) would dwarf at any
    slot-list size (see docs/benchmarks.md, EXP-SHARD).  Worker
    processes are an explicit opt-in for workloads dominated by
    memo-*miss* sweeps (many distinct one-shot requests over a very
    large fleet), where each scan really does O(m / shards) predicate
    work that the cores can split.

    Use as a context manager or call :meth:`close`; worker processes are
    daemons, so a leak cannot outlive the interpreter, but an explicit
    shutdown keeps the fork count bounded during long runs.

    Attributes:
        shards: Number of partitions.
        last_hint_skips: Tier-1 start-hint prune count (``end <=
            start_hint``) of the most recent find with
            ``count_skips=True`` (summed over shards; matches the serial
            :meth:`SlotIndex.hint_prunes` first component).
        last_runtime_skips: Tier-2 prune count of the same find — static
            survivors with ``end - start_hint < runtime`` (matches the
            serial :meth:`SlotIndex.hint_prunes` second component).
        shard_scan_seconds: Cumulative per-shard scan seconds, as
            measured inside each shard — the per-shard ``phase1.*``
            timing the instrumented search reports.
    """

    def __init__(
        self,
        slots: Iterable[Slot],
        shards: int,
        *,
        processes: bool | None = None,
        supervisor: "WorkerSupervisor | None" = None,
    ) -> None:
        """Partition ``slots`` into ``shards`` blocks and start workers.

        Args:
            slots: The vacant-slot list (left untouched; rows are copied).
            shards: Number of partitions, >= 1.
            processes: Force worker processes on/off; ``None`` (default)
                stays in-process — see the class docstring for when
                processes pay off.
            supervisor: Restart budget/backoff for dead worker processes
                (process mode only).  Defaults to
                :data:`repro.chaos.proc.DEFAULT_SUPERVISOR`; a dead
                worker is respawned from the shard's initial rows, its
                committed mutations replayed in order, and the in-flight
                operation retried — byte-identical to an undisturbed run
                because shard state is a pure function of the mutation
                sequence.  An exhausted budget raises
                :class:`~repro.core.errors.WorkerLostError`.
        """
        materialized = list(slots)
        self._resources: dict[int, Resource] = {
            slot.resource.uid: slot.resource for slot in materialized
        }
        partitions = partition_uids(self._resources, shards)
        self._owners = shard_owners(partitions)
        self.shards = shards
        self.last_hint_skips = 0
        self.last_runtime_skips = 0
        self.shard_scan_seconds = [0.0] * shards
        self._hint_floor = float("inf")
        shard_rows: list[list[Row]] = [[] for _ in range(shards)]
        for slot in materialized:
            row: Row = (
                slot.start,
                slot.end,
                slot.resource.uid,
                slot.resource.performance,
                slot.price,
            )
            shard_rows[self._owners[row[2]]].append(row)
        if processes is None:
            processes = False
        self._states: list[_ShardState] | None = None
        self._connections: list[Connection] | None = None
        self._workers: list[Process] = []
        self._supervisor: "WorkerSupervisor | None" = supervisor
        # Respawn state (process mode): the rows each shard started from
        # plus every mutation it acknowledged, so a replacement worker
        # can be rebuilt to the exact pre-death state.
        self._initial_rows: list[list[Row]] = []
        self._op_logs: list[list[tuple[Any, ...]]] = []
        if processes:
            if self._supervisor is None:
                # Deferred import: repro.chaos depends on repro.core, so
                # the default supervisor is resolved at first use, never
                # at module import time.
                from repro.chaos.proc import DEFAULT_SUPERVISOR

                self._supervisor = DEFAULT_SUPERVISOR
            self._initial_rows = shard_rows
            self._op_logs = [[] for _ in range(shards)]
            self._connections = [self._spawn(shard) for shard in range(shards)]
        else:
            self._states = [_ShardState(rows) for rows in shard_rows]

    def _spawn(self, shard: int) -> Connection:
        """Start (or restart) the worker process backing ``shard``."""
        parent, child = Pipe()
        worker = Process(
            target=_shard_worker, args=(child, self._initial_rows[shard]), daemon=True
        )
        worker.start()
        child.close()
        if shard < len(self._workers):
            self._workers[shard] = worker
        else:
            self._workers.append(worker)
        return parent

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @property
    def uses_processes(self) -> bool:
        """Whether shard scans run in worker processes."""
        return self._connections is not None

    def close(self, timeout: float = 5.0) -> None:
        """Stop worker processes; in-process mode is a no-op.

        Each worker is asked to stop, then joined with a bounded
        ``timeout``; a worker still alive after that is *wedged* (stuck
        in a syscall, spinning, or ignoring its pipe) and is
        ``terminate()``-d so shutdown can never hang.  Pipe failures
        during the stop handshake are expected for workers that already
        died and are recorded per shard.

        Raises:
            WorkerLostError: After cleanup, when any worker had to be
                terminated — the error names the wedged shard(s).
        """
        if self._connections is None:
            return
        connections, self._connections = self._connections, None
        workers, self._workers = self._workers, []
        telemetry = get_telemetry()
        for shard, connection in enumerate(connections):
            try:
                connection.send(("stop",))
                connection.recv()
            except (OSError, EOFError):
                # The worker is already gone — which is what close() is
                # after — but record which shard's pipe failed so a
                # campaign can tell a clean stop from a dead worker.
                if telemetry.enabled:
                    telemetry.count("shard.pipe_failures", 1, shard=str(shard))
            connection.close()
        wedged: list[int] = []
        for shard, worker in enumerate(workers):
            worker.join(timeout)
            if worker.is_alive():
                worker.terminate()
                worker.join(1.0)
                wedged.append(shard)
        if wedged:
            names = ", ".join(str(shard) for shard in wedged)
            raise WorkerLostError(
                f"shard worker(s) {names} did not stop within {timeout:g}s "
                f"and were terminated",
                shard=wedged[0],
            )

    def __enter__(self) -> "ShardedSearchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker protocol (supervised in process mode)                       #
    # ------------------------------------------------------------------ #

    def _respawn(self, shard: int, restarts: int) -> None:
        """Replace a dead shard worker and replay its mutation log.

        The supervisor's backoff ladder paces the restart; the new
        worker starts from the shard's initial rows and re-applies every
        *acknowledged* commit/insert in order, so its state is exactly
        the dead worker's last consistent state.  An operation the dead
        worker may have applied but never acknowledged is not replayed —
        the caller re-sends it, so it lands exactly once.
        """
        if self._supervisor is None or self._connections is None:
            raise InvariantViolationError("executor is closed")
        self._supervisor.pause(restarts)
        self._connections[shard].close()
        self._connections[shard] = self._spawn(shard)
        connection = self._connections[shard]
        for message in self._op_logs[shard]:
            try:
                connection.send(message)
                reply = connection.recv()
            except (OSError, EOFError) as error:
                raise WorkerLostError(
                    f"shard {shard} replacement worker died replaying its "
                    f"mutation log",
                    shard=shard,
                    restarts=restarts,
                ) from error
            if reply[0] != "ok":
                raise InvariantViolationError(
                    f"shard {shard} replacement worker rejected a previously "
                    f"acknowledged op: {reply[1]}: {reply[2]}"
                )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("chaos.worker_restarts", 1, layer="shard")
            if telemetry.decisions.enabled:
                telemetry.decisions.emit(
                    "chaos.worker_recovered",
                    layer="shard",
                    shard=shard,
                    restarts=restarts,
                    replayed=len(self._op_logs[shard]),
                )

    def _call_worker(
        self, shard: int, message: tuple[Any, ...], *, record: bool
    ) -> Any:
        """Send one op to a shard worker under supervision.

        A dead pipe (send ``OSError`` / recv ``EOFError``) triggers the
        supervised respawn-and-replay path up to the supervisor's restart
        budget; past it, :class:`~repro.core.errors.WorkerLostError`
        names the shard.  ``record`` ops (commit/insert) are appended to
        the shard's mutation log only after the worker acknowledges
        them.
        """
        if self._connections is None or self._supervisor is None:
            raise InvariantViolationError("executor is closed")
        restarts = 0
        while True:
            try:
                self._connections[shard].send(message)
                reply = self._connections[shard].recv()
            except (OSError, EOFError) as error:
                restarts += 1
                if restarts > self._supervisor.max_restarts:
                    raise WorkerLostError(
                        f"shard {shard} worker died mid-operation and the "
                        f"supervisor's restart budget "
                        f"({self._supervisor.max_restarts}) is exhausted",
                        shard=shard,
                        restarts=restarts - 1,
                    ) from error
                self._respawn(shard, restarts)
                continue
            if reply[0] == "ok":
                if record:
                    self._op_logs[shard].append(message)
                return reply[1]
            raise _error_type(reply[1])(reply[2])

    def _call_one(self, shard: int, message: tuple[Any, ...]) -> Any:
        if self._connections is not None:
            return self._call_worker(
                shard, message, record=message[0] in ("commit", "insert")
            )
        if self._states is None:
            raise InvariantViolationError("executor is closed")
        state = self._states[shard]
        op = message[0]
        if op == "scan":
            return state.scan(*message[1:])
        if op == "commit":
            state.commit(*message[1:])
            return None
        if op == "insert":
            state.insert(*message[1:])
            return None
        if op == "rows":
            return state.rows()
        raise InvalidRequestError(f"unknown shard op {op!r}")

    def _broadcast(self, message: tuple[Any, ...]) -> list[Any]:
        """Run one op on every shard; parallel in process mode.

        Sends are pipelined so shard scans overlap; a shard whose pipe
        fails mid-round falls back to the supervised
        :meth:`_call_worker` path, which respawns the worker and
        re-issues this shard's (read-only) op.
        """
        if self._connections is not None:
            dead: set[int] = set()
            for shard, connection in enumerate(self._connections):
                try:
                    connection.send(message)
                except OSError:
                    dead.add(shard)
            replies: list[Any] = []
            for shard, connection in enumerate(self._connections):
                if shard in dead:
                    replies.append(None)
                    continue
                try:
                    replies.append(connection.recv())
                except (OSError, EOFError):
                    dead.add(shard)
                    replies.append(None)
            results: list[Any] = []
            for shard, reply in enumerate(replies):
                if shard in dead:
                    results.append(self._call_worker(shard, message, record=False))
                elif reply[0] == "ok":
                    results.append(reply[1])
                else:
                    raise _error_type(reply[1])(reply[2])
            return results
        return [self._call_one(shard, message) for shard in range(self.shards)]

    def _scan(
        self,
        volume: float,
        min_performance: float,
        max_price: float | None,
        start_hint: float,
        count_skips: bool,
    ) -> list[list[SurvivorRow]]:
        replies = self._broadcast(
            ("scan", volume, min_performance, max_price, start_hint, count_skips)
        )
        streams: list[list[SurvivorRow]] = []
        skips = 0
        runtime_skips = 0
        for shard, reply in enumerate(replies):
            survivors, shard_skips, shard_runtime_skips, seconds = reply
            streams.append(survivors)
            skips += shard_skips
            runtime_skips += shard_runtime_skips
            self.shard_scan_seconds[shard] += seconds
        self.last_hint_skips = skips
        self.last_runtime_skips = runtime_skips
        return streams

    def _owner_of(self, uid: int) -> int:
        shard = self._owners.get(uid)
        if shard is None:
            # A resource first seen via insert (hot-swap replacement
            # node): route deterministically; contiguity of the initial
            # partition is irrelevant to correctness, only disjointness.
            shard = uid % self.shards
            self._owners[uid] = shard
        return shard

    def _slot_of(self, entry: Sequence[float]) -> Slot:
        return Slot(self._resources[int(entry[2])], entry[0], entry[1], entry[4])

    # ------------------------------------------------------------------ #
    # SlotIndex-equivalent surface                                       #
    # ------------------------------------------------------------------ #

    def find_alp_window(
        self,
        request: ResourceRequest,
        *,
        start_hint: float = NEG_INF,
        count_skips: bool = False,
    ) -> Window | None:
        """ALP forward scan over the merged survivor streams.

        Bit-for-bit equivalent to :meth:`SlotIndex.find_alp_window`: the
        workers apply the per-row predicates, the merge restores global
        ``(start, end, uid)`` order, and this loop replays the serial
        candidate accumulation unchanged.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        streams = self._scan(
            request.volume,
            request.min_performance,
            request.max_price,
            start_hint,
            count_skips,
        )
        node_count = request.node_count
        window_start = NEG_INF
        # Candidates are the survivor tuples themselves; events below
        # ``min_bound`` (the smallest per-candidate
        # :func:`~repro.core.columns.expiry_bound`) provably expire
        # nobody, so the exact per-event expiry filter is skipped there
        # — the same loop the serial :meth:`SlotIndex.find_alp_window`
        # runs.
        candidates: list[SurvivorRow] = []
        min_bound = INF
        for entry in heap_merge(*streams, key=_row_key):
            start = entry[0]
            if start > window_start:
                window_start = start
                if start >= min_bound:
                    alive: list[SurvivorRow] = []
                    min_bound = INF
                    for c in candidates:
                        if c[1] - start >= c[5]:
                            alive.append(c)
                            if c[6] < min_bound:
                                min_bound = c[6]
                    candidates = alive
            candidates.append(entry)
            if entry[6] < min_bound:
                min_bound = entry[6]
            if len(candidates) == node_count:
                allocations = [
                    carved_allocation(
                        self._slot_of(c), window_start, window_start + c[5]
                    )
                    for c in candidates
                ]
                return Window.from_scan(request, allocations)
        return None

    def find_amp_window_at(
        self,
        request: ResourceRequest,
        *,
        budget: float | None = None,
        start_hint: float = NEG_INF,
        count_skips: bool = False,
    ) -> tuple[Window, float] | None:
        """AMP forward scan; returns ``(window, accepting event time)``.

        Bit-for-bit equivalent to :meth:`SlotIndex.find_amp_window_at`,
        including the cheapest-subset ranking, the ``cheapest_total``
        re-summation caching, and the float-addition order of the budget
        test.
        """
        if budget is None:
            budget = request.budget
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        streams = self._scan(
            request.volume, request.min_performance, None, start_hint, count_skips
        )
        node_count = request.node_count
        window_start = NEG_INF
        candidates: list[SurvivorRow] = []
        ranked: list[tuple[float, int, float, SurvivorRow]] = []
        cheapest_total: float | None = None
        min_bound = INF
        for entry in heap_merge(*streams, key=_row_key):
            runtime = entry[5]
            start = entry[0]
            if start > window_start:
                window_start = start
                # Same guarded expiry as the serial
                # :meth:`SlotIndex.find_amp_window_at`; ``c[4] * c[5]``
                # re-produces a candidate's cost bit-for-bit.
                if start >= min_bound:
                    alive: list[SurvivorRow] = []
                    min_bound = INF
                    for c in candidates:
                        if c[1] - start >= c[5]:
                            alive.append(c)
                            if c[6] < min_bound:
                                min_bound = c[6]
                        elif _remove_ranked(ranked, c[4] * c[5], c[2]) < node_count:
                            cheapest_total = None
                    candidates = alive
            uid = entry[2]
            cost = entry[4] * runtime
            candidates.append(entry)
            if entry[6] < min_bound:
                min_bound = entry[6]
            position = bisect_left(ranked, (cost, uid))
            ranked.insert(position, (cost, uid, runtime, entry))
            if position < node_count:
                cheapest_total = None
            if len(candidates) < node_count or start < start_hint:
                continue
            if cheapest_total is None:
                total = 0.0
                for k in range(node_count):
                    total += ranked[k][0]
                cheapest_total = total
            if cheapest_total <= budget:
                chosen = ranked[:node_count]
                sync = max(item[3][0] for item in chosen)
                allocations = [
                    carved_allocation(self._slot_of(item[3]), sync, sync + item[2])
                    for item in chosen
                ]
                return Window.from_scan(request, allocations), start
        return None

    def commit(self, window: Window) -> None:
        """Subtract the window's occupied spans on the owning shards.

        Commits apply sequentially per allocation in *both* execution
        modes, stopping at the first failure — so the two modes leave
        identical shard state on a failed commit, and each mutation is
        individually acknowledged before entering the shard's replay log
        (the supervised-respawn exactly-once invariant).

        Raises:
            SlotListError: If some source slot is no longer present —
                same contract as :meth:`SlotIndex.commit`.
        """
        for allocation in window.allocations:
            source = allocation.source
            self._call_one(
                self._owner_of(source.resource.uid),
                (
                    "commit",
                    (source.start, source.end, source.resource.uid),
                    allocation.start,
                    allocation.end,
                    source.price,
                    source.resource.name,
                ),
            )

    def insert(self, slot: Slot) -> None:
        """Re-insert vacant time (outage repair, hot-swap revocation).

        Clamps subsequent start hints exactly like
        :meth:`SlotIndex.insert`.

        Raises:
            SlotListError: If the slot overlaps an existing slot of the
                same resource.
        """
        uid = slot.resource.uid
        self._resources.setdefault(uid, slot.resource)
        row: Row = (slot.start, slot.end, uid, slot.resource.performance, slot.price)
        self._call_one(self._owner_of(uid), ("insert", row, slot.resource.name))
        if slot.start < self._hint_floor:
            self._hint_floor = slot.start

    def slot_list(self) -> SlotList:
        """Materialise the merged shard state as a plain :class:`SlotList`."""
        replies = self._broadcast(("rows",))
        slots: list[Slot] = []
        for reply in replies:
            for row in reply:
                slots.append(self._slot_of(row))
        return SlotList(slots)

    def hint_skippable(self, start_hint: float) -> int:
        """Serial :meth:`SlotIndex.hint_skippable`, summed over shards."""
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        if start_hint == NEG_INF:
            return 0
        total = 0
        for reply in self._broadcast(("scan", 0.0, NEG_INF, None, start_hint, True)):
            total += int(reply[1])
        return total


def _remove_ranked(
    ranked: list[tuple[float, int, float, SurvivorRow]], cost: float, uid: int
) -> int:
    """Drop the ``(cost, uid)`` entry from the ranked list; return its position."""
    position = bisect_left(ranked, (cost, uid))
    while position < len(ranked):
        entry = ranked[position]
        if entry[0] == cost and entry[1] == uid:
            del ranked[position]
            return position
        position += 1
    raise SlotListError(f"ranked candidate (cost={cost!r}, uid={uid!r}) missing")
