"""Partition-parallel phase-1 slot search over disjoint node shards.

ROADMAP item 2: ``ParallelRunner`` shards *iterations* of an experiment,
but one scheduling cycle over a fleet-scale VO was still a single-process
scan.  This module scales out the cycle itself while keeping the result
bit-for-bit identical to the serial :class:`~repro.core.index.SlotIndex`
path (``tests/test_reference_oracles.py`` enforces the equality for
shard counts {1, 2, 3, 4, 7}).

**Why this is exact, not approximate.**  In the paper's forward scans
(Section 4) every *skip* condition is a pure per-row predicate — too
slow, too expensive, too short, expired against the start hint — while
only the candidate-accumulation loop (window start advance, expiry,
cheapest-subset ranking) depends on scan order.  So the search splits
cleanly:

* each worker owns the rows of one node partition
  (:func:`~repro.core.partition.partition_uids`) and applies the
  per-row predicates to its block, returning the surviving rows;
* the master merges the per-shard survivor streams back into global
  ``(start, end, uid)`` scan order — the exact order the serial index
  iterates, since row keys are globally unique — and runs the *same*
  candidate loop as :meth:`SlotIndex.find_alp_window` /
  :meth:`SlotIndex.find_amp_window_at`, float-op for float-op.

The cross-job subtract step (``commit``) stays sequential on the master:
each committed window rewrites the vacant-time state that every later
search of the *whole batch* scans, so it is a serialization point of the
paper's scheme, not an implementation artifact (see docs/model.md).
Subtraction itself is routed to the owning shard by resource uid and is
``O(log m)`` there.

**Where the speed comes from.**  Two effects stack:

1. the predicate sweep — the bulk of phase-1 wall time on large lists —
   runs on all shards concurrently;
2. each shard memoizes the *request-static* part of the predicate
   (performance, price-cap, and slot-length tests keyed by
   ``(volume, min_performance, max_price)``) and maintains the memo
   incrementally across commits, so the repeated passes of one
   alternative search only re-evaluate the cheap dynamic start-hint
   predicate over the pre-filtered survivors.

Workers exchange only primitive tuples — float/int rows, never ``Slot``
or ``Resource`` objects — so the protocol pickles cheaply and no worker
ever mints a :class:`Resource` uid.  The master keeps the only
``uid → Resource`` map and reconstructs value-equal ``Slot`` objects for
the returned windows.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import merge as heap_merge
from multiprocessing import Pipe, Process
from multiprocessing.connection import Connection
from operator import itemgetter
from time import perf_counter
from typing import Any, Iterable, Sequence

from repro.core import errors
from repro.core.errors import (
    InvalidRequestError,
    InvariantViolationError,
    SchedulingError,
    SlotListError,
)
from repro.core.job import ResourceRequest
from repro.core.partition import partition_uids, shard_owners
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList
from repro.core.window import TaskAllocation, Window

__all__ = ["ShardedSearchExecutor"]

NEG_INF = float("-inf")

#: Worker-side row layout — :class:`SlotIndex`'s primitive fields without
#: the trailing ``Slot`` object: ``(start, end, uid, performance, price)``.
Row = tuple[float, float, int, float, float]

#: Survivor rows returned by a scan carry the precomputed runtime
#: ``volume / performance`` as a sixth field so master and worker use the
#: same float.
SurvivorRow = tuple[float, float, int, float, float, float]

_row_key = itemgetter(0, 1, 2)
_rank_key = itemgetter(0, 1)


def _survivor(
    row: Row, volume: float, min_performance: float, max_price: float | None
) -> SurvivorRow | None:
    """Apply the request-*static* scan predicates to one row.

    Mirrors the suitability tests of the serial finders that do not
    depend on the start hint: minimum performance, the ALP per-slot
    price cap, and the slot-length test ``end - start >= runtime``.
    Returns the row extended with its runtime, or ``None`` if filtered.
    """
    performance = row[3]
    if performance < min_performance:
        return None
    if max_price is not None and row[4] > max_price:
        return None
    runtime = volume / performance
    if row[1] - row[0] < runtime:
        return None
    return (row[0], row[1], row[2], performance, row[4], runtime)


class _ShardState:
    """One partition's sorted rows plus per-request static-filter memos.

    The same object backs both execution modes: in-process shards call it
    directly, worker processes drive it from :func:`_shard_worker`.
    """

    __slots__ = ("_rows", "_memos")

    def __init__(self, rows: Sequence[Row]) -> None:
        self._rows: list[Row] = sorted(rows, key=_row_key)
        # (volume, min_performance, max_price) → rows surviving the
        # static predicates, in scan order.  Maintained incrementally by
        # commit/insert; the dynamic start-hint predicate is applied per
        # scan.
        self._memos: dict[tuple[float, float, float | None], list[SurvivorRow]] = {}

    def scan(
        self,
        volume: float,
        min_performance: float,
        max_price: float | None,
        start_hint: float,
        count_skips: bool,
    ) -> tuple[list[SurvivorRow], int, float]:
        """Rows of this shard surviving all scan predicates.

        Returns ``(survivors, hint_skips, seconds)`` where ``hint_skips``
        counts rows failing the ``end <= start_hint`` fast path over the
        *unfiltered* shard (the serial
        :meth:`SlotIndex.hint_skippable` count restricted to this
        partition; 0 unless ``count_skips``).
        """
        began = perf_counter()
        key = (volume, min_performance, max_price)
        memo = self._memos.get(key)
        if memo is None:
            memo = [
                survivor
                for row in self._rows
                if (survivor := _survivor(row, volume, min_performance, max_price))
                is not None
            ]
            self._memos[key] = memo
        if start_hint == NEG_INF:
            survivors = list(memo)
        else:
            survivors = [
                entry
                for entry in memo
                if entry[1] > start_hint and entry[1] - start_hint >= entry[5]
            ]
        skips = 0
        if count_skips and start_hint != NEG_INF:
            skips = sum(1 for row in self._rows if row[1] <= start_hint)
        return survivors, skips, perf_counter() - began

    def commit(
        self,
        key: tuple[float, float, int],
        span_start: float,
        span_end: float,
        price: float,
        resource_name: str,
    ) -> None:
        """Subtract ``[span_start, span_end)`` from the row at ``key``.

        Raises:
            SlotListError: If no row matches the source slot — same
                contract as :meth:`SlotIndex.commit`.
        """
        rows = self._rows
        position = bisect_left(rows, key, key=_row_key)
        if (
            position == len(rows)
            or _row_key(rows[position]) != key
            or rows[position][4] != price
        ):
            raise SlotListError(
                f"no vacant slot on {resource_name!r} contains span "
                f"[{span_start:g}, {span_end:g})"
            )
        row = rows[position]
        del rows[position]
        remainders: list[Row] = []
        if span_start > row[0]:
            remainders.append((row[0], span_start, row[2], row[3], row[4]))
        if row[1] > span_end:
            remainders.append((span_end, row[1], row[2], row[3], row[4]))
        for remainder in remainders:
            insort(rows, remainder, key=_row_key)
        for memo_key, memo in self._memos.items():
            memo_position = bisect_left(memo, key, key=_row_key)
            if memo_position < len(memo) and _row_key(memo[memo_position]) == key:
                del memo[memo_position]
            volume, min_performance, max_price = memo_key
            for remainder in remainders:
                entry = _survivor(remainder, volume, min_performance, max_price)
                if entry is not None:
                    insort(memo, entry, key=_row_key)

    def insert(self, row: Row, resource_name: str) -> None:
        """Re-insert vacant time (mirrors :meth:`SlotIndex.insert`).

        Raises:
            SlotListError: If the row overlaps an existing row of the
                same resource.
        """
        start, end, uid = row[0], row[1], row[2]
        for existing in self._rows:
            if existing[0] >= end:
                break
            if existing[2] == uid and existing[1] > start:
                raise SlotListError(
                    f"slot [{start:g}, {end:g}) on {resource_name!r} overlaps "
                    f"vacant span [{existing[0]:g}, {existing[1]:g})"
                )
        insort(self._rows, row, key=_row_key)
        for memo_key, memo in self._memos.items():
            volume, min_performance, max_price = memo_key
            entry = _survivor(row, volume, min_performance, max_price)
            if entry is not None:
                insort(memo, entry, key=_row_key)

    def rows(self) -> list[Row]:
        """Current rows of this shard, in scan order."""
        return list(self._rows)


def _shard_worker(connection: Connection, rows: list[Row]) -> None:
    """Worker-process loop: apply ops to one shard until told to stop.

    Every reply is a tagged tuple: ``("ok", payload)`` or
    ``("err", error type name, message)``.  Only library errors
    (:class:`SchedulingError`) are marshalled; anything else crashes the
    worker, which the master surfaces as a broken-pipe
    :class:`InvariantViolationError`.
    """
    state = _ShardState(rows)
    while True:
        try:
            message = connection.recv()
        except EOFError:
            return
        op = message[0]
        if op == "stop":
            connection.send(("ok", None))
            return
        payload: object = None
        try:
            if op == "scan":
                payload = state.scan(*message[1:])
            elif op == "commit":
                state.commit(*message[1:])
            elif op == "insert":
                state.insert(*message[1:])
            elif op == "rows":
                payload = state.rows()
            else:
                raise InvalidRequestError(f"unknown shard op {op!r}")
        except SchedulingError as error:
            connection.send(("err", type(error).__name__, str(error)))
        else:
            connection.send(("ok", payload))


def _error_type(name: str) -> type[SchedulingError]:
    """Resolve a marshalled error type name back to its class."""
    resolved = getattr(errors, name, None)
    if isinstance(resolved, type) and issubclass(resolved, SchedulingError):
        return resolved
    return SchedulingError


class ShardedSearchExecutor:
    """Phase-1 search over node partitions, byte-identical to serial.

    Splits a slot list into ``shards`` blocks by resource uid and runs
    the scan predicates per block — in worker processes when
    ``processes`` is true, otherwise in-process through the identical
    :class:`_ShardState` code path.  The find/commit/insert surface
    mirrors :class:`~repro.core.index.SlotIndex`, so the multi-pass
    scheme in :mod:`repro.core.search` drives either interchangeably.

    The default is in-process: a multi-pass search re-scans the same
    request predicates over and over, so after the first pass each shard
    scan is a filter over its memoized survivor set — microseconds of
    work that a pipe round-trip (~0.5 ms per find) would dwarf at any
    slot-list size (see docs/benchmarks.md, EXP-SHARD).  Worker
    processes are an explicit opt-in for workloads dominated by
    memo-*miss* sweeps (many distinct one-shot requests over a very
    large fleet), where each scan really does O(m / shards) predicate
    work that the cores can split.

    Use as a context manager or call :meth:`close`; worker processes are
    daemons, so a leak cannot outlive the interpreter, but an explicit
    shutdown keeps the fork count bounded during long runs.

    Attributes:
        shards: Number of partitions.
        last_hint_skips: Start-hint prune count of the most recent find
            with ``count_skips=True`` (summed over shards; matches the
            serial :meth:`SlotIndex.hint_skippable` value).
        shard_scan_seconds: Cumulative per-shard scan seconds, as
            measured inside each shard — the per-shard ``phase1.*``
            timing the instrumented search reports.
    """

    def __init__(
        self,
        slots: Iterable[Slot],
        shards: int,
        *,
        processes: bool | None = None,
    ) -> None:
        """Partition ``slots`` into ``shards`` blocks and start workers.

        Args:
            slots: The vacant-slot list (left untouched; rows are copied).
            shards: Number of partitions, >= 1.
            processes: Force worker processes on/off; ``None`` (default)
                stays in-process — see the class docstring for when
                processes pay off.
        """
        materialized = list(slots)
        self._resources: dict[int, Resource] = {
            slot.resource.uid: slot.resource for slot in materialized
        }
        partitions = partition_uids(self._resources, shards)
        self._owners = shard_owners(partitions)
        self.shards = shards
        self.last_hint_skips = 0
        self.shard_scan_seconds = [0.0] * shards
        self._hint_floor = float("inf")
        shard_rows: list[list[Row]] = [[] for _ in range(shards)]
        for slot in materialized:
            row: Row = (
                slot.start,
                slot.end,
                slot.resource.uid,
                slot.resource.performance,
                slot.price,
            )
            shard_rows[self._owners[row[2]]].append(row)
        if processes is None:
            processes = False
        self._states: list[_ShardState] | None = None
        self._connections: list[Connection] | None = None
        self._workers: list[Process] = []
        if processes:
            connections: list[Connection] = []
            for rows in shard_rows:
                parent, child = Pipe()
                worker = Process(target=_shard_worker, args=(child, rows), daemon=True)
                worker.start()
                child.close()
                connections.append(parent)
                self._workers.append(worker)
            self._connections = connections
        else:
            self._states = [_ShardState(rows) for rows in shard_rows]

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @property
    def uses_processes(self) -> bool:
        """Whether shard scans run in worker processes."""
        return self._connections is not None

    def close(self) -> None:
        """Stop worker processes; in-process mode is a no-op."""
        if self._connections is None:
            return
        connections, self._connections = self._connections, None
        for connection in connections:
            try:
                connection.send(("stop",))
                connection.recv()
            except (OSError, EOFError):
                pass
            connection.close()
        for worker in self._workers:
            worker.join()
        self._workers = []

    def __enter__(self) -> "ShardedSearchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker protocol                                                    #
    # ------------------------------------------------------------------ #

    def _receive(self, shard: int, connection: Connection) -> Any:
        try:
            reply = connection.recv()
        except EOFError:
            raise InvariantViolationError(
                f"shard {shard} worker died mid-operation"
            ) from None
        if reply[0] == "ok":
            return reply[1]
        raise _error_type(reply[1])(reply[2])

    def _call_one(self, shard: int, message: tuple[Any, ...]) -> Any:
        if self._connections is not None:
            self._connections[shard].send(message)
            return self._receive(shard, self._connections[shard])
        if self._states is None:
            raise InvariantViolationError("executor is closed")
        state = self._states[shard]
        op = message[0]
        if op == "scan":
            return state.scan(*message[1:])
        if op == "commit":
            state.commit(*message[1:])
            return None
        if op == "insert":
            state.insert(*message[1:])
            return None
        if op == "rows":
            return state.rows()
        raise InvalidRequestError(f"unknown shard op {op!r}")

    def _broadcast(self, message: tuple[Any, ...]) -> list[Any]:
        """Run one op on every shard; parallel in process mode."""
        if self._connections is not None:
            for connection in self._connections:
                connection.send(message)
            return [
                self._receive(shard, connection)
                for shard, connection in enumerate(self._connections)
            ]
        return [self._call_one(shard, message) for shard in range(self.shards)]

    def _scan(
        self,
        volume: float,
        min_performance: float,
        max_price: float | None,
        start_hint: float,
        count_skips: bool,
    ) -> list[list[SurvivorRow]]:
        replies = self._broadcast(
            ("scan", volume, min_performance, max_price, start_hint, count_skips)
        )
        streams: list[list[SurvivorRow]] = []
        skips = 0
        for shard, reply in enumerate(replies):
            survivors, shard_skips, seconds = reply
            streams.append(survivors)
            skips += shard_skips
            self.shard_scan_seconds[shard] += seconds
        self.last_hint_skips = skips
        return streams

    def _owner_of(self, uid: int) -> int:
        shard = self._owners.get(uid)
        if shard is None:
            # A resource first seen via insert (hot-swap replacement
            # node): route deterministically; contiguity of the initial
            # partition is irrelevant to correctness, only disjointness.
            shard = uid % self.shards
            self._owners[uid] = shard
        return shard

    def _slot_of(self, entry: Sequence[float]) -> Slot:
        return Slot(self._resources[int(entry[2])], entry[0], entry[1], entry[4])

    # ------------------------------------------------------------------ #
    # SlotIndex-equivalent surface                                       #
    # ------------------------------------------------------------------ #

    def find_alp_window(
        self,
        request: ResourceRequest,
        *,
        start_hint: float = NEG_INF,
        count_skips: bool = False,
    ) -> Window | None:
        """ALP forward scan over the merged survivor streams.

        Bit-for-bit equivalent to :meth:`SlotIndex.find_alp_window`: the
        workers apply the per-row predicates, the merge restores global
        ``(start, end, uid)`` order, and this loop replays the serial
        candidate accumulation unchanged.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        streams = self._scan(
            request.volume,
            request.min_performance,
            request.max_price,
            start_hint,
            count_skips,
        )
        node_count = request.node_count
        window_start = NEG_INF
        candidates: list[tuple[float, float, SurvivorRow]] = []
        for entry in heap_merge(*streams, key=_row_key):
            start = entry[0]
            if start > window_start:
                window_start = start
                candidates = [c for c in candidates if c[0] - start >= c[1]]
            candidates.append((entry[1], entry[5], entry))
            if len(candidates) == node_count:
                allocations = [
                    TaskAllocation(self._slot_of(c[2]), window_start, window_start + c[1])
                    for c in candidates
                ]
                return Window(request, allocations)
        return None

    def find_amp_window_at(
        self,
        request: ResourceRequest,
        *,
        budget: float | None = None,
        start_hint: float = NEG_INF,
        count_skips: bool = False,
    ) -> tuple[Window, float] | None:
        """AMP forward scan; returns ``(window, accepting event time)``.

        Bit-for-bit equivalent to :meth:`SlotIndex.find_amp_window_at`,
        including the cheapest-subset ranking, the ``cheapest_total``
        re-summation caching, and the float-addition order of the budget
        test.
        """
        if budget is None:
            budget = request.budget
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        streams = self._scan(
            request.volume, request.min_performance, None, start_hint, count_skips
        )
        node_count = request.node_count
        window_start = NEG_INF
        candidates: list[tuple[float, float, float, int, SurvivorRow]] = []
        ranked: list[tuple[float, int, float, SurvivorRow]] = []
        cheapest_total: float | None = None
        for entry in heap_merge(*streams, key=_row_key):
            end = entry[1]
            runtime = entry[5]
            start = entry[0]
            if start > window_start:
                window_start = start
                alive = [c for c in candidates if c[0] - start >= c[1]]
                if len(alive) != len(candidates):
                    for expired in candidates:
                        if expired[0] - start < expired[1]:
                            if _remove_ranked(ranked, expired[2], expired[3]) < node_count:
                                cheapest_total = None
                    candidates = alive
            uid = entry[2]
            cost = entry[4] * runtime
            candidates.append((end, runtime, cost, uid, entry))
            position = bisect_left(ranked, (cost, uid), key=_rank_key)
            ranked.insert(position, (cost, uid, runtime, entry))
            if position < node_count:
                cheapest_total = None
            if len(candidates) < node_count or start < start_hint:
                continue
            if cheapest_total is None:
                total = 0.0
                for k in range(node_count):
                    total += ranked[k][0]
                cheapest_total = total
            if cheapest_total <= budget:
                chosen = ranked[:node_count]
                sync = max(item[3][0] for item in chosen)
                allocations = [
                    TaskAllocation(self._slot_of(item[3]), sync, sync + item[2])
                    for item in chosen
                ]
                return Window(request, allocations), start
        return None

    def commit(self, window: Window) -> None:
        """Subtract the window's occupied spans on the owning shards.

        Raises:
            SlotListError: If some source slot is no longer present —
                same contract as :meth:`SlotIndex.commit`.
        """
        if self._connections is not None:
            involved: list[int] = []
            for allocation in window.allocations:
                source = allocation.source
                shard = self._owner_of(source.resource.uid)
                self._connections[shard].send(
                    (
                        "commit",
                        (source.start, source.end, source.resource.uid),
                        allocation.start,
                        allocation.end,
                        source.price,
                        source.resource.name,
                    )
                )
                involved.append(shard)
            failure: SchedulingError | None = None
            for shard in involved:
                try:
                    self._receive(shard, self._connections[shard])
                except SchedulingError as error:
                    if failure is None:
                        failure = error
            if failure is not None:
                raise failure
            return
        for allocation in window.allocations:
            source = allocation.source
            self._call_one(
                self._owner_of(source.resource.uid),
                (
                    "commit",
                    (source.start, source.end, source.resource.uid),
                    allocation.start,
                    allocation.end,
                    source.price,
                    source.resource.name,
                ),
            )

    def insert(self, slot: Slot) -> None:
        """Re-insert vacant time (outage repair, hot-swap revocation).

        Clamps subsequent start hints exactly like
        :meth:`SlotIndex.insert`.

        Raises:
            SlotListError: If the slot overlaps an existing slot of the
                same resource.
        """
        uid = slot.resource.uid
        self._resources.setdefault(uid, slot.resource)
        row: Row = (slot.start, slot.end, uid, slot.resource.performance, slot.price)
        self._call_one(self._owner_of(uid), ("insert", row, slot.resource.name))
        if slot.start < self._hint_floor:
            self._hint_floor = slot.start

    def slot_list(self) -> SlotList:
        """Materialise the merged shard state as a plain :class:`SlotList`."""
        replies = self._broadcast(("rows",))
        slots: list[Slot] = []
        for reply in replies:
            for row in reply:
                slots.append(self._slot_of(row))
        return SlotList(slots)

    def hint_skippable(self, start_hint: float) -> int:
        """Serial :meth:`SlotIndex.hint_skippable`, summed over shards."""
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        if start_hint == NEG_INF:
            return 0
        total = 0
        for reply in self._broadcast(("scan", 0.0, NEG_INF, None, start_hint, True)):
            total += int(reply[1])
        return total


def _remove_ranked(
    ranked: list[tuple[float, int, float, SurvivorRow]], cost: float, uid: int
) -> int:
    """Drop the ``(cost, uid)`` entry from the ranked list; return its position."""
    position = bisect_left(ranked, (cost, uid), key=_rank_key)
    while position < len(ranked):
        entry = ranked[position]
        if entry[0] == cost and entry[1] == uid:
            del ranked[position]
            return position
        position += 1
    raise SlotListError(f"ranked candidate (cost={cost!r}, uid={uid!r}) missing")
