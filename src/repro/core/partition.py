"""Deterministic node-set partitioning for the sharded phase-1 search.

The partition-parallel search (:mod:`repro.core.shard_search`) splits the
vacant-slot list by *resource*, hands each block of nodes to one worker,
and merges the filtered scan streams back into the global scan order.
For the merged result to be byte-identical to the serial scan, the
partition must satisfy three properties, all enforced by the property
suite in ``tests/test_properties.py``:

* **Disjoint cover** — every node uid lands in exactly one block, so no
  slot is scanned twice and none is dropped.
* **Stable ordering** — uids are sorted inside each block and across
  blocks, so concatenating the blocks reproduces the sorted uid set and
  the shard→rows routing is independent of input iteration order.
* **Seed independence** — the split is a pure function of the uid set
  and the shard count.  No RNG is consulted (``repro-lint`` rule RPR001
  would reject one anyway), so two processes partitioning the same node
  set always agree, which is what lets a revocation event route a
  re-inserted slot to the worker that owns its node.

Blocks are contiguous runs of the sorted uid set, balanced to within one
uid.  When there are fewer nodes than shards the trailing blocks are
empty — a legal (if useless) partition, so ``shards=7`` over a 5-node VO
works and simply leaves two workers idle.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.errors import InvalidRequestError, InvariantViolationError

__all__ = ["partition_uids", "shard_owners"]


def partition_uids(uids: Iterable[int], shards: int) -> list[tuple[int, ...]]:
    """Split a node-uid set into ``shards`` disjoint ordered blocks.

    Args:
        uids: Node uids to partition; duplicates collapse (a uid names
            one node however many slots it publishes).
        shards: Number of blocks to produce.

    Returns:
        Exactly ``shards`` tuples of uids, each sorted ascending, whose
        concatenation is the sorted deduplicated input.  Block sizes
        differ by at most one (larger blocks first).

    Raises:
        InvalidRequestError: If ``shards`` is not at least 1.
    """
    if shards < 1:
        raise InvalidRequestError(f"shards must be >= 1, got {shards!r}")
    ordered = sorted(set(uids))
    base, extra = divmod(len(ordered), shards)
    blocks: list[tuple[int, ...]] = []
    cursor = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(tuple(ordered[cursor : cursor + size]))
        cursor += size
    return blocks


def shard_owners(partitions: Sequence[Sequence[int]]) -> dict[int, int]:
    """Invert a partition into its ``uid → shard index`` routing map.

    Raises:
        InvariantViolationError: If some uid appears in two blocks — the
            input was not a partition.
    """
    owners: dict[int, int] = {}
    for index, block in enumerate(partitions):
        for uid in block:
            if uid in owners:
                raise InvariantViolationError(
                    f"uid {uid} owned by shards {owners[uid]} and {index}"
                )
            owners[uid] = index
    return owners
