"""Timeline diagnostics over slot lists.

Generator calibration and environment debugging need to see a slot list
as a *supply curve over time*, not a list: how many slots (or how much
aggregate performance) is available at each instant, and how many of
them could actually host a given request.  Section 5 justifies its gap
parameters with exactly such a claim — "at each moment of time we have
at least five different slots ready for utilization" — which the tests
verify with these tools.

All profiles are step functions represented as breakpoint lists
``[(t0, v0), (t1, v1), ...]``: the value is ``v_i`` on ``[t_i, t_{i+1})``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import SlotListError
from repro.core.job import ResourceRequest
from repro.core.slot import Slot, SlotList

__all__ = ["StepFunction", "concurrency_profile", "alive_profile", "supply_summary", "SupplySummary"]


@dataclass(frozen=True)
class StepFunction:
    """A right-continuous step function as sorted breakpoints.

    Attributes:
        breakpoints: ``(time, value)`` pairs, time strictly increasing;
            the function holds ``value`` from that time until the next
            breakpoint and is 0 before the first.
    """

    breakpoints: tuple[tuple[float, float], ...]

    def at(self, time: float) -> float:
        """Value at ``time`` (0 before the first breakpoint)."""
        value = 0.0
        for point_time, point_value in self.breakpoints:
            if point_time > time:
                break
            value = point_value
        return value

    def minimum_on(self, start: float, end: float) -> float:
        """Smallest value attained anywhere on ``[start, end)``."""
        if end <= start:
            raise SlotListError(f"empty interval [{start!r}, {end!r})")
        lowest = self.at(start)
        for point_time, point_value in self.breakpoints:
            if start < point_time < end:
                lowest = min(lowest, point_value)
        return lowest

    def maximum(self) -> float:
        """Largest value over the whole function (0 when empty)."""
        if not self.breakpoints:
            return 0.0
        return max(value for _, value in self.breakpoints)


def _profile(slot_list: SlotList, weight: Callable[[Slot], float], active_until: Callable[[Slot], float]) -> StepFunction:
    """Generic sweep-line profile: Σ weight(s) over slots active at t."""
    events: dict[float, float] = {}
    for slot in slot_list:
        until = active_until(slot)
        if until <= slot.start:
            continue
        events[slot.start] = events.get(slot.start, 0.0) + weight(slot)
        events[until] = events.get(until, 0.0) - weight(slot)
    breakpoints = []
    value = 0.0
    for time in sorted(events):
        value += events[time]
        breakpoints.append((time, value))
    return StepFunction(tuple(breakpoints))


def concurrency_profile(slot_list: SlotList) -> StepFunction:
    """Number of vacant slots covering each instant."""
    return _profile(slot_list, weight=lambda slot: 1.0, active_until=lambda slot: slot.end)


def alive_profile(slot_list: SlotList, request: ResourceRequest) -> StepFunction:
    """Number of slots *alive for* ``request`` at each instant.

    A slot is alive at ``t`` when a task of the request starting at ``t``
    fits (suitability conditions 2°a/2°b plus the expiry rule): between
    ``slot.start`` and ``slot.end − runtime``.  Price is ignored — this
    is the supply AMP sees.  The request is co-allocatable at ``t`` iff
    the profile is ≥ ``request.node_count`` there.
    """
    def active_until(slot: Slot) -> float:
        if not request.admits_performance(slot.resource):
            return slot.start  # never active
        return slot.end - request.runtime_on(slot.resource)

    # ``active_until`` is exclusive in _profile, but aliveness is closed
    # on the right (a task may start exactly at end − runtime); nudging
    # by nothing keeps half-open semantics consistent with the rest of
    # the library and errs on the conservative side.
    return _profile(slot_list, weight=lambda slot: 1.0, active_until=active_until)


@dataclass(frozen=True)
class SupplySummary:
    """Headline numbers of a slot list's supply curve.

    Attributes:
        peak_concurrency: Maximum simultaneously vacant slots.
        min_concurrency: Minimum over the busy span (first slot start to
            the earliest profile drop-to-zero or last start).
        total_vacant_time: Aggregate vacant slot time.
        mean_performance: Supply-weighted mean node performance.
    """

    peak_concurrency: int
    min_concurrency: int
    total_vacant_time: float
    mean_performance: float


def supply_summary(slot_list: SlotList, *, warmup_starts: int = 0) -> SupplySummary:
    """Summarize a slot list's supply curve.

    ``min_concurrency`` is evaluated over the span where the generator
    claims continuous supply: from the ``warmup_starts``-th slot's start
    time to the last slot's start (after that, slots only drain).  A
    slot list necessarily ramps up from one slot, so steady-state claims
    — like Section 5's "at least five slots ready at each moment" —
    should be checked with a small warmup.

    Raises:
        SlotListError: For an empty list or an out-of-range warmup.
    """
    if len(slot_list) == 0:
        raise SlotListError("supply summary of an empty slot list is undefined")
    if not 0 <= warmup_starts < len(slot_list):
        raise SlotListError(
            f"warmup_starts must be within [0, {len(slot_list)}), got {warmup_starts!r}"
        )
    profile = concurrency_profile(slot_list)
    first_start = slot_list[warmup_starts].start
    last_start = max(slot.start for slot in slot_list)
    if last_start > first_start:
        minimum = profile.minimum_on(first_start, last_start)
    else:
        minimum = profile.at(first_start)
    total_time = slot_list.total_vacant_time()
    weighted_performance = sum(
        slot.length * slot.resource.performance for slot in slot_list
    )
    return SupplySummary(
        peak_concurrency=int(profile.maximum()),
        min_concurrency=int(minimum),
        total_vacant_time=total_time,
        mean_performance=weighted_performance / total_time if total_time else 0.0,
    )
