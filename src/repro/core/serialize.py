"""JSON serialization of the core data model.

Scheduling scenarios (environments, batches, schedules) need to be
saved, diffed, and shared; this module round-trips every core value
object through plain JSON-ready dictionaries:

* resources, slots, slot lists;
* requests, jobs, batches;
* windows (with their source slots) and job → window assignments.

Resource identity is preserved across a document: encoding interns each
resource once under its uid, and decoding reuses one ``Resource``
instance per uid, so slot lists and windows referring to the same node
keep referring to the same node after a round trip.

The format is versioned (``"format": "repro/1"``); decoding rejects
unknown versions loudly rather than guessing.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.core.errors import InvalidRequestError
from repro.core.job import Batch, Job, ResourceRequest
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList
from repro.core.window import TaskAllocation, Window

__all__ = [
    "FORMAT",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
    "Scenario",
]

#: Document format tag; bump on breaking layout changes.
FORMAT = "repro/1"


def _finite(value: float, what: str) -> float:
    """Validate that a numeric field is finite; returns it as ``float``.

    ``json.dumps`` happily emits ``NaN`` and ``Infinity`` (non-standard
    JSON that many parsers reject), and a NaN slot time or price would
    silently corrupt every downstream comparison.  Both encoding and
    decoding funnel numeric fields through this guard so a bad value is
    rejected loudly at the serialization boundary, not discovered as a
    nonsense schedule later.

    Raises:
        InvalidRequestError: When the value is NaN or infinite (or not a
            number at all).
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise InvalidRequestError(f"{what} must be a number, got {value!r}") from None
    if not math.isfinite(value):
        raise InvalidRequestError(f"{what} must be finite, got {value!r}")
    return value


class Scenario:
    """A serializable bundle: slot list + batch + optional assignment.

    Attributes:
        slots: The vacant-slot list.
        batch: The job batch.
        assignment: Optional job → window mapping (a committed schedule).
    """

    __slots__ = ("slots", "batch", "assignment")

    def __init__(
        self,
        slots: SlotList,
        batch: Batch,
        assignment: dict[Job, Window] | None = None,
    ) -> None:
        self.slots = slots
        self.batch = batch
        self.assignment = assignment or {}


# --------------------------------------------------------------------- #
# Encoding                                                              #
# --------------------------------------------------------------------- #


class _Encoder:
    def __init__(self) -> None:
        self.resources: dict[int, dict[str, Any]] = {}

    def resource(self, resource: Resource) -> int:
        if resource.uid not in self.resources:
            self.resources[resource.uid] = {
                "uid": resource.uid,
                "name": resource.name,
                "performance": _finite(resource.performance, f"resource {resource.name!r} performance"),
                "price": _finite(resource.price, f"resource {resource.name!r} price"),
            }
        return resource.uid

    def slot(self, slot: Slot) -> dict[str, Any]:
        return {
            "resource": self.resource(slot.resource),
            "start": _finite(slot.start, "slot start"),
            "end": _finite(slot.end, "slot end"),
            "price": _finite(slot.price, "slot price"),
        }

    def request(self, request: ResourceRequest) -> dict[str, Any]:
        if math.isnan(request.max_price):
            raise InvalidRequestError("request max_price must not be NaN")
        return {
            "node_count": request.node_count,
            "volume": _finite(request.volume, "request volume"),
            "min_performance": _finite(request.min_performance, "request min_performance"),
            "max_price": None if math.isinf(request.max_price) else request.max_price,
        }

    def job(self, job: Job) -> dict[str, Any]:
        return {
            "uid": job.uid,
            "name": job.name,
            "priority": job.priority,
            "request": self.request(job.request),
        }

    def window(self, window: Window) -> dict[str, Any]:
        return {
            "request": self.request(window.request),
            "allocations": [
                {
                    "source": self.slot(allocation.source),
                    "start": _finite(allocation.start, "allocation start"),
                    "end": _finite(allocation.end, "allocation end"),
                }
                for allocation in window.allocations
            ],
        }


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Encode a scenario as a JSON-ready dictionary."""
    encoder = _Encoder()
    slots = [encoder.slot(slot) for slot in scenario.slots]
    jobs = [encoder.job(job) for job in scenario.batch]
    assignment = [
        {"job": job.uid, "window": encoder.window(window)}
        for job, window in scenario.assignment.items()
    ]
    return {
        "format": FORMAT,
        "resources": list(encoder.resources.values()),
        "slots": slots,
        "jobs": jobs,
        "assignment": assignment,
    }


# --------------------------------------------------------------------- #
# Decoding                                                              #
# --------------------------------------------------------------------- #


def _decode_request(payload: dict[str, Any]) -> ResourceRequest:
    max_price = payload.get("max_price")
    return ResourceRequest(
        node_count=int(payload["node_count"]),
        volume=_finite(payload["volume"], "request volume"),
        min_performance=_finite(payload["min_performance"], "request min_performance"),
        max_price=math.inf if max_price is None else _finite(max_price, "request max_price"),
    )


def scenario_from_dict(data: dict[str, Any]) -> Scenario:
    """Decode a scenario produced by :func:`scenario_to_dict`.

    Raises:
        InvalidRequestError: On an unknown format tag or references to
            undeclared resources/jobs.
    """
    if data.get("format") != FORMAT:
        raise InvalidRequestError(
            f"unsupported scenario format {data.get('format')!r}; expected {FORMAT!r}"
        )
    resources: dict[int, Resource] = {}
    for payload in data.get("resources", []):
        resource = Resource(
            name=str(payload["name"]),
            performance=_finite(payload["performance"], "resource performance"),
            price=_finite(payload["price"], "resource price"),
            uid=int(payload["uid"]),
        )
        resources[resource.uid] = resource

    def resource_of(uid: int) -> Resource:
        try:
            return resources[uid]
        except KeyError:
            raise InvalidRequestError(f"slot references undeclared resource uid {uid}") from None

    def decode_slot(payload: dict[str, Any]) -> Slot:
        return Slot(
            resource_of(int(payload["resource"])),
            _finite(payload["start"], "slot start"),
            _finite(payload["end"], "slot end"),
            price=_finite(payload["price"], "slot price"),
        )

    slots = SlotList(decode_slot(payload) for payload in data.get("slots", []))
    jobs_by_uid: dict[int, Job] = {}
    jobs = []
    for payload in data.get("jobs", []):
        job = Job(
            _decode_request(payload["request"]),
            name=str(payload["name"]),
            priority=int(payload["priority"]),
            uid=int(payload["uid"]),
        )
        jobs_by_uid[job.uid] = job
        jobs.append(job)
    batch = Batch(jobs)

    assignment: dict[Job, Window] = {}
    for entry in data.get("assignment", []):
        job_uid = int(entry["job"])
        if job_uid not in jobs_by_uid:
            raise InvalidRequestError(
                f"assignment references undeclared job uid {job_uid}"
            )
        window_payload = entry["window"]
        request = _decode_request(window_payload["request"])
        allocations = [
            TaskAllocation(
                decode_slot(item["source"]),
                float(item["start"]),
                float(item["end"]),
            )
            for item in window_payload["allocations"]
        ]
        assignment[jobs_by_uid[job_uid]] = Window(request, allocations)
    return Scenario(slots=slots, batch=batch, assignment=assignment)


# --------------------------------------------------------------------- #
# File helpers                                                          #
# --------------------------------------------------------------------- #


def save_scenario(scenario: Scenario, path: str | Path) -> Path:
    """Write a scenario to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario written by :func:`save_scenario`."""
    return scenario_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
