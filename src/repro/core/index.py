"""Incrementally-maintained slot index — the fast phase-1 search path.

:class:`SlotIndex` holds the ordered vacant-slot list as parallel
primitive *columns* (start, end, resource uid, performance, price in
``array('d')``/``array('q')`` storage — :class:`~repro.core.columns.ColumnStore`),
so the ALP/AMP forward scans run over local floats instead of chasing
``Slot → Resource`` attribute chains, and window subtraction locates the
carved slot by bisection instead of a linear rescan.  The index holds no
``Slot`` objects at all: like the sharded executor, it keeps the only
``uid → Resource`` map and reconstructs value-equal ``Slot`` objects
exactly where one leaves the index — a found window's source slots,
:meth:`subtract`'s return value, :meth:`slot_list` — so the hot scan and
mutation paths touch nothing but primitive tuples.  The index is built
once per alternative search and maintained *incrementally* across the
whole multi-pass scheme: every committed window only touches the
``O(log m)`` neighbourhood of its source rows.

On top of the column layout the index memoizes the request-*static*
part of the scan predicates: for each ``(volume, min_performance,
max_price)`` key the surviving rows — with their precomputed runtimes —
are built once by a vectorized mask over the columns
(:meth:`ColumnStore.survivors`) and then maintained incrementally
through ``commit``/``insert``/``subtract``, so the repeated passes of
one alternative search only re-apply the cheap dynamic start-hint
predicate over the pre-filtered survivors.  This is the same memo
scheme the per-shard states of
:class:`~repro.core.shard_search.ShardedSearchExecutor` use (both share
the kernels in :mod:`repro.core.columns`), applied to the serial path.

The finders here are drop-in equivalents of :func:`repro.core.alp.find_window`
and :func:`repro.core.amp.find_window`: they perform the same suitability
tests, the same candidate-expiry filter, and the same budget summation in
the same float-operation order, so the produced windows are bit-for-bit
identical to the reference scans (``tests/test_reference_oracles.py``
enforces this differentially, ``tests/test_properties.py`` checks the
model invariants).  Hoisting the static predicates out of the scan loop
is order-safe because every skip condition is a pure per-row predicate —
the argument (and the test suite) that already underwrites the sharded
path.

Two assumptions, both guaranteed by the paper's model and checked by the
test suite, let the index go beyond the reference implementation:

* **No same-resource overlap.**  Vacant slots of one resource never share
  processor time (``SlotList.check_no_overlap``), so the slot containing
  an allocated span is unique and can be located by bisection.
* **Monotone window starts.**  Slot subtraction only removes vacant time,
  so for a fixed request the earliest feasible window start never moves
  backwards across the passes of one alternative search.  The optional
  ``start_hint`` (the event time of the previous window found for the
  same request on a superset of this list) lets the scan skip candidates
  that cannot survive to any feasible event, and — for AMP — skip the
  cheapest-subset budget checks at events that are provably infeasible.

The monotonicity argument holds only while slots are *subtracted*.
Mutations that return vacant time — hot-swap recovery re-opening a
revoked window, outage cancellation releasing reservations — can make
earlier events feasible again, so :meth:`SlotIndex.insert` records the
smallest re-inserted slot start and every finder clamps the caller's
``start_hint`` to it.  Events before a re-inserted slot's start are
untouched by the insertion and stay infeasible, so the clamped hint is
still safe; events at or past it are re-scanned.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator

from repro.core.columns import ColumnStore, Row, SurvivorRow, expiry_bound
from repro.core.errors import SlotListError
from repro.core.job import ResourceRequest
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList
from repro.core.window import Window, carved_allocation

__all__ = ["SlotIndex"]

NEG_INF = float("-inf")
INF = float("inf")

# Memoized survivor layout: a plain repro.core.columns.SurvivorRow —
# ``(start, end, uid, performance, price, runtime)``.  The leading
# triple is exactly ``SlotList``'s sort key, so memo order and scan
# order coincide with the reference list; no ``Slot`` is attached, so a
# vectorized rebuild is a single C-level ``zip`` over the column
# buffers and the scans append the memo tuples themselves as
# candidates instead of building per-row wrappers.

_new = object.__new__
_set_field = object.__setattr__


def _carve_slot(resource: Resource, start: float, end: float, price: float) -> Slot:
    """A :class:`Slot` without the dataclass ``__init__``.

    Every slot the index materialises is backed by a row that already
    holds the model invariants (non-empty span, validated price), so
    the hot paths skip the frozen-dataclass machinery and its
    re-validation.
    """
    slot = _new(Slot)
    _set_field(slot, "resource", resource)
    _set_field(slot, "start", start)
    _set_field(slot, "end", end)
    _set_field(slot, "price", price)
    return slot

#: Entries a scan must have skipped as hint-dead before a find bothers
#: rewriting its memo; below this the list-copy costs more than the
#: skips it saves.
_COMPACT_MIN_DEAD = 32

#: A memo more than this many journal ops behind is rebuilt vectorized
#: instead of replayed: a numpy mask over all rows costs about as much
#: as replaying a few dozen ops at python level, and rebuilding also
#: resets the entry list's insertion churn.
_REPLAY_MAX = 24

#: One journalled mutation: the ``(start, end, uid)`` key of a removed
#: row (``None`` for pure insertion), the removed row's performance and
#: price — so replay can decide by the static predicates alone whether
#: a memo could even contain the row, skipping the bisect probe for the
#: (common) ops that touch rows outside the memo's survivor set — plus
#: the replacement rows carved from it.
_IndexOp = tuple[
    "tuple[float, float, int] | None", float, float, "list[Row]"
]

#: Journal length that triggers a trim (evict far-behind memos, drop the
#: unreachable prefix) so a long-lived index cannot grow it unboundedly.
_JOURNAL_TRIM = 1024


class _Memo:
    """One survivor memo plus its compaction floor and journal cursor.

    ``entries`` are the static-predicate survivors in scan order.
    Finds drop entries that fell behind the monotone start hint
    (``end <= hint`` — the tier-1 prune, decided on the *columns* for
    instrumentation, so dropping memo entries never changes a reported
    count); ``floor`` records the largest hint whose dead entries were
    removed.  A later scan with a smaller effective hint (a second job
    sharing the request key, or a post-:meth:`SlotIndex.insert` clamp)
    would need those entries back, so it rebuilds from the columns.

    ``synced`` is the index into the owning :class:`SlotIndex`'s
    mutation journal up to which this memo is current.  Mutations no
    longer touch memos eagerly — each memo replays its pending journal
    tail on next access — so memos of requests that finished searching
    cost nothing while other requests commit.
    """

    __slots__ = ("entries", "floor", "synced")

    def __init__(self, entries: list[SurvivorRow], synced: int) -> None:
        self.entries = entries
        self.floor = NEG_INF
        self.synced = synced


class SlotIndex:
    """Sorted, incrementally-updated view of a vacant-slot list."""

    __slots__ = ("_columns", "_resources", "_memos", "_ops", "_hint_floor")

    def __init__(self, slots: Iterable[Slot] = ()) -> None:
        materialized = list(slots)
        # The only uid → Resource map; workers of the sharded executor
        # and the rows here exchange primitive tuples only.
        self._resources: dict[int, Resource] = {
            slot.resource.uid: slot.resource for slot in materialized
        }
        self._columns = ColumnStore(
            (slot.start, slot.end, slot.resource.uid, slot.resource.performance, slot.price)
            for slot in materialized
        )
        # (volume, min_performance, max_price) → rows surviving the
        # static predicates, in scan order.  Built vectorized on first
        # use, then kept current lazily: each commit/insert/subtract
        # appends to the op journal and a memo replays its pending tail
        # on next access (or rebuilds if far behind); the dynamic
        # start-hint predicate is applied per scan.
        self._memos: dict[tuple[float, float, float | None], _Memo] = {}
        self._ops: list[_IndexOp] = []
        # Smallest start among slots re-inserted after construction; any
        # caller-supplied start_hint is clamped to it (see module
        # docstring).  +inf while the index has only ever been subtracted
        # from, i.e. hints pass through unchanged.
        self._hint_floor = float("inf")

    # ------------------------------------------------------------------ #
    # Container protocol                                                 #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self._materialize())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlotIndex({len(self._columns)} slots)"

    def _slot_of(self, entry: "SurvivorRow | Row") -> Slot:
        """Value-equal :class:`Slot` for one row/survivor tuple."""
        return _carve_slot(self._resources[entry[2]], entry[0], entry[1], entry[4])

    def _materialize(self) -> list[Slot]:
        resources = self._resources
        columns = self._columns
        return [
            _carve_slot(resources[uid], start, end, price)
            for start, end, uid, price in zip(
                columns.starts, columns.ends, columns.uids, columns.prices
            )
        ]

    def slot_list(self) -> SlotList:
        """Materialise the current state as a plain :class:`SlotList`.

        The returned slots are value-equal reconstructions from the
        rows (the index keeps no ``Slot`` objects), exactly like the
        sharded executor's :meth:`~ShardedSearchExecutor.slot_list`.
        """
        return SlotList(self._materialize())

    def hint_skippable(self, start_hint: float) -> int:
        """Rows the finders' ``start_hint`` fast path skips outright.

        Counts the rows failing the first scan condition
        (``end <= start_hint``, after the :meth:`insert` clamp) — the
        tier-1 monotone start-hint prune.  The finders apply a *second*
        hint-derived prune (``end - start_hint < runtime``) to rows that
        survive the static predicates; :meth:`hint_prunes` reports both
        tiers.  ``O(m)`` vectorized; only called on instrumented runs
        with decision logging enabled, never on the hot path.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        if start_hint == NEG_INF:
            return 0
        return self._columns.count_end_at_or_before(start_hint)

    def hint_prunes(
        self,
        request: ResourceRequest,
        *,
        start_hint: float,
        check_price: bool = True,
    ) -> tuple[int, int]:
        """Both start-hint prune tiers for one request's scan.

        The finders prune against the hint twice, at different depths:

        * **tier 1** — ``end <= start_hint``: the row cannot survive to
          any event at or past the hint.  Applied to *every* row before
          the static predicates; this is :meth:`hint_skippable`.
        * **tier 2** — ``end - start_hint < runtime``: the row passes
          the static predicates (performance, price cap, slot length)
          but cannot fit the request's runtime between the hint and its
          end.  Only statically-feasible rows reach this test, so the
          two tiers never double-count a row.

        Returns ``(tier1, tier2)`` after the :meth:`insert` hint clamp;
        ``(0, 0)`` for an unset hint.  ``check_price=False`` mirrors the
        AMP scan, which has no per-slot price cap.  Only called on
        instrumented runs with decision logging enabled.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        if start_hint == NEG_INF:
            return (0, 0)
        tier1 = self._columns.count_end_at_or_before(start_hint)
        max_price = request.max_price if check_price else None
        memo = self._survivors(
            request.volume, request.min_performance, max_price, start_hint
        )
        tier2 = sum(
            1
            for entry in memo.entries
            if entry[1] > start_hint and entry[1] - start_hint < entry[5]
        )
        return (tier1, tier2)

    # ------------------------------------------------------------------ #
    # Survivor memos                                                     #
    # ------------------------------------------------------------------ #

    def _survivors(
        self,
        volume: float,
        min_performance: float,
        max_price: float | None,
        hint: float = NEG_INF,
    ) -> _Memo:
        """The static-predicate survivor memo for one request key.

        ``hint`` is the caller's *effective* (post-clamp) start hint; a
        memo compacted past it is rebuilt vectorized from the columns so
        that every entry a scan at ``hint`` may need is present.  A memo
        that fell more than :data:`_REPLAY_MAX` journal ops behind is
        likewise rebuilt; otherwise the pending ops are replayed against
        it, producing exactly the entry set eager maintenance would have
        (same scalar kernel, same insertion order).
        """
        key = (volume, min_performance, max_price)
        memo = self._memos.get(key)
        ops = self._ops
        total_ops = len(ops)
        if (
            memo is None
            or hint < memo.floor
            or total_ops - memo.synced > _REPLAY_MAX
        ):
            # Rebuild already filtered to the scan's hint: entries with
            # ``end <= hint`` are tier-1 dead for this and (by hint
            # monotonicity) every future scan of this memo, so they are
            # dropped vectorized and ``hint`` becomes the floor — the
            # same state compaction would eventually reach, minus the
            # churn of re-attaching and re-skipping them.
            entries, _positions = self._columns.survivors(
                volume, min_performance, max_price, hint
            )
            if memo is None:
                memo = _Memo(entries, total_ops)
                self._memos[key] = memo
            else:
                memo.entries = entries
                memo.synced = total_ops
            memo.floor = hint
        elif memo.synced != total_ops:
            entries = memo.entries
            for op_key, op_performance, op_price, replacements in ops[memo.synced:]:
                # Probes and insertions compare the entry tuples
                # directly — the leading (start, end, uid) triple is
                # unique per row, so plain C tuple comparison decides
                # on the triple, and the 3-tuple op key sorts
                # immediately before its full entry.  A removed row
                # that fails the memo's static predicates cannot be
                # among the entries (they are exactly the static
                # survivors), so the probe is skipped outright.
                if op_key is not None and (
                    op_performance >= min_performance
                    and (max_price is None or op_price <= max_price)
                    and op_key[1] - op_key[0] >= volume / op_performance
                ):
                    position = bisect_left(entries, op_key)
                    if position < len(entries):
                        entry = entries[position]
                        if (
                            entry[0] == op_key[0]
                            and entry[1] == op_key[1]
                            and entry[2] == op_key[2]
                        ):
                            del entries[position]
                for row in replacements:
                    # Inlined scalar static_survivor kernel (same float
                    # ops, same order as the vectorized mask).
                    performance = row[3]
                    if performance < min_performance:
                        continue
                    if max_price is not None and row[4] > max_price:
                        continue
                    runtime = volume / performance
                    start, end = row[0], row[1]
                    if end - start < runtime:
                        continue
                    insort(
                        entries,
                        (
                            start,
                            end,
                            row[2],
                            performance,
                            row[4],
                            runtime,
                            expiry_bound(end, runtime),
                        ),
                    )
            memo.synced = total_ops
        return memo

    @staticmethod
    def _compact(memo: _Memo, hint: float, dead: int, scanned: int) -> None:
        """Drop the tier-1 hint-dead entries a scan just skipped.

        ``dead`` of the first ``scanned`` entries failed ``end > hint``;
        by hint monotonicity they fail every future scan of this memo
        too (a smaller hint forces a rebuild via ``floor``), so the scan
        rewrites its prefix without them once the copy pays for itself.
        """
        if dead >= _COMPACT_MIN_DEAD and dead * 2 >= scanned:
            entries = memo.entries
            entries[:scanned] = [
                entry for entry in entries[:scanned] if entry[1] > hint
            ]
            if hint > memo.floor:
                memo.floor = hint

    def _journal(self, op: _IndexOp) -> None:
        """Append one mutation to the journal, trimming when it grows.

        Trimming evicts memos that have fallen behind by more than
        :data:`_REPLAY_MAX` ops — they would rebuild on next access
        anyway — after which every surviving memo's cursor is past the
        journal prefix, which can then be dropped.  Keeps a long-lived
        index (grid-layer subtract/insert traffic with no searches) at
        bounded memory.
        """
        ops = self._ops
        ops.append(op)
        if len(ops) >= _JOURNAL_TRIM:
            cutoff = len(ops) - _REPLAY_MAX
            memos = self._memos
            for key in [k for k, m in memos.items() if m.synced < cutoff]:
                del memos[key]
            base = min((m.synced for m in memos.values()), default=len(ops))
            if base:
                del ops[:base]
                for memo in memos.values():
                    memo.synced -= base

    # ------------------------------------------------------------------ #
    # Window search                                                      #
    # ------------------------------------------------------------------ #

    def find_alp_window(
        self,
        request: ResourceRequest,
        *,
        check_price: bool = True,
        start_hint: float = NEG_INF,
    ) -> Window | None:
        """ALP forward scan over the index (paper steps 1°-5°).

        Equivalent to :func:`repro.core.alp.find_window` on the same slot
        list.  ``start_hint`` may be set to the start of a window
        previously found for the *same request* on a superset of this
        list; candidates that cannot survive to any event at or past the
        hint are skipped (the result is unchanged by monotonicity).  If
        vacant time was re-inserted (:meth:`insert`) the hint is clamped
        to the earliest re-inserted start, so stale hints never skip
        windows the new vacancy makes feasible.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        node_count = request.node_count
        max_price = request.max_price if check_price else None
        memo = self._survivors(
            request.volume, request.min_performance, max_price, start_hint
        )
        survivors = memo.entries
        window_start = NEG_INF
        dead = 0
        # Candidates are the memo tuples themselves, in scan insertion
        # order — the same order ForwardScan.candidates holds; a slot
        # is only materialised for the accepted window.  ``min_bound``
        # is the smallest per-candidate expiry bound
        # (:func:`~repro.core.columns.expiry_bound`): events below it
        # provably expire nobody, so the per-event filter — whose exact
        # ``end - start >= runtime`` comparisons are unchanged when it
        # does run — is skipped there.
        candidates: list[SurvivorRow] = []
        min_bound = INF
        for scanned, entry in enumerate(survivors, 1):
            end = entry[1]
            if end <= start_hint:  # cannot survive to any event >= hint
                dead += 1
                continue
            runtime = entry[5]
            if end - start_hint < runtime:
                continue
            start = entry[0]
            if start > window_start:
                window_start = start
                if start >= min_bound:
                    alive: list[SurvivorRow] = []
                    min_bound = INF
                    for c in candidates:
                        if c[1] - start >= c[5]:
                            alive.append(c)
                            if c[6] < min_bound:
                                min_bound = c[6]
                    candidates = alive
            candidates.append(entry)
            if entry[6] < min_bound:
                min_bound = entry[6]
            if len(candidates) == node_count:
                allocations = [
                    carved_allocation(
                        self._slot_of(c), window_start, window_start + c[5]
                    )
                    for c in candidates
                ]
                self._compact(memo, start_hint, dead, scanned)
                return Window.from_scan(request, allocations)
        self._compact(memo, start_hint, dead, len(survivors))
        return None

    def find_amp_window(
        self,
        request: ResourceRequest,
        *,
        budget: float | None = None,
        start_hint: float = NEG_INF,
    ) -> Window | None:
        """AMP forward scan over the index (paper steps 1°-4°).

        Equivalent to :func:`repro.core.amp.find_window`; see
        :meth:`find_alp_window` for the ``start_hint`` contract (for AMP
        the hint must be the *event time* at which the previous window
        was accepted, as returned by :meth:`find_amp_window_at`).
        """
        found = self.find_amp_window_at(request, budget=budget, start_hint=start_hint)
        return None if found is None else found[0]

    def find_amp_window_at(
        self,
        request: ResourceRequest,
        *,
        budget: float | None = None,
        start_hint: float = NEG_INF,
    ) -> tuple[Window, float] | None:
        """Like :meth:`find_amp_window` but also returns the accepting
        event time (the scan position ``T_last``, which may be later than
        the window's own start when the cheapest subset excludes the
        newest candidate).  The event time is the correct ``start_hint``
        for the next AMP search of the same request.
        """
        if budget is None:
            budget = request.budget
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        node_count = request.node_count
        memo = self._survivors(
            request.volume, request.min_performance, None, start_hint
        )
        survivors = memo.entries
        window_start = NEG_INF
        dead = 0
        # Candidates are the memo tuples in insertion order, plus the
        # same candidates ranked by (cost, uid) — AMP step 2°'s ordering —
        # maintained by insertion/removal instead of per-event sorting.
        # ``cheapest_total`` caches the cost of the first ``node_count``
        # ranked entries; it is invalidated only when an insertion or an
        # expiry touches that prefix, so unchanged events skip the
        # re-summation entirely (the cached value was produced by the
        # identical float-addition sequence, keeping results bit-exact).
        candidates: list[SurvivorRow] = []
        ranked: list[tuple[float, int, float, SurvivorRow]] = []
        cheapest_total: float | None = None
        min_bound = INF
        for scanned, entry in enumerate(survivors, 1):
            end = entry[1]
            if end <= start_hint:
                dead += 1
                continue
            runtime = entry[5]
            if end - start_hint < runtime:
                continue
            start = entry[0]
            if start > window_start:
                window_start = start
                # Events below ``min_bound`` provably expire nobody
                # (see find_alp_window); otherwise run the exact expiry
                # filter, unranking expired candidates in insertion
                # order.  ``c[4] * c[5]`` re-produces a candidate's
                # cost bit-for-bit (same two operands, same multiply).
                if start >= min_bound:
                    alive: list[SurvivorRow] = []
                    min_bound = INF
                    for c in candidates:
                        if c[1] - start >= c[5]:
                            alive.append(c)
                            if c[6] < min_bound:
                                min_bound = c[6]
                        elif _remove_ranked(ranked, c[4] * c[5], c[2]) < node_count:
                            cheapest_total = None
                    candidates = alive
            uid = entry[2]
            cost = entry[4] * runtime
            candidates.append(entry)
            if entry[6] < min_bound:
                min_bound = entry[6]
            position = bisect_left(ranked, (cost, uid))
            ranked.insert(position, (cost, uid, runtime, entry))
            if position < node_count:
                cheapest_total = None
            if len(candidates) < node_count or start < start_hint:
                continue
            if cheapest_total is None:
                total = 0.0
                for k in range(node_count):
                    total += ranked[k][0]
                cheapest_total = total
            if cheapest_total <= budget:
                chosen = ranked[:node_count]
                sync = max(item[3][0] for item in chosen)
                allocations = [
                    carved_allocation(self._slot_of(item[3]), sync, sync + item[2])
                    for item in chosen
                ]
                self._compact(memo, start_hint, dead, scanned)
                return Window.from_scan(request, allocations), start
        self._compact(memo, start_hint, dead, len(survivors))
        return None

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def commit(self, window: Window) -> None:
        """Subtract the window's occupied spans (paper Fig. 1 (b)).

        Each allocation remembers the vacant slot it was carved from, so
        the containing row is located by bisection rather than the
        linear rescan of :meth:`SlotList.subtract`.  The source slot is
        matched by value — ``(start, end, uid)`` key plus price — the
        same contract as the sharded :meth:`_ShardState.commit`.

        Raises:
            SlotListError: If some source slot is no longer in the index.
        """
        columns = self._columns
        for allocation in window.allocations:
            source = allocation.source
            resource = source.resource
            uid = resource.uid
            key = (source.start, source.end, uid)
            position = columns.bisect_key(key)
            if (
                position == len(columns)
                or columns.key_at(position) != key
                or columns.prices[position] != source.price
            ):
                raise SlotListError(
                    f"no vacant slot on {resource.name!r} contains span "
                    f"[{allocation.start:g}, {allocation.end:g})"
                )
            replacements: list[Row] = []
            left = allocation.start > source.start
            if left and (position == 0 or columns.starts[position - 1] < source.start):
                # The left remainder keeps the source's start and shrinks
                # its end, so (outside an equal-start run, where bisection
                # would be needed) it sorts at the very position the
                # source occupied: overwrite in place instead of paying
                # two O(m) memmoves per column plus a bisect.
                row: Row = (
                    source.start,
                    allocation.start,
                    uid,
                    resource.performance,
                    source.price,
                )
                columns.replace_row_at(position, row)
                replacements.append(row)
            else:
                columns.delete_at(position)
                if left:
                    row = (
                        source.start,
                        allocation.start,
                        uid,
                        resource.performance,
                        source.price,
                    )
                    columns.insert_row(row)
                    replacements.append(row)
            if source.end > allocation.end:
                row = (
                    allocation.end,
                    source.end,
                    uid,
                    resource.performance,
                    source.price,
                )
                columns.insert_row(row)
                replacements.append(row)
            self._journal((key, resource.performance, source.price, replacements))

    def insert(self, slot: Slot) -> None:
        """Re-insert vacant time (outage repair, hot-swap revocation).

        Breaks the only-ever-subtracted assumption behind ``start_hint``
        monotonicity, so the finders clamp subsequent hints to the
        earliest re-inserted start: a window may now exist at any event
        from ``slot.start`` on, however stale the caller's hint is.

        The same-resource overlap check locates the insertion
        neighbourhood by bisection
        (:meth:`ColumnStore.find_same_uid_overlap`) instead of scanning
        the whole row prefix.

        Raises:
            SlotListError: If the slot overlaps an existing slot of the
                same resource (same-resource slots must stay disjoint for
                bisection-based commit to be sound).
        """
        resource = slot.resource
        uid = resource.uid
        overlap = self._columns.find_same_uid_overlap(slot.start, slot.end, uid)
        if overlap is not None:
            raise SlotListError(
                f"slot [{slot.start:g}, {slot.end:g}) on "
                f"{resource.name!r} overlaps vacant span "
                f"[{overlap[0]:g}, {overlap[1]:g})"
            )
        # A hot-swap replacement node may be first seen here.
        self._resources.setdefault(uid, resource)
        row: Row = (slot.start, slot.end, uid, resource.performance, slot.price)
        self._columns.insert_row(row)
        self._journal((None, 0.0, 0.0, [row]))
        if slot.start < self._hint_floor:
            self._hint_floor = slot.start

    def subtract(self, resource: Resource, start: float, end: float) -> Slot:
        """Cut ``[start, end)`` on ``resource`` out of the index.

        Mirrors :meth:`SlotList.subtract` for spans that do not carry a
        source slot (grid-layer callers); prefer :meth:`commit` on the
        alternative-search hot path.  Returns a value-equal
        reconstruction of the slot the span was cut from.

        Raises:
            SlotListError: If the span is empty or negative
                (``end <= start``) — subtracting nothing must not carve
                a containing slot into fragments — or if no vacant slot
                on ``resource`` contains the span.
        """
        if end <= start:
            raise SlotListError(
                f"cannot subtract empty or negative span [{start!r}, {end!r})"
            )
        columns = self._columns
        uid = resource.uid
        starts, ends, uids = columns.starts, columns.ends, columns.uids
        for position in range(len(starts)):
            if starts[position] > start:
                break
            if uids[position] == uid and ends[position] >= end:
                candidate = self._slot_of(columns.row_at(position))
                key = (candidate.start, candidate.end, uid)
                columns.delete_at(position)
                replacements: list[Row] = []
                if start > candidate.start:
                    row: Row = (
                        candidate.start,
                        start,
                        uid,
                        resource.performance,
                        candidate.price,
                    )
                    columns.insert_row(row)
                    replacements.append(row)
                if candidate.end > end:
                    row = (end, candidate.end, uid, resource.performance, candidate.price)
                    columns.insert_row(row)
                    replacements.append(row)
                self._journal(
                    (key, resource.performance, candidate.price, replacements)
                )
                return candidate
        raise SlotListError(
            f"no vacant slot on {resource.name!r} contains span [{start:g}, {end:g})"
        )


def _remove_ranked(
    ranked: list[tuple[float, int, float, SurvivorRow]], cost: float, uid: int
) -> int:
    """Drop the ``(cost, uid)`` entry from the ranked list; return its position."""
    position = bisect_left(ranked, (cost, uid))
    while position < len(ranked):
        entry = ranked[position]
        if entry[0] == cost and entry[1] == uid:
            del ranked[position]
            return position
        position += 1
    raise SlotListError(f"ranked candidate (cost={cost!r}, uid={uid!r}) missing")
