"""Incrementally-maintained slot index — the fast phase-1 search path.

:class:`SlotIndex` holds the ordered vacant-slot list as parallel
primitive fields (start, end, resource uid, performance, price) packed
into sorted tuples, so the ALP/AMP forward scans run over local floats
instead of chasing ``Slot → Resource`` attribute chains, and window
subtraction locates the carved slot by bisection instead of a linear
rescan.  The index is built once per alternative search and maintained
*incrementally* across the whole multi-pass scheme: every committed
window only touches the ``O(log m)`` neighbourhood of its source slots.

The finders here are drop-in equivalents of :func:`repro.core.alp.find_window`
and :func:`repro.core.amp.find_window`: they perform the same suitability
tests, the same candidate-expiry filter, and the same budget summation in
the same float-operation order, so the produced windows are bit-for-bit
identical to the reference scans (``tests/test_reference_oracles.py``
enforces this differentially, ``tests/test_properties.py`` checks the
model invariants).

Two assumptions, both guaranteed by the paper's model and checked by the
test suite, let the index go beyond the reference implementation:

* **No same-resource overlap.**  Vacant slots of one resource never share
  processor time (``SlotList.check_no_overlap``), so the slot containing
  an allocated span is unique and can be located by bisection.
* **Monotone window starts.**  Slot subtraction only removes vacant time,
  so for a fixed request the earliest feasible window start never moves
  backwards across the passes of one alternative search.  The optional
  ``start_hint`` (the event time of the previous window found for the
  same request on a superset of this list) lets the scan skip candidates
  that cannot survive to any feasible event, and — for AMP — skip the
  cheapest-subset budget checks at events that are provably infeasible.

The monotonicity argument holds only while slots are *subtracted*.
Mutations that return vacant time — hot-swap recovery re-opening a
revoked window, outage cancellation releasing reservations — can make
earlier events feasible again, so :meth:`SlotIndex.insert` records the
smallest re-inserted slot start and every finder clamps the caller's
``start_hint`` to it.  Events before a re-inserted slot's start are
untouched by the insertion and stay infeasible, so the clamped hint is
still safe; events at or past it are re-scanned.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from operator import itemgetter
from typing import Iterable, Iterator

from repro.core.errors import SlotListError
from repro.core.job import ResourceRequest
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList
from repro.core.window import TaskAllocation, Window

__all__ = ["SlotIndex"]

NEG_INF = float("-inf")

#: Row layout: ``(start, end, resource uid, performance, price, slot)``.
#: The leading triple is exactly ``SlotList``'s sort key, so row order and
#: scan order coincide with the reference list; the trailing fields are
#: the only slot attributes the scans ever read.
_row_key = itemgetter(0, 1, 2)

_rank_key = itemgetter(0, 1)


def _row_of(slot: Slot) -> tuple[float, float, int, float, float, Slot]:
    return (
        slot.start,
        slot.end,
        slot.resource.uid,
        slot.resource.performance,
        slot.price,
        slot,
    )


class SlotIndex:
    """Sorted, incrementally-updated view of a vacant-slot list."""

    __slots__ = ("_rows", "_hint_floor")

    def __init__(self, slots: Iterable[Slot] = ()) -> None:
        self._rows = sorted((_row_of(slot) for slot in slots), key=_row_key)
        # Smallest start among slots re-inserted after construction; any
        # caller-supplied start_hint is clamped to it (see module
        # docstring).  +inf while the index has only ever been subtracted
        # from, i.e. hints pass through unchanged.
        self._hint_floor = float("inf")

    # ------------------------------------------------------------------ #
    # Container protocol                                                 #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Slot]:
        return iter(row[5] for row in self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlotIndex({len(self._rows)} slots)"

    def slot_list(self) -> SlotList:
        """Materialise the current state as a plain :class:`SlotList`."""
        return SlotList(row[5] for row in self._rows)

    def hint_skippable(self, start_hint: float) -> int:
        """Rows the finders' ``start_hint`` fast path skips outright.

        Counts the rows failing the first scan condition
        (``end <= start_hint``, after the :meth:`insert` clamp) — the
        monotone start-hint prune the instrumented search reports in its
        decision records.  ``O(m)``; only called on instrumented runs
        with decision logging enabled, never on the hot path.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        if start_hint == NEG_INF:
            return 0
        return sum(1 for row in self._rows if row[1] <= start_hint)

    # ------------------------------------------------------------------ #
    # Window search                                                      #
    # ------------------------------------------------------------------ #

    def find_alp_window(
        self,
        request: ResourceRequest,
        *,
        check_price: bool = True,
        start_hint: float = NEG_INF,
    ) -> Window | None:
        """ALP forward scan over the index (paper steps 1°-5°).

        Equivalent to :func:`repro.core.alp.find_window` on the same slot
        list.  ``start_hint`` may be set to the start of a window
        previously found for the *same request* on a superset of this
        list; candidates that cannot survive to any event at or past the
        hint are skipped (the result is unchanged by monotonicity).  If
        vacant time was re-inserted (:meth:`insert`) the hint is clamped
        to the earliest re-inserted start, so stale hints never skip
        windows the new vacancy makes feasible.
        """
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        node_count = request.node_count
        volume = request.volume
        min_performance = request.min_performance
        max_price = request.max_price if check_price else None
        window_start = NEG_INF
        # Candidate tuples (end, runtime, slot) in scan insertion order —
        # the same order ForwardScan.candidates holds.
        candidates: list[tuple[float, float, Slot]] = []
        for row in self._rows:
            end = row[1]
            if end <= start_hint:  # cannot survive to any event >= hint
                continue
            performance = row[3]
            if performance < min_performance:
                continue
            if max_price is not None and row[4] > max_price:
                continue
            runtime = volume / performance
            start = row[0]
            if end - start < runtime:
                continue
            if end - start_hint < runtime:
                continue
            slot = row[5]
            if start > window_start:
                window_start = start
                candidates = [c for c in candidates if c[0] - start >= c[1]]
            candidates.append((end, runtime, slot))
            if len(candidates) == node_count:
                allocations = [
                    TaskAllocation(c[2], window_start, window_start + c[1])
                    for c in candidates
                ]
                return Window(request, allocations)
        return None

    def find_amp_window(
        self,
        request: ResourceRequest,
        *,
        budget: float | None = None,
        start_hint: float = NEG_INF,
    ) -> Window | None:
        """AMP forward scan over the index (paper steps 1°-4°).

        Equivalent to :func:`repro.core.amp.find_window`; see
        :meth:`find_alp_window` for the ``start_hint`` contract (for AMP
        the hint must be the *event time* at which the previous window
        was accepted, as returned by :meth:`find_amp_window_at`).
        """
        found = self.find_amp_window_at(request, budget=budget, start_hint=start_hint)
        return None if found is None else found[0]

    def find_amp_window_at(
        self,
        request: ResourceRequest,
        *,
        budget: float | None = None,
        start_hint: float = NEG_INF,
    ) -> tuple[Window, float] | None:
        """Like :meth:`find_amp_window` but also returns the accepting
        event time (the scan position ``T_last``, which may be later than
        the window's own start when the cheapest subset excludes the
        newest candidate).  The event time is the correct ``start_hint``
        for the next AMP search of the same request.
        """
        if budget is None:
            budget = request.budget
        if start_hint > self._hint_floor:
            start_hint = self._hint_floor
        node_count = request.node_count
        volume = request.volume
        min_performance = request.min_performance
        window_start = NEG_INF
        # (end, runtime, cost, uid, slot) in insertion order, plus the
        # same candidates ranked by (cost, uid) — AMP step 2°'s ordering —
        # maintained by insertion/removal instead of per-event sorting.
        # ``cheapest_total`` caches the cost of the first ``node_count``
        # ranked entries; it is invalidated only when an insertion or an
        # expiry touches that prefix, so unchanged events skip the
        # re-summation entirely (the cached value was produced by the
        # identical float-addition sequence, keeping results bit-exact).
        candidates: list[tuple[float, float, float, int, Slot]] = []
        ranked: list[tuple[float, int, float, Slot]] = []
        cheapest_total: float | None = None
        for row in self._rows:
            end = row[1]
            if end <= start_hint:
                continue
            performance = row[3]
            if performance < min_performance:
                continue
            runtime = volume / performance
            start = row[0]
            if end - start < runtime:
                continue
            if end - start_hint < runtime:
                continue
            if start > window_start:
                window_start = start
                alive = [c for c in candidates if c[0] - start >= c[1]]
                if len(alive) != len(candidates):
                    for expired in candidates:
                        if expired[0] - start < expired[1]:
                            if _remove_ranked(ranked, expired[2], expired[3]) < node_count:
                                cheapest_total = None
                    candidates = alive
            uid = row[2]
            cost = row[4] * runtime
            slot = row[5]
            candidates.append((end, runtime, cost, uid, slot))
            position = bisect_left(ranked, (cost, uid), key=_rank_key)
            ranked.insert(position, (cost, uid, runtime, slot))
            if position < node_count:
                cheapest_total = None
            if len(candidates) < node_count or start < start_hint:
                continue
            if cheapest_total is None:
                total = 0.0
                for k in range(node_count):
                    total += ranked[k][0]
                cheapest_total = total
            if cheapest_total <= budget:
                chosen = ranked[:node_count]
                sync = max(entry[3].start for entry in chosen)
                allocations = [
                    TaskAllocation(entry[3], sync, sync + entry[2])
                    for entry in chosen
                ]
                return Window(request, allocations), start
        return None

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def commit(self, window: Window) -> None:
        """Subtract the window's occupied spans (paper Fig. 1 (b)).

        Each allocation remembers the vacant slot it was carved from, so
        the containing slot is located by bisection rather than the
        linear rescan of :meth:`SlotList.subtract`.

        Raises:
            SlotListError: If some source slot is no longer in the index.
        """
        rows = self._rows
        for allocation in window.allocations:
            source = allocation.source
            key = (source.start, source.end, source.resource.uid)
            position = bisect_left(rows, key, key=_row_key)
            if position == len(rows) or rows[position][5] != source:
                raise SlotListError(
                    f"no vacant slot on {source.resource.name!r} contains span "
                    f"[{allocation.start:g}, {allocation.end:g})"
                )
            del rows[position]
            if allocation.start > source.start:
                remainder = Slot(source.resource, source.start, allocation.start, source.price)
                insort(rows, _row_of(remainder), key=_row_key)
            if source.end > allocation.end:
                remainder = Slot(source.resource, allocation.end, source.end, source.price)
                insort(rows, _row_of(remainder), key=_row_key)

    def insert(self, slot: Slot) -> None:
        """Re-insert vacant time (outage repair, hot-swap revocation).

        Breaks the only-ever-subtracted assumption behind ``start_hint``
        monotonicity, so the finders clamp subsequent hints to the
        earliest re-inserted start: a window may now exist at any event
        from ``slot.start`` on, however stale the caller's hint is.

        Raises:
            SlotListError: If the slot overlaps an existing slot of the
                same resource (same-resource slots must stay disjoint for
                bisection-based commit to be sound).
        """
        uid = slot.resource.uid
        for row in self._rows:
            if row[0] >= slot.end:
                break
            if row[2] == uid and row[1] > slot.start:
                raise SlotListError(
                    f"slot [{slot.start:g}, {slot.end:g}) on "
                    f"{slot.resource.name!r} overlaps vacant span "
                    f"[{row[0]:g}, {row[1]:g})"
                )
        insort(self._rows, _row_of(slot), key=_row_key)
        if slot.start < self._hint_floor:
            self._hint_floor = slot.start

    def subtract(self, resource: Resource, start: float, end: float) -> Slot:
        """Cut ``[start, end)`` on ``resource`` out of the index.

        Mirrors :meth:`SlotList.subtract` for spans that do not carry a
        source slot (grid-layer callers); prefer :meth:`commit` on the
        alternative-search hot path.
        """
        if end < start:
            raise SlotListError(f"cannot subtract negative span [{start!r}, {end!r})")
        rows = self._rows
        uid = resource.uid
        for position, row in enumerate(rows):
            if row[0] > start:
                break
            candidate = row[5]
            if row[2] == uid and candidate.contains_span(start, end):
                del rows[position]
                if start > candidate.start:
                    insort(
                        rows,
                        _row_of(Slot(resource, candidate.start, start, candidate.price)),
                        key=_row_key,
                    )
                if candidate.end > end:
                    insort(
                        rows,
                        _row_of(Slot(resource, end, candidate.end, candidate.price)),
                        key=_row_key,
                    )
                return candidate
        raise SlotListError(
            f"no vacant slot on {resource.name!r} contains span [{start:g}, {end:g})"
        )


def _remove_ranked(ranked: list[tuple[float, int, float, Slot]], cost: float, uid: int) -> int:
    """Drop the ``(cost, uid)`` entry from the ranked list; return its position."""
    position = bisect_left(ranked, (cost, uid), key=_rank_key)
    while position < len(ranked):
        entry = ranked[position]
        if entry[0] == cost and entry[1] == uid:
            del ranked[position]
            return position
        position += 1
    raise SlotListError(f"ranked candidate (cost={cost!r}, uid={uid!r}) missing")
