"""Array-backed column storage for sorted slot rows (ROADMAP item 3).

:class:`ColumnStore` keeps the primitive fields of the ordered
vacant-slot list — start, end, resource uid, performance, price — in
parallel ``array('d')`` / ``array('q')`` columns instead of a list of
python tuples.  Two things fall out of that layout:

* the request-*static* feasibility predicates — minimum performance,
  ALP's per-slot price cap, and the slot-length test
  ``end - start >= runtime`` — can be evaluated as one vectorized mask
  over the raw float buffers (numpy reads the ``array`` memory directly
  through the buffer protocol, no copies), so a survivor-memo build is
  a handful of C loops instead of a python-level predicate per row;
* mutation stays cheap: inserting or deleting a row is a small
  ``memmove`` per column instead of shifting ``PyObject`` pointers, and
  the sorted-by-``(start, end, uid)`` invariant is maintained by
  bisection exactly as before.

**Bit-exactness.**  The vectorized mask computes ``volume / performance``
and ``end - start`` as IEEE-754 double operations — elementwise
identical to the scalar expressions of the reference finders — and the
comparisons are exact predicates, so both the survivor *set* and each
survivor's ``runtime`` are bit-for-bit the same whether the mask or the
scalar kernel produced them (``tests/test_columns.py`` checks the two
against each other; the differential oracles in
``tests/test_reference_oracles.py`` pin the full search).  When numpy is
unavailable the scalar kernel *is* the implementation, not just the
spec.

The kernels here are shared by the serial
:class:`~repro.core.index.SlotIndex` and the per-shard states of
:class:`~repro.core.shard_search.ShardedSearchExecutor`, so the two fast
paths cannot drift apart.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from operator import itemgetter
from typing import Iterable

__all__ = ["Row", "SurvivorRow", "ColumnStore", "static_survivor", "expiry_bound"]

try:  # numpy is a hard dependency of phase 2 (repro.core.optimize), but
    # the phase-1 column path degrades gracefully to the scalar kernel.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

#: Primitive row layout shared by every fast path:
#: ``(start, end, resource uid, performance, price)``.  The leading
#: triple is exactly ``SlotList``'s sort key, so row order and scan
#: order coincide with the reference list.
Row = tuple[float, float, int, float, float]

#: A row that passed the static predicates, extended with the
#: precomputed ``runtime = volume / performance`` as a sixth field so
#: every consumer uses the same float, and the conservative candidate
#: expiry bound of :func:`expiry_bound` as a seventh.
SurvivorRow = tuple[float, float, int, float, float, float, float]

_row_key = itemgetter(0, 1, 2)


def expiry_bound(end, runtime):
    """Safe lower bound on the scan events a candidate row survives.

    A candidate expires at event ``s`` when ``end - s < runtime`` — an
    IEEE-754 comparison the finders must reproduce exactly.  This bound
    under-approximates the expiry threshold by a relative margin many
    orders of magnitude wider than the subtraction's rounding error
    (``1e-9`` of the operand magnitudes versus ~``2e-16``), so for any
    event ``s < expiry_bound(end, runtime)`` *no* rounding outcome of
    ``end - s < runtime`` can be true: scans may skip the per-event
    expiry filter below the smallest bound among their candidates
    without changing a single comparison result.  Works elementwise on
    numpy arrays with the identical operation order, so vectorized and
    scalar survivor rows carry bit-equal bounds.
    """
    return (end - runtime) - 1e-9 * ((end + runtime) + 1.0)


def static_survivor(
    row: Row, volume: float, min_performance: float, max_price: float | None
) -> SurvivorRow | None:
    """Apply the request-*static* scan predicates to one row.

    Mirrors the suitability tests of the reference finders that do not
    depend on the start hint: minimum performance, the ALP per-slot
    price cap, and the slot-length test ``end - start >= runtime``.
    Returns the row extended with its runtime, or ``None`` if filtered.

    This scalar kernel and the vectorized mask of
    :meth:`ColumnStore.survivors` are interchangeable bit-for-bit; the
    incremental memo maintenance of the index and the shard states uses
    this form because it touches one row at a time.
    """
    performance = row[3]
    if performance < min_performance:
        return None
    if max_price is not None and row[4] > max_price:
        return None
    runtime = volume / performance
    if row[1] - row[0] < runtime:
        return None
    return (
        row[0],
        row[1],
        row[2],
        performance,
        row[4],
        runtime,
        expiry_bound(row[1], runtime),
    )


class ColumnStore:
    """Parallel primitive columns of a sorted slot-row table.

    Rows are kept sorted by ``(start, end, uid)`` — the scan order of
    every finder.  The store holds no ``Slot`` objects; callers that
    need them (:class:`~repro.core.index.SlotIndex`) keep a parallel
    list aligned with the row positions this class reports.
    """

    __slots__ = ("starts", "ends", "uids", "perfs", "prices", "_uid_counts")

    def __init__(self, rows: Iterable[Row] = ()) -> None:
        ordered = sorted(rows, key=_row_key)
        self.starts = array("d", (row[0] for row in ordered))
        self.ends = array("d", (row[1] for row in ordered))
        self.uids = array("q", (row[2] for row in ordered))
        self.perfs = array("d", (row[3] for row in ordered))
        self.prices = array("d", (row[4] for row in ordered))
        counts: dict[int, int] = {}
        for uid in self.uids:
            counts[uid] = counts.get(uid, 0) + 1
        self._uid_counts = counts

    # ------------------------------------------------------------------ #
    # Row access                                                         #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.starts)

    def row_at(self, position: int) -> Row:
        """The primitive row at ``position``."""
        return (
            self.starts[position],
            self.ends[position],
            self.uids[position],
            self.perfs[position],
            self.prices[position],
        )

    def key_at(self, position: int) -> tuple[float, float, int]:
        """The sort key ``(start, end, uid)`` of the row at ``position``."""
        return (self.starts[position], self.ends[position], self.uids[position])

    def rows(self) -> list[Row]:
        """All rows in scan order (materialised tuples)."""
        return [self.row_at(position) for position in range(len(self.starts))]

    def uid_present(self, uid: int) -> bool:
        """Whether any row of resource ``uid`` is in the table."""
        return uid in self._uid_counts

    # ------------------------------------------------------------------ #
    # Ordered mutation                                                   #
    # ------------------------------------------------------------------ #

    def bisect_key(self, key: tuple[float, float, int]) -> int:
        """Leftmost position whose ``(start, end, uid)`` is >= ``key``.

        Two stages: a C-level :func:`bisect.bisect_left` on the start
        column narrows to the first row of ``key``'s start, then a short
        walk over the (rare) equal-start run refines by ``(end, uid)``.
        """
        starts = self.starts
        start, end, uid = key
        lo = bisect_left(starts, start)
        ends, uids = self.ends, self.uids
        total = len(starts)
        while lo < total and starts[lo] == start:
            row_end = ends[lo]
            if row_end > end or (row_end == end and uids[lo] >= uid):
                break
            lo += 1
        return lo

    def insert_row(self, row: Row) -> int:
        """Insert ``row`` keeping sort order; returns its position."""
        position = self.bisect_key((row[0], row[1], row[2]))
        self.starts.insert(position, row[0])
        self.ends.insert(position, row[1])
        self.uids.insert(position, row[2])
        self.perfs.insert(position, row[3])
        self.prices.insert(position, row[4])
        uid = row[2]
        self._uid_counts[uid] = self._uid_counts.get(uid, 0) + 1
        return position

    def replace_row_at(self, position: int, row: Row) -> None:
        """Overwrite the row at ``position`` in place.

        The caller guarantees the new row keeps the sort invariant at
        this position and shares the old row's uid (so the uid counts
        are unchanged) — the carve-in-place fast path of
        :meth:`~repro.core.index.SlotIndex.commit`, which shrinks a
        slot's end while keeping its start, satisfies both.
        """
        self.starts[position] = row[0]
        self.ends[position] = row[1]
        self.uids[position] = row[2]
        self.perfs[position] = row[3]
        self.prices[position] = row[4]

    def delete_at(self, position: int) -> Row:
        """Remove and return the row at ``position``."""
        row = (
            self.starts.pop(position),
            self.ends.pop(position),
            self.uids.pop(position),
            self.perfs.pop(position),
            self.prices.pop(position),
        )
        uid = row[2]
        remaining = self._uid_counts[uid] - 1
        if remaining:
            self._uid_counts[uid] = remaining
        else:
            del self._uid_counts[uid]
        return row

    def find_same_uid_overlap(
        self, start: float, end: float, uid: int
    ) -> tuple[float, float] | None:
        """Span of an existing same-``uid`` row overlapping ``[start, end)``.

        Locates the insertion neighbourhood by bisection instead of
        scanning the whole row prefix: rows starting inside
        ``[start, end)`` are checked directly, and of the rows starting
        before ``start`` only the *latest* same-uid one can reach past
        ``start`` — same-resource rows are disjoint, so every earlier
        one ends at or before that row's start — so the leftward walk
        stops at the first same-uid hit.  Returns the overlapping span
        for the caller's error message, or ``None``.
        """
        if uid not in self._uid_counts:
            return None
        starts, ends, uids = self.starts, self.ends, self.uids
        first = bisect_left(starts, start)
        position = first
        total = len(starts)
        while position < total and starts[position] < end:
            if uids[position] == uid and ends[position] > start:
                return (starts[position], ends[position])
            position += 1
        position = first - 1
        while position >= 0:
            if uids[position] == uid:
                if ends[position] > start:
                    return (starts[position], ends[position])
                return None
            position -= 1
        return None

    # ------------------------------------------------------------------ #
    # Vectorized predicates                                              #
    # ------------------------------------------------------------------ #

    def survivors(
        self,
        volume: float,
        min_performance: float,
        max_price: float | None,
        min_end: float = float("-inf"),
    ) -> tuple[list[SurvivorRow], list[int]]:
        """Rows passing the static predicates, with their positions.

        Returns ``(entries, positions)`` where ``entries`` are
        :data:`SurvivorRow` tuples in scan order and ``positions`` the
        corresponding row indices (so a caller keeping a parallel
        ``Slot`` list can attach the objects).  With numpy present the
        mask is evaluated vectorized over zero-copy buffer views of the
        columns; the result is bit-identical to mapping
        :func:`static_survivor` over every row.

        ``min_end`` additionally drops rows with ``end <= min_end`` —
        an exact comparison, so the result equals the unfiltered
        survivor set minus those rows.  Callers rebuilding a survivor
        memo for a scan at a monotone start hint use it to skip
        attaching entries the scan would immediately discard as
        hint-dead.
        """
        if _np is not None and len(self.starts):
            perfs = _np.frombuffer(self.perfs)
            mask = perfs >= min_performance
            if max_price is not None:
                mask &= _np.frombuffer(self.prices) <= max_price
            runtimes = volume / perfs
            starts = _np.frombuffer(self.starts)
            ends = _np.frombuffer(self.ends)
            mask &= (ends - starts) >= runtimes
            if min_end != float("-inf"):
                mask &= ends > min_end
            chosen = _np.flatnonzero(mask)
            positions: list[int] = chosen.tolist()
            entries: list[SurvivorRow] = list(
                zip(
                    starts[chosen].tolist(),
                    ends[chosen].tolist(),
                    _np.frombuffer(self.uids, dtype=_np.int64)[chosen].tolist(),
                    perfs[chosen].tolist(),
                    _np.frombuffer(self.prices)[chosen].tolist(),
                    runtimes[chosen].tolist(),
                    expiry_bound(ends, runtimes)[chosen].tolist(),
                )
            )
            return entries, positions
        scalar_entries: list[SurvivorRow] = []
        scalar_positions: list[int] = []
        for position in range(len(self.starts)):
            if self.ends[position] <= min_end:
                continue
            entry = static_survivor(
                self.row_at(position), volume, min_performance, max_price
            )
            if entry is not None:
                scalar_entries.append(entry)
                scalar_positions.append(position)
        return scalar_entries, scalar_positions

    def count_end_at_or_before(self, limit: float) -> int:
        """Rows whose ``end <= limit`` — the tier-1 start-hint prune count."""
        if _np is not None and len(self.ends):
            return int(_np.count_nonzero(_np.frombuffer(self.ends) <= limit))
        return sum(1 for end in self.ends if end <= limit)
