"""Vector-criteria optimization (paper Section 2, general model).

The general model of ref. [2] optimizes the vector
``⟨C(s̄), D(s̄), T(s̄), I(s̄)⟩`` rather than one scalar.  Since ``D`` and
``I`` are affine in ``C`` and ``T``, the decision space is really the
(time, cost) plane; this module provides the two standard tools over
it:

* :func:`pareto_front` — the exact set of non-dominated combinations
  (small instances; exhaustive with a safety cap).  Useful for judging
  how much the scalarized answers leave on the table.
* :func:`minimize_weighted` — scalarization ``w_t·T(s̄) + w_c·C(s̄)``
  minimized by the same backward-run machinery, optionally under the
  budget or quota constraint.  With no constraint the problem separates
  per job and is solved in closed form.

These are *our* extension of the paper's single-criterion experiments;
DESIGN.md lists them under the future-work items.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.criteria import Criterion
from repro.core.errors import (
    InvalidRequestError,
    InvariantViolationError,
    OptimizationError,
)
from repro.core.job import Job
from repro.core.optimize import (
    DEFAULT_RESOLUTION,
    Combination,
    _as_job_lists,
    _backward_run,
    _discretize,
)
from repro.core.window import Window

__all__ = ["ParetoPoint", "pareto_front", "minimize_weighted"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated combination in the (time, cost) plane."""

    total_time: float
    total_cost: float
    selection: dict[Job, Window]

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak Pareto dominance: no worse on both axes, better on one."""
        no_worse = (
            self.total_time <= other.total_time + 1e-12
            and self.total_cost <= other.total_cost + 1e-12
        )
        better = (
            self.total_time < other.total_time - 1e-12
            or self.total_cost < other.total_cost - 1e-12
        )
        return no_worse and better


def pareto_front(
    alternatives: Mapping[Job, Sequence[Window]],
    *,
    max_combinations: int = 200_000,
) -> list[ParetoPoint]:
    """The exact (time, cost) Pareto front over all combinations.

    Returns points sorted by ascending total time (hence descending
    cost).  Exhaustive; guarded by ``max_combinations``.

    Raises:
        OptimizationError: If the combination space exceeds the cap or a
            job has no alternatives.
    """
    jobs, lists = _as_job_lists(alternatives)
    if not jobs:
        return []
    space = math.prod(len(windows) for windows in lists)
    if space > max_combinations:
        raise OptimizationError(
            f"pareto_front over {space} combinations exceeds cap {max_combinations}"
        )
    candidates: list[ParetoPoint] = []
    for combo in itertools.product(*lists):
        candidates.append(
            ParetoPoint(
                total_time=sum(window.length for window in combo),
                total_cost=sum(window.cost for window in combo),
                selection=dict(zip(jobs, combo)),
            )
        )
    candidates.sort(key=lambda point: (point.total_time, point.total_cost))
    front: list[ParetoPoint] = []
    best_cost = math.inf
    for point in candidates:
        if point.total_cost < best_cost - 1e-12:
            front.append(point)
            best_cost = point.total_cost
    return front


def minimize_weighted(
    alternatives: Mapping[Job, Sequence[Window]],
    *,
    time_weight: float = 1.0,
    cost_weight: float = 1.0,
    budget: float | None = None,
    quota: float | None = None,
    resolution: int = DEFAULT_RESOLUTION,
) -> Combination:
    """Minimize ``w_t·T(s̄) + w_c·C(s̄)``, optionally constrained.

    Exactly one of ``budget`` / ``quota`` may be given (the constrained
    axis is then discretized as in :mod:`repro.core.optimize`); with
    neither, the objective separates per job and each job independently
    takes its best-weighted window.

    Raises:
        InvalidRequestError: For negative/zero weights or both
            constraints at once.
        InfeasibleConstraintError: When the constraint cannot be met.
    """
    if time_weight < 0 or cost_weight < 0 or time_weight + cost_weight == 0:
        raise InvalidRequestError(
            f"weights must be non-negative and not both zero, got "
            f"({time_weight!r}, {cost_weight!r})"
        )
    if budget is not None and quota is not None:
        raise InvalidRequestError(
            "give at most one of budget/quota; two-dimensional constraints "
            "are outside the backward-run model"
        )
    jobs, lists = _as_job_lists(alternatives)
    if not jobs:
        return Combination({}, 0.0, 0.0, Criterion.TIME, budget or quota or 0.0)

    def weighted(window: Window) -> float:
        return time_weight * window.length + cost_weight * window.cost

    if budget is None and quota is None:
        selection = {
            job: min(windows, key=weighted) for job, windows in zip(jobs, lists)
        }
        return Combination(
            selection=selection,
            total_cost=sum(window.cost for window in selection.values()),
            total_time=sum(window.length for window in selection.values()),
            objective=Criterion.TIME if time_weight >= cost_weight else Criterion.COST,
            limit=math.inf,
        )

    constrained = Criterion.COST if budget is not None else Criterion.TIME
    limit = budget if budget is not None else quota
    if limit is None:
        raise InvariantViolationError(
            "constrained weighted run reached with neither budget nor quota"
        )
    g_values = [[weighted(window) for window in windows] for windows in lists]
    z_values = [[constrained.of(window) for window in windows] for windows in lists]
    flat_z = [value for job_values in z_values for value in job_values]
    weights_flat, capacity = _discretize(flat_z, limit, resolution)
    z_weights: list[list[int]] = []
    cursor = 0
    for windows in lists:
        z_weights.append(weights_flat[cursor : cursor + len(windows)])
        cursor += len(windows)
    solved = _backward_run(g_values, z_weights, capacity, maximize=False)
    if solved is None:
        from repro.core.errors import InfeasibleConstraintError

        best = sum(min(values) for values in z_values)
        raise InfeasibleConstraintError(
            f"no combination satisfies {constrained.value} <= {limit:g} "
            f"(best possible is >= {best:g})",
            limit=limit,
            best=best,
        )
    chosen, _ = solved
    selection = {job: lists[index][alt] for index, (job, alt) in enumerate(zip(jobs, chosen))}
    return Combination(
        selection=selection,
        total_cost=sum(window.cost for window in selection.values()),
        total_time=sum(window.length for window in selection.values()),
        objective=Criterion.TIME if time_weight >= cost_weight else Criterion.COST,
        limit=limit,
    )
