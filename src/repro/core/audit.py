"""Schedule auditing — independent verification of scheduler output.

A downstream VO operator should not have to trust the scheduler: this
module re-checks, from first principles, everything a committed
schedule promises.  It is also what the integration tests and the
failure-injection experiments use to prove invariants.

Checks performed by :func:`audit_windows` / :func:`audit_outcome`:

* **contract** — every window satisfies its job's request (node count,
  distinct resources, synchronous start, minimum performance, runtimes,
  per-slot price cap or budget, per the algorithm used);
* **disjointness** — no two windows share processor time (the guarantee
  the phase-2 DP relies on);
* **containment** — every task placement lies inside a vacant slot of
  the reference slot list (nothing was scheduled on occupied time);
* **constraints** — the chosen combination respects the VO budget
  ``B*`` / quota ``T*`` it was optimized under.

Auditors *collect* violations instead of raising, so operators can log
all problems of a bad schedule at once; :func:`require_valid` converts
to an exception for test use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import SchedulingError
from repro.core.job import Job
from repro.core.scheduler import ScheduleOutcome
from repro.core.search import SlotSearchAlgorithm
from repro.core.slot import SlotList
from repro.core.window import Window

__all__ = ["Violation", "audit_windows", "audit_outcome", "require_valid", "AuditError"]


class AuditError(SchedulingError):
    """Raised by :func:`require_valid` when an audit finds violations."""

    def __init__(self, violations: list["Violation"]) -> None:
        super().__init__(
            f"{len(violations)} audit violation(s): "
            + "; ".join(violation.message for violation in violations[:5])
        )
        #: The full violation list.
        self.violations = violations


@dataclass(frozen=True)
class Violation:
    """One audit finding.

    Attributes:
        kind: Violation family: ``"contract"``, ``"overlap"``,
            ``"containment"``, or ``"constraint"``.
        message: Human-readable description.
        job_name: The offending job, when attributable to one.
    """

    kind: str
    message: str
    job_name: str | None = None


def _check_contract(
    job: Job, window: Window, algorithm: SlotSearchAlgorithm | None
) -> list[Violation]:
    if algorithm is None:
        # Unknown algorithm: check the physical contract only (node
        # count, performance, runtimes) — an infinite budget disables
        # both price checks.
        budget: float | None = float("inf")
    elif algorithm is SlotSearchAlgorithm.AMP:
        budget = job.request.budget
    else:
        budget = None
    if window.satisfies(job.request, budget=budget):
        return []
    return [
        Violation(
            kind="contract",
            message=f"window of {job.name!r} violates its resource request",
            job_name=job.name,
        )
    ]


def _check_containment(job: Job, window: Window, slot_list: SlotList) -> list[Violation]:
    violations = []
    for allocation in window.allocations:
        contained = any(
            slot.resource == allocation.resource
            and slot.contains_span(allocation.start, allocation.end)
            for slot in slot_list.slots_on(allocation.resource)
        )
        if not contained:
            violations.append(
                Violation(
                    kind="containment",
                    message=(
                        f"{job.name!r} occupies [{allocation.start:g}, "
                        f"{allocation.end:g}) on {allocation.resource.name!r} "
                        "outside any vacant slot"
                    ),
                    job_name=job.name,
                )
            )
    return violations


def audit_windows(
    windows: Mapping[Job, Window],
    *,
    slot_list: SlotList | None = None,
    algorithm: SlotSearchAlgorithm | None = None,
    budget_limit: float | None = None,
    time_quota: float | None = None,
) -> list[Violation]:
    """Audit a job → window assignment.

    Args:
        windows: The committed assignment.
        slot_list: The vacant-slot list the schedule was built against;
            enables the containment check when given.
        algorithm: The phase-1 algorithm used; selects the price check
            (per-slot cap for ALP, budget for AMP, neither when None).
        budget_limit: The ``B*`` the combination was optimized under.
        time_quota: The ``T*`` the combination was optimized under.

    Returns:
        All violations found (empty list = schedule is sound).
    """
    violations: list[Violation] = []
    for job, window in windows.items():
        violations.extend(_check_contract(job, window, algorithm))
        if slot_list is not None:
            violations.extend(_check_containment(job, window, slot_list))
    for (job_a, win_a), (job_b, win_b) in itertools.combinations(windows.items(), 2):
        if win_a.intersects(win_b):
            violations.append(
                Violation(
                    kind="overlap",
                    message=f"windows of {job_a.name!r} and {job_b.name!r} share processor time",
                )
            )
    total_cost = sum(window.cost for window in windows.values())
    total_time = sum(window.length for window in windows.values())
    if budget_limit is not None and total_cost > budget_limit * (1 + 1e-2) + 1e-9:
        violations.append(
            Violation(
                kind="constraint",
                message=f"total cost {total_cost:g} exceeds budget {budget_limit:g}",
            )
        )
    if time_quota is not None and total_time > time_quota * (1 + 1e-2) + 1e-9:
        violations.append(
            Violation(
                kind="constraint",
                message=f"total time {total_time:g} exceeds quota {time_quota:g}",
            )
        )
    return violations


def audit_outcome(
    outcome: ScheduleOutcome,
    slot_list: SlotList,
    *,
    algorithm: SlotSearchAlgorithm | None = None,
) -> list[Violation]:
    """Audit a full :class:`~repro.core.scheduler.ScheduleOutcome`.

    The constraint checks are skipped when the outcome used the
    earliest-alternative fallback (the fallback is explicitly allowed to
    ignore them).
    """
    budget_limit = None if outcome.used_fallback else outcome.budget
    time_quota = None
    if not outcome.used_fallback and outcome.budget is None and outcome.scheduled_jobs:
        time_quota = outcome.quota
    return audit_windows(
        outcome.scheduled_jobs,
        slot_list=slot_list,
        algorithm=algorithm,
        budget_limit=budget_limit,
        time_quota=time_quota,
    )


def require_valid(violations: list[Violation]) -> None:
    """Raise :class:`AuditError` when the violation list is non-empty."""
    if violations:
        raise AuditError(violations)
