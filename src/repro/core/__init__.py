"""Core library: the paper's primary contribution.

This package implements the economic slot-selection and co-allocation
model of Toporkov et al. (PaCT 2011): the data model (resources, slots,
windows, jobs), the two linear slot-search algorithms ALP and AMP, the
multi-pass alternative search with slot subtraction, and the backward-run
dynamic programming that picks the batch-optimal combination of
alternatives.

Typical use::

    from repro.core import (
        Resource, Slot, SlotList, ResourceRequest, Job, Batch,
        BatchScheduler, SchedulerConfig, SlotSearchAlgorithm, Criterion,
    )

    nodes = [Resource(f"cpu{i}", performance=1.0, price=2.0) for i in range(4)]
    slots = SlotList(Slot(node, 0.0, 500.0) for node in nodes)
    batch = Batch([Job(ResourceRequest(node_count=2, volume=80, max_price=5))])
    outcome = BatchScheduler(SchedulerConfig()).schedule(slots, batch)
"""

from repro.core.criteria import (
    CriteriaVector,
    Criterion,
    criteria_vector,
    total_cost,
    total_time,
)
from repro.core.errors import (
    AdmissionRejectedError,
    CheckpointMismatchError,
    InfeasibleConstraintError,
    InvalidRequestError,
    InvariantViolationError,
    JournalClosedError,
    JournalCorruptError,
    OptimizationError,
    PersistenceError,
    RecoveryExhaustedError,
    SchedulingError,
    SlotListError,
    WindowNotFoundError,
    WorkerLostError,
)
from repro.core.fsio import FileSystem, REAL_FS
from repro.core.job import Batch, Job, ResourceRequest
from repro.core.journal import (
    JournalRecord,
    JournalWriter,
    journal_header,
    read_journal,
    verify_record,
)
from repro.core.optimize import (
    Combination,
    OptimizationBudget,
    brute_force,
    minimize_cost,
    minimize_time,
    optimize,
    time_quota,
    vo_budget,
)
from repro.core.audit import (
    AuditError,
    Violation,
    audit_outcome,
    audit_windows,
    require_valid,
)
from repro.core.coschedule import BatchAssignment, BatchStrategy, coallocate_batch
from repro.core.multicriteria import ParetoPoint, minimize_weighted, pareto_front
from repro.core.pricing import BudgetPolicy, DemandAdjustedPricing, ExponentialPricing
from repro.core.resource import DEFAULT_PRICE_BASE, Resource, price_of_performance
from repro.core.serialize import (
    Scenario,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.core.scheduler import (
    BatchScheduler,
    InfeasiblePolicy,
    ScheduleOutcome,
    SchedulerConfig,
)
from repro.core.index import SlotIndex
from repro.core.partition import partition_uids, shard_owners
from repro.core.search import (
    DEFAULT_SHARDS,
    SearchResult,
    SlotSearchAlgorithm,
    WindowFinder,
    find_alternatives,
)
from repro.core.shard_search import ShardedSearchExecutor
from repro.core.slot import Slot, SlotList
from repro.core.strategy import ScheduleStrategy, ScheduleVersion, build_strategy
from repro.core.timeline import (
    StepFunction,
    SupplySummary,
    alive_profile,
    concurrency_profile,
    supply_summary,
)
from repro.core.window import TaskAllocation, Window
from repro.core import alp, amp

__all__ = [
    # data model
    "Resource",
    "Slot",
    "SlotList",
    "TaskAllocation",
    "Window",
    "ResourceRequest",
    "Job",
    "Batch",
    # algorithms
    "alp",
    "amp",
    "SlotIndex",
    "SlotSearchAlgorithm",
    "WindowFinder",
    "find_alternatives",
    "SearchResult",
    "DEFAULT_SHARDS",
    "ShardedSearchExecutor",
    "partition_uids",
    "shard_owners",
    # optimization
    "Criterion",
    "CriteriaVector",
    "criteria_vector",
    "total_cost",
    "total_time",
    "Combination",
    "OptimizationBudget",
    "optimize",
    "minimize_time",
    "minimize_cost",
    "time_quota",
    "vo_budget",
    "brute_force",
    # future-work extensions
    "ScheduleStrategy",
    "ScheduleVersion",
    "build_strategy",
    "BatchStrategy",
    "BatchAssignment",
    "coallocate_batch",
    "ParetoPoint",
    "pareto_front",
    "minimize_weighted",
    # timeline diagnostics
    "StepFunction",
    "SupplySummary",
    "concurrency_profile",
    "alive_profile",
    "supply_summary",
    # serialization
    "Scenario",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
    # durable state
    "JournalRecord",
    "JournalWriter",
    "journal_header",
    "read_journal",
    "verify_record",
    "FileSystem",
    "REAL_FS",
    # auditing
    "Violation",
    "AuditError",
    "audit_windows",
    "audit_outcome",
    "require_valid",
    # scheduler façade
    "BatchScheduler",
    "SchedulerConfig",
    "ScheduleOutcome",
    "InfeasiblePolicy",
    # pricing
    "ExponentialPricing",
    "BudgetPolicy",
    "DemandAdjustedPricing",
    "price_of_performance",
    "DEFAULT_PRICE_BASE",
    # errors
    "RecoveryExhaustedError",
    "SchedulingError",
    "InvariantViolationError",
    "InvalidRequestError",
    "SlotListError",
    "WindowNotFoundError",
    "OptimizationError",
    "InfeasibleConstraintError",
    "AdmissionRejectedError",
    "PersistenceError",
    "JournalCorruptError",
    "JournalClosedError",
    "CheckpointMismatchError",
    "WorkerLostError",
]
