"""Windows — co-allocated sets of concurrent slots for one job.

A :class:`Window` is the outcome of a successful ALP/AMP search: ``N``
task placements on distinct resources that all *start synchronously* at
``window.start`` (Section 2: "tasks of the parallel job must start
synchronously").  On heterogeneous nodes the placements end at different
times, producing the paper's "window with a rough right edge"
(Fig. 1 (a)); the job's execution time is set by the slowest node.

Windows are immutable value objects.  They remember which vacant slot
each placement was carved from, so the alternative-search scheme can
subtract exactly the occupied spans from the slot list (Fig. 1 (b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.errors import InvalidRequestError
from repro.core.job import ResourceRequest
from repro.core.resource import Resource
from repro.core.slot import Slot

__all__ = ["TaskAllocation", "Window", "carved_allocation"]


def carved_allocation(source: Slot, start: float, end: float) -> TaskAllocation:
    """Construct a :class:`TaskAllocation` without re-validating containment.

    Trusted fast path for the indexed and sharded finders, whose scan
    invariants guarantee ``source.contains_span(start, end)``: a
    candidate is only admitted while ``end - window_start >= runtime``
    holds and rows are scanned in start order, so every emitted placement
    fits its source slot by construction.  The naive reference finders
    always construct through the validating ``__init__``, and the
    differential oracles pin both paths to identical windows.
    """
    allocation = object.__new__(TaskAllocation)
    object.__setattr__(allocation, "source", source)
    object.__setattr__(allocation, "start", start)
    object.__setattr__(allocation, "end", end)
    return allocation


def _allocation_uid(allocation: "TaskAllocation") -> int:
    return allocation.source.resource.uid


@dataclass(frozen=True, slots=True)
class TaskAllocation:
    """One task's placement inside a window.

    This is the paper's ``K'`` slot: it starts at the window start and
    lasts exactly the task's runtime on the chosen node.

    Attributes:
        source: The vacant slot the placement was carved from.
        start: Placement start (== the window start).
        end: Placement end (``start + runtime on source's node``).
    """

    source: Slot
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.source.contains_span(self.start, self.end):
            raise InvalidRequestError(
                f"allocation [{self.start:g}, {self.end:g}) escapes its source slot "
                f"[{self.source.start:g}, {self.source.end:g}) on {self.resource.name!r}"
            )

    @property
    def resource(self) -> Resource:
        """Node executing this task."""
        return self.source.resource

    @property
    def runtime(self) -> float:
        """Actual task runtime on this node."""
        return self.end - self.start

    @property
    def cost(self) -> float:
        """Cost of this placement: ``price per unit × runtime``."""
        return self.source.price * self.runtime

    @property
    def unit_price(self) -> float:
        """Price per time unit of the underlying slot."""
        return self.source.price


class Window:
    """A co-allocation of ``N`` synchronous task placements (paper's ``Window``).

    Attributes mirror the paper's ``Window`` class: total cost, start and
    end times, time span, the number of slots, and the slots themselves
    (here: :class:`TaskAllocation` objects, which also remember their
    source vacant slots).
    """

    __slots__ = ("_request", "_allocations", "_end", "_cost")

    def __init__(self, request: ResourceRequest, allocations: Sequence[TaskAllocation]) -> None:
        if len(allocations) != request.node_count:
            raise InvalidRequestError(
                f"window needs exactly {request.node_count} allocations, got {len(allocations)}"
            )
        starts = {allocation.start for allocation in allocations}
        if len(starts) != 1:
            raise InvalidRequestError(
                f"window tasks must start synchronously, got starts {sorted(starts)}"
            )
        resources = {allocation.resource.uid for allocation in allocations}
        if len(resources) != len(allocations):
            raise InvalidRequestError("window tasks must run on distinct resources")
        self._request = request
        self._allocations = tuple(
            sorted(allocations, key=lambda a: (a.resource.uid, a.start))
        )
        # Lazily cached aggregates — allocations are immutable, so the
        # first computed value stays valid for the window's lifetime.
        self._end: float | None = None
        self._cost: float | None = None

    @classmethod
    def from_scan(cls, request: ResourceRequest, allocations: Sequence[TaskAllocation]) -> "Window":
        """Construct a window from a finder's scan without re-validating.

        Trusted fast path for the indexed and sharded finders: the scan
        emits exactly ``node_count`` placements sharing one start, and
        distinct resources follow from same-resource slots being
        disjoint (two allocations covering the same start on one
        resource would need overlapping vacant slots).  Sorting only by
        resource uid matches ``__init__``'s ``(uid, start)`` order
        because all starts are equal.  The naive reference finders
        always construct through the validating ``__init__``.
        """
        window = object.__new__(cls)
        window._request = request
        window._allocations = tuple(sorted(allocations, key=_allocation_uid))
        window._end = None
        window._cost = None
        return window

    # ------------------------------------------------------------------ #
    # Paper's Window fields                                              #
    # ------------------------------------------------------------------ #

    @property
    def request(self) -> ResourceRequest:
        """The request this window satisfies."""
        return self._request

    @property
    def allocations(self) -> tuple[TaskAllocation, ...]:
        """Task placements, ordered by resource uid."""
        return self._allocations

    @property
    def slots_number(self) -> int:
        """Number of co-allocated slots ``N``."""
        return len(self._allocations)

    @property
    def start(self) -> float:
        """Synchronous start time of all tasks."""
        return self._allocations[0].start

    @property
    def end(self) -> float:
        """End of the *longest* placement (the rough right edge)."""
        end = self._end
        if end is None:
            end = max(allocation.end for allocation in self._allocations)
            self._end = end
        return end

    @property
    def length(self) -> float:
        """The job execution time ``t_i(s̄_i)``: span set by the slowest node."""
        return self.end - self.start

    @property
    def cost(self) -> float:
        """Total usage cost ``c_i(s̄_i)``: sum of placement costs."""
        cost = self._cost
        if cost is None:
            cost = sum(allocation.cost for allocation in self._allocations)
            self._cost = cost
        return cost

    @property
    def unit_cost(self) -> float:
        """Sum of per-time-unit prices of the window's slots.

        For uniform-performance environments (as in the worked example of
        Section 4) the window is rectangular and
        ``cost == unit_cost × length``; the example's "maximum total
        window cost per time" constraints are bounds on this value.
        """
        return sum(allocation.unit_price for allocation in self._allocations)

    # ------------------------------------------------------------------ #
    # Derived views                                                      #
    # ------------------------------------------------------------------ #

    def resources(self) -> tuple[Resource, ...]:
        """Nodes used by the window, ordered by uid."""
        return tuple(allocation.resource for allocation in self._allocations)

    def occupied_spans(self) -> Iterator[tuple[Resource, float, float]]:
        """Spans ``(resource, start, end)`` to subtract from a slot list."""
        for allocation in self._allocations:
            yield (allocation.resource, allocation.start, allocation.end)

    def intersects(self, other: "Window") -> bool:
        """Whether two windows share processor time on some resource."""
        mine = {allocation.resource.uid: allocation for allocation in self._allocations}
        for allocation in other._allocations:
            twin = mine.get(allocation.resource.uid)
            if twin is not None and allocation.start < twin.end and twin.start < allocation.end:
                return True
        return False

    def satisfies(self, request: ResourceRequest | None = None, *, budget: float | None = None) -> bool:
        """Check the full co-allocation contract (used by tests and audits).

        Verifies node count, synchronous start, distinct resources (by
        construction), minimum performance, per-task runtime, and — when
        ``budget`` is given — the AMP budget; otherwise the per-slot price
        cap of ALP.
        """
        request = request or self._request
        if len(self._allocations) != request.node_count:
            return False
        for allocation in self._allocations:
            if not request.admits_performance(allocation.resource):
                return False
            expected = request.runtime_on(allocation.resource)
            if abs(allocation.runtime - expected) > 1e-9 * max(1.0, expected):
                return False
            if budget is None and not request.admits_price(allocation.source):
                return False
        if budget is not None and self.cost > budget * (1 + 1e-12):
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Window):
            return NotImplemented
        return self._allocations == other._allocations

    def __hash__(self) -> int:
        return hash(self._allocations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nodes = ",".join(resource.name for resource in self.resources())
        return (
            f"Window([{self.start:g}, {self.end:g}) on {nodes}, "
            f"cost={self.cost:g}, unit_cost={self.unit_cost:g})"
        )
