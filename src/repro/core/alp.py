"""ALP — Algorithm based on Local Price of slots (paper Section 3).

ALP finds the *earliest* window of ``N`` concurrent slots for one job by a
single forward scan over the ordered vacant-slot list, restricting the
price of every **individual** slot to the user's maximum price ``C``
(condition 2°c).  Complexity is linear in the number of slots ``m``: the
scan only moves forward, and every slot is added to and removed from the
candidate window at most once.

The scan keeps a *candidate window* — the suited slots that are still
alive at the tentative window start ``T_last`` (the start time of the
last added slot).  When the scan advances, candidates whose remaining
length no longer covers their task's runtime *expire* and are dropped
(step 3°).  The first moment the candidate window holds ``N`` slots, the
window is formed with the synchronous start ``T_last``.

The same scan, with the price condition switched off, is the first step
of AMP (:mod:`repro.core.amp`), so the candidate-window machinery is
shared through :class:`ForwardScan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import InvalidRequestError, WindowNotFoundError
from repro.core.job import ResourceRequest
from repro.core.slot import Slot, SlotList
from repro.core.window import TaskAllocation, Window
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = ["ForwardScan", "find_window", "require_window", "slot_is_suited"]


def slot_is_suited(slot: Slot, request: ResourceRequest, *, check_price: bool) -> bool:
    """Static suitability of one slot for one request (conditions 2°a-2°c).

    Checks the minimum performance (2°a), that the slot is long enough for
    the task's runtime on its node at the slot's *own* start (2°b), and —
    when ``check_price`` — the individual price cap (2°c).  Dynamic expiry
    relative to the moving window start is handled by the scan itself.
    """
    if not request.admits_performance(slot.resource):
        return False
    if check_price and not request.admits_price(slot):
        return False
    return slot.length >= request.runtime_on(slot.resource)


@dataclass
class ForwardScan:
    """Mutable candidate-window state of the ALP/AMP forward scan.

    Attributes:
        request: The request being served.
        check_price: Whether condition 2°c (per-slot price cap) applies.
        candidates: Suited slots alive at ``window_start``.
        window_start: ``T_last`` — the start of the last added slot, i.e.
            the tentative synchronous start of the window being built.
    """

    request: ResourceRequest
    check_price: bool = True
    candidates: list[Slot] = field(default_factory=list)
    window_start: float = float("-inf")

    def offer(self, slot: Slot) -> bool:
        """Examine the next slot of the ordered list (step 2°).

        Returns ``True`` when the slot was suited and joined the candidate
        window.  Advancing the window start to the new slot's start also
        expires candidates per step 3° — including, automatically, any
        earlier slot on the same resource, whose vacancy necessarily ended
        before the new slot began.
        """
        if not slot_is_suited(slot, self.request, check_price=self.check_price):
            return False
        self.advance_to(slot.start)
        self.candidates.append(slot)
        return True

    def advance_to(self, time: float) -> None:
        """Move the tentative window start forward and expire candidates.

        Expiry (step 3°): a candidate ``c`` survives only while
        ``c.end - T_last >= runtime on c's node``, i.e. while a task
        starting at ``T_last`` still finishes inside the slot.
        """
        if time < self.window_start:
            raise InvalidRequestError(
                f"forward scan cannot move backwards: {time!r} < {self.window_start!r}"
            )
        self.window_start = time
        self.candidates = [
            candidate
            for candidate in self.candidates
            if candidate.remaining_from(time) >= self.request.runtime_on(candidate.resource)
        ]

    @property
    def size(self) -> int:
        """Current number of slots in the candidate window (``N_S``)."""
        return len(self.candidates)

    def build_window(self, chosen: list[Slot] | None = None) -> Window:
        """Materialise a :class:`Window` from candidate slots.

        With ``chosen`` omitted, uses the whole candidate list (the ALP
        case, where the list holds exactly ``N`` slots).  The synchronous
        start is the latest start among the chosen slots — never later
        than ``window_start``, at which every candidate was verified
        alive, so the resulting placements are guaranteed to fit.
        """
        slots = self.candidates if chosen is None else chosen
        start = max(slot.start for slot in slots)
        allocations = [
            TaskAllocation(slot, start, start + self.request.runtime_on(slot.resource))
            for slot in slots
        ]
        return Window(self.request, allocations)


def find_window(slot_list: SlotList, request: ResourceRequest, *, check_price: bool = True) -> Window | None:
    """Run ALP for a single job over ``slot_list`` (paper steps 1°-5°).

    Args:
        slot_list: The ordered list of vacant slots.  Not modified; the
            caller subtracts the returned window if it commits to it.
        request: The job's resource request.
        check_price: Apply condition 2°c.  AMP's first step reuses this
            function with ``check_price=False``.

    Returns:
        The earliest-start window of ``request.node_count`` slots, or
        ``None`` when the scan runs out of slots first (the job is then
        postponed to the next scheduling iteration).
    """
    telemetry = get_telemetry()
    if telemetry.enabled:
        return _find_window_instrumented(telemetry, slot_list, request, check_price)
    # Disabled-telemetry fast path: the per-slot loop must stay exactly
    # as cheap as the uninstrumented algorithm, so the single enabled
    # check above is the only cost this function ever adds by default.
    scan = ForwardScan(request, check_price=check_price)
    for slot in slot_list:
        if not scan.offer(slot):
            continue
        if scan.size == request.node_count:
            return scan.build_window()
    return None


def _find_window_instrumented(
    telemetry: Telemetry, slot_list: SlotList, request: ResourceRequest, check_price: bool
) -> Window | None:
    """The :func:`find_window` loop with scan accounting (telemetry on).

    Counts are accumulated in locals and flushed to the registry once
    per search, so even the instrumented loop adds only integer
    arithmetic per slot.
    """
    scan = ForwardScan(request, check_price=check_price)
    decisions = telemetry.decisions
    record_decisions = decisions.enabled
    scanned = 0
    suited = 0
    pruned_performance = 0
    pruned_price = 0
    pruned_length = 0
    window: Window | None = None
    for slot in slot_list:
        scanned += 1
        if not scan.offer(slot):
            if record_decisions:
                # Classify the prune reason in check order (2°a → 2°c →
                # 2°b); only paid when decision logging is on.
                if not request.admits_performance(slot.resource):
                    pruned_performance += 1
                elif check_price and not request.admits_price(slot):
                    pruned_price += 1
                else:
                    pruned_length += 1
            continue
        suited += 1
        if scan.size == request.node_count:
            window = scan.build_window()
            break
    telemetry.count("search.slots_scanned", scanned, algo="alp")
    telemetry.count("search.slots_suited", suited, algo="alp")
    telemetry.observe("search.scan_depth", scanned, algo="alp")
    if window is not None:
        telemetry.count("search.windows_found", 1, algo="alp")
    else:
        telemetry.count("search.windows_missed", 1, algo="alp")
    if record_decisions:
        if window is not None:
            decisions.emit(
                "alp.window",
                start=window.start,
                length=window.length,
                cost=window.cost,
                scanned=scanned,
                suited=suited,
                pruned_price=pruned_price,
                pruned_performance=pruned_performance,
                pruned_length=pruned_length,
            )
        else:
            decisions.emit(
                "alp.no_window",
                scanned=scanned,
                suited=suited,
                pruned_price=pruned_price,
                pruned_performance=pruned_performance,
                pruned_length=pruned_length,
            )
    return window


def require_window(slot_list: SlotList, request: ResourceRequest, *, check_price: bool = True, job_name: str | None = None) -> Window:
    """Like :func:`find_window` but raises on failure.

    Raises:
        WindowNotFoundError: When no suitable window exists.
    """
    window = find_window(slot_list, request, check_price=check_price)
    if window is None:
        raise WindowNotFoundError(
            f"ALP found no window of {request.node_count} slots "
            f"(volume {request.volume:g}, P>={request.min_performance:g}, "
            f"C<={request.max_price:g}) in a list of {len(slot_list)} slots",
            job_name=job_name,
        )
    return window
