"""Multi-pass search for alternative slot sets (paper Section 2).

One scheduling iteration must supply *several* execution alternatives per
job so that the phase-2 optimizer has something to choose between.  The
scheme is:

* walk the batch in priority order; for each job, find one window with
  the configured algorithm (ALP or AMP);
* on success, *subtract* the window's occupied spans from the vacant-slot
  list, so that later alternatives — of this job and of every other job —
  never intersect it in processor time;
* after the last job, start over from the first job on the modified
  list; stop when a full pass over the batch finds no window for any
  job.

Because every found window removes a positive amount of vacant processor
time, the scheme always terminates.  The resulting alternatives are
mutually disjoint, so *any* combination choosing one window per job is
simultaneously realisable — the property the phase-2 dynamic programming
relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Mapping

from repro.core import alp, amp
from repro.core.errors import InvalidRequestError
from repro.core.index import NEG_INF, SlotIndex
from repro.core.job import Batch, Job, ResourceRequest
from repro.core.shard_search import ShardedSearchExecutor
from repro.core.slot import SlotList
from repro.core.window import Window
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = [
    "SlotSearchAlgorithm",
    "SearchResult",
    "find_alternatives",
    "WindowFinder",
    "DEFAULT_SHARDS",
]

#: Default search path for :func:`find_alternatives` when ``use_index`` is
#: not given.  The indexed path is window-for-window equivalent to the
#: reference scan (``tests/test_reference_oracles.py``); flipping this to
#: ``False`` restores the naive O(m)-rescan path everywhere — the escape
#: hatch the benchmarks use to measure the speedup against the seed
#: behaviour.
DEFAULT_USE_INDEX = True

#: Default shard count for :func:`find_alternatives` when ``shards`` is
#: not given: the phase-1 scan stays serial unless a caller opts into the
#: partition-parallel path (``shards > 1``), which is byte-identical to
#: serial (``tests/test_reference_oracles.py``) but only pays off on
#: fleet-scale slot lists (see docs/benchmarks.md).
DEFAULT_SHARDS = 1

#: Signature of a pluggable single-window search: takes the current slot
#: list and a request, returns a window or ``None``.
WindowFinder = Callable[[SlotList, ResourceRequest], "Window | None"]


class SlotSearchAlgorithm(enum.Enum):
    """The two slot-search algorithms proposed by the paper."""

    ALP = "alp"
    AMP = "amp"

    def finder(self, *, rho: float = 1.0) -> WindowFinder:
        """A :data:`WindowFinder` for this algorithm.

        Args:
            rho: Budget-shrink factor of the Section 6 extension
                (``S = ρ · C · t · N``).  Only meaningful for AMP; ALP
                ignores it because its price cap is per-slot.
        """
        if self is SlotSearchAlgorithm.ALP:
            return lambda slots, request: alp.find_window(slots, request)
        return lambda slots, request: amp.find_window(
            slots, request, budget=request.scaled_budget(rho)
        )


@dataclass
class SearchResult:
    """Outcome of one alternative-search phase for a whole batch.

    Attributes:
        alternatives: For every job of the batch, its alternative windows
            in discovery order (possibly empty).
        remaining_slots: The vacant-slot list after all subtractions.
        passes: Number of complete passes over the batch, including the
            final empty pass that stopped the search.
    """

    alternatives: dict[Job, list[Window]]
    remaining_slots: SlotList
    passes: int

    @property
    def total_alternatives(self) -> int:
        """Total number of windows found across the whole batch."""
        return sum(len(windows) for windows in self.alternatives.values())

    @property
    def mean_alternatives_per_job(self) -> float:
        """Average number of alternatives per job (paper's ~7.39 vs ~34.28)."""
        if not self.alternatives:
            return 0.0
        return self.total_alternatives / len(self.alternatives)

    def jobs_without_alternatives(self) -> list[Job]:
        """Jobs whose scheduling must be postponed to the next iteration."""
        return [job for job, windows in self.alternatives.items() if not windows]

    def all_jobs_covered(self) -> bool:
        """Whether every job of the batch has at least one alternative.

        The paper's simulation study only counts experiments where this
        holds for the algorithms being compared.
        """
        return all(self.alternatives.values())

    def counts_by_job(self) -> Mapping[str, int]:
        """Alternative counts keyed by job name (diagnostic view)."""
        return {job.name: len(windows) for job, windows in self.alternatives.items()}


def find_alternatives(
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm | WindowFinder = SlotSearchAlgorithm.AMP,
    *,
    rho: float = 1.0,
    max_passes: int | None = None,
    max_alternatives_per_job: int | None = None,
    use_index: bool | None = None,
    shards: int | None = None,
    shard_processes: bool | None = None,
) -> SearchResult:
    """Find alternative windows for every job of ``batch``.

    Args:
        slot_list: Vacant slots of the current scheduling iteration.  The
            input list is left untouched; the search works on a copy.
        batch: Jobs in priority order.
        algorithm: One of :class:`SlotSearchAlgorithm`, or any custom
            :data:`WindowFinder` callable (used by the baselines and by
            ablation experiments).
        rho: AMP budget-shrink factor (Section 6 extension).
        max_passes: Optional safety cap on batch passes; ``None`` runs
            until a pass finds nothing (the paper's stopping rule).
        max_alternatives_per_job: Optional cap on alternatives collected
            per job; jobs at the cap are skipped in later passes.
        use_index: Run the phase-1 scans through the shared
            :class:`~repro.core.index.SlotIndex` (default: the module's
            :data:`DEFAULT_USE_INDEX`).  The indexed path produces
            bit-for-bit the same windows as the reference scan; it is
            bypassed automatically for custom finder callables and — when
            left at the default — for telemetry-instrumented runs, where
            the per-slot scan counters of the reference path are part of
            the contract.  An *explicit* ``use_index=True`` under enabled
            telemetry runs the instrumented indexed scheme instead
            (phase timers, start-hint prune accounting).
        shards: Partition-parallel phase-1 search over this many node
            shards (default :data:`DEFAULT_SHARDS`, i.e. serial).  The
            sharded path is byte-identical to serial for every shard
            count and requires the indexed scheme: ``shards > 1`` with
            an explicit ``use_index=False`` is rejected, and — because a
            default ``use_index`` under enabled telemetry selects the
            *serial* instrumented reference path — ``shards > 1`` with
            default ``use_index`` and enabled telemetry raises
            :class:`InvalidRequestError` instead of silently degrading;
            pass ``use_index=True`` to run the instrumented sharded
            search.  Custom finder callables cannot be partitioned.
        shard_processes: Force shard worker processes on/off; ``None``
            (default) runs the shards in-process, which the EXP-SHARD
            benchmark shows is the faster mode for multi-pass searches
            at every slot-list size (memoized shard scans are cheaper
            than pipe round-trips).  Only meaningful with ``shards > 1``.
    """
    if max_passes is not None and max_passes < 1:
        raise InvalidRequestError(f"max_passes must be >= 1, got {max_passes!r}")
    if max_alternatives_per_job is not None and max_alternatives_per_job < 1:
        raise InvalidRequestError(
            f"max_alternatives_per_job must be >= 1, got {max_alternatives_per_job!r}"
        )
    telemetry = get_telemetry()
    if shards is None:
        shards = DEFAULT_SHARDS
    elif shards < 1:
        raise InvalidRequestError(f"shards must be >= 1, got {shards!r}")
    if shard_processes is not None and shards == 1:
        raise InvalidRequestError(
            f"shard_processes={shard_processes!r} is meaningless with shards=1; "
            "pass shards > 1 to enable the partition-parallel search"
        )
    if shards > 1:
        if not isinstance(algorithm, SlotSearchAlgorithm):
            raise InvalidRequestError(
                "sharded search supports only the built-in ALP/AMP algorithms; "
                "a custom window finder cannot be partitioned"
            )
        if use_index is None:
            if telemetry.enabled:
                raise InvalidRequestError(
                    "shards > 1 with default use_index under enabled telemetry "
                    "would silently fall back to the serial instrumented "
                    "reference path; pass use_index=True to run the "
                    "instrumented sharded search"
                )
        elif not use_index:
            raise InvalidRequestError(
                "sharded search runs on the indexed scheme; use_index=False "
                "is incompatible with shards > 1"
            )
        if telemetry.enabled:
            return _find_alternatives_sharded_instrumented(
                telemetry,
                slot_list,
                batch,
                algorithm,
                rho=rho,
                max_passes=max_passes,
                max_alternatives_per_job=max_alternatives_per_job,
                shards=shards,
                processes=shard_processes,
            )
        return _find_alternatives_sharded(
            slot_list,
            batch,
            algorithm,
            rho=rho,
            max_passes=max_passes,
            max_alternatives_per_job=max_alternatives_per_job,
            shards=shards,
            processes=shard_processes,
        )
    if use_index is None:
        use_index = DEFAULT_USE_INDEX
        index_allowed = not telemetry.enabled
    else:
        index_allowed = True
    if use_index and isinstance(algorithm, SlotSearchAlgorithm) and index_allowed:
        if telemetry.enabled:
            return _find_alternatives_indexed_instrumented(
                telemetry,
                slot_list,
                batch,
                algorithm,
                rho=rho,
                max_passes=max_passes,
                max_alternatives_per_job=max_alternatives_per_job,
            )
        return _find_alternatives_indexed(
            slot_list,
            batch,
            algorithm,
            rho=rho,
            max_passes=max_passes,
            max_alternatives_per_job=max_alternatives_per_job,
        )
    finder = (
        algorithm.finder(rho=rho)
        if isinstance(algorithm, SlotSearchAlgorithm)
        else algorithm
    )
    algo_label = (
        algorithm.value if isinstance(algorithm, SlotSearchAlgorithm) else "custom"
    )
    if telemetry.enabled:
        return _find_alternatives_instrumented(
            telemetry,
            slot_list,
            batch,
            finder,
            algo_label,
            max_passes=max_passes,
            max_alternatives_per_job=max_alternatives_per_job,
        )
    # Disabled-telemetry fast path: one enabled check per batch search is
    # the only cost telemetry ever adds here.
    working = slot_list.copy()
    alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
    passes = 0
    while max_passes is None or passes < max_passes:
        passes += 1
        found_any = False
        for job in batch:
            windows = alternatives[job]
            if (
                max_alternatives_per_job is not None
                and len(windows) >= max_alternatives_per_job
            ):
                continue
            window = finder(working, job.request)
            if window is None:
                continue
            for resource, start, end in window.occupied_spans():
                working.subtract(resource, start, end)
            windows.append(window)
            found_any = True
        if not found_any:
            break
    return SearchResult(
        alternatives=alternatives, remaining_slots=working, passes=passes
    )


def _flush_batch_metrics(
    telemetry: Telemetry, result: SearchResult, algo_label: str
) -> None:
    """Batch-level search counters shared by both instrumented paths."""
    if not telemetry.enabled:
        return
    telemetry.count("search.batches", 1, algo=algo_label)
    telemetry.count("search.passes", result.passes, algo=algo_label)
    telemetry.count(
        "search.windows_collected", result.total_alternatives, algo=algo_label
    )
    telemetry.count(
        "search.jobs_uncovered",
        len(result.jobs_without_alternatives()),
        algo=algo_label,
    )
    for windows in result.alternatives.values():
        telemetry.observe("search.alternatives_per_job", len(windows), algo=algo_label)


def _find_alternatives_instrumented(
    telemetry: Telemetry,
    slot_list: SlotList,
    batch: Batch,
    finder: WindowFinder,
    algo_label: str,
    *,
    max_passes: int | None,
    max_alternatives_per_job: int | None,
) -> SearchResult:
    """The reference multi-pass loop with telemetry on.

    Adds the phase-1 span, the per-phase wall timers (window scans vs
    cross-job slot subtraction, flushed once per batch into
    ``phase.seconds``), and — when decision logging is on — a ``job=``
    scope around every finder call, so the ALP/AMP decision records
    carry the job they were searching for, plus one
    ``search.alternative_accepted`` record per committed window.
    """
    decisions = telemetry.decisions
    record_decisions = decisions.enabled
    scan_seconds = 0.0
    subtract_seconds = 0.0
    with telemetry.span("phase1.find_alternatives", algo=algo_label, jobs=len(batch)):
        working = slot_list.copy()
        alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
        passes = 0
        while max_passes is None or passes < max_passes:
            passes += 1
            found_any = False
            for job in batch:
                windows = alternatives[job]
                if (
                    max_alternatives_per_job is not None
                    and len(windows) >= max_alternatives_per_job
                ):
                    continue
                if record_decisions:
                    with decisions.scope(job=job.name):
                        began = perf_counter()
                        window = finder(working, job.request)
                        scan_seconds += perf_counter() - began
                else:
                    began = perf_counter()
                    window = finder(working, job.request)
                    scan_seconds += perf_counter() - began
                if window is None:
                    continue
                began = perf_counter()
                for resource, start, end in window.occupied_spans():
                    working.subtract(resource, start, end)
                subtract_seconds += perf_counter() - began
                windows.append(window)
                found_any = True
                if record_decisions:
                    decisions.emit(
                        "search.alternative_accepted",
                        job=job.name,
                        alternative=len(windows),
                        search_pass=passes,
                        start=window.start,
                        cost=window.cost,
                    )
            if not found_any:
                break
        result = SearchResult(
            alternatives=alternatives, remaining_slots=working, passes=passes
        )
        _flush_batch_metrics(telemetry, result, algo_label)
        telemetry.observe("phase.seconds", scan_seconds, phase="phase1.scan")
        telemetry.observe("phase.seconds", subtract_seconds, phase="phase1.subtract")
        return result


def _find_alternatives_indexed(
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    *,
    rho: float,
    max_passes: int | None,
    max_alternatives_per_job: int | None,
) -> SearchResult:
    """The multi-pass scheme over a shared :class:`SlotIndex`.

    Window-for-window equivalent to the reference loop in
    :func:`find_alternatives`: the index replays the same scans over
    primitive rows, subtraction is incremental, and per-job ``start_hint``
    values exploit the monotonicity of window starts across passes (slot
    subtraction only removes vacant time, so a job's next window can
    never start before its previous one).
    """
    index = SlotIndex(slot_list)
    is_amp = algorithm is SlotSearchAlgorithm.AMP
    budgets = (
        {job: job.request.scaled_budget(rho) for job in batch} if is_amp else {}
    )
    hints: dict[Job, float] = {job: NEG_INF for job in batch}
    alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
    # ALP-only: once a job's search comes back empty it stays empty for
    # the rest of this batch search — later passes only *subtract* vacant
    # time, and an ALP window over fragments maps candidate-for-candidate
    # onto the containing rows of any earlier state, so a window
    # appearing later would have been found now.  AMP is excluded: its
    # budget test fires only at row-start events >= the hint, and
    # subtraction mints new row starts (fragment boundaries), so an AMP
    # failure is not stable under further subtraction.
    exhausted: set[Job] = set()
    passes = 0
    while max_passes is None or passes < max_passes:
        passes += 1
        found_any = False
        for job in batch:
            if job in exhausted:
                continue
            windows = alternatives[job]
            if (
                max_alternatives_per_job is not None
                and len(windows) >= max_alternatives_per_job
            ):
                continue
            if is_amp:
                found = index.find_amp_window_at(
                    job.request, budget=budgets[job], start_hint=hints[job]
                )
                if found is None:
                    continue
                window, event_time = found
            else:
                window = index.find_alp_window(job.request, start_hint=hints[job])
                if window is None:
                    exhausted.add(job)
                    continue
                event_time = window.start
            index.commit(window)
            hints[job] = event_time
            windows.append(window)
            found_any = True
        if not found_any:
            break
    return SearchResult(
        alternatives=alternatives, remaining_slots=index.slot_list(), passes=passes
    )


def _find_alternatives_indexed_instrumented(
    telemetry: Telemetry,
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    *,
    rho: float,
    max_passes: int | None,
    max_alternatives_per_job: int | None,
) -> SearchResult:
    """The indexed multi-pass scheme with telemetry on.

    Only reached by an *explicit* ``use_index=True`` under enabled
    telemetry.  Window-for-window equivalent to
    :func:`_find_alternatives_indexed` — the timers and counters live
    outside the finders — while attributing wall time to the index scan
    and the incremental subtraction, and, when decision logging is on,
    recording both monotone start-hint prune tiers per search (the extra
    ``O(m)`` :meth:`~repro.core.index.SlotIndex.hint_prunes` count is
    only paid under decision logging, never on the hot path).
    """
    decisions = telemetry.decisions
    record_decisions = decisions.enabled
    scan_seconds = 0.0
    subtract_seconds = 0.0
    hint_skips = 0
    runtime_skips = 0
    with telemetry.span(
        "phase1.find_alternatives",
        algo=algorithm.value,
        jobs=len(batch),
        indexed=True,
    ):
        index = SlotIndex(slot_list)
        is_amp = algorithm is SlotSearchAlgorithm.AMP
        budgets = (
            {job: job.request.scaled_budget(rho) for job in batch} if is_amp else {}
        )
        hints: dict[Job, float] = {job: NEG_INF for job in batch}
        alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
        # Same ALP-only exhausted-job rule as _find_alternatives_indexed
        # (see the comment there); the sharded instrumented path applies
        # it identically, keeping the canonical traces equal.
        exhausted: set[Job] = set()
        passes = 0
        while max_passes is None or passes < max_passes:
            passes += 1
            found_any = False
            for job in batch:
                if job in exhausted:
                    continue
                windows = alternatives[job]
                if (
                    max_alternatives_per_job is not None
                    and len(windows) >= max_alternatives_per_job
                ):
                    continue
                if record_decisions:
                    skipped, runtime_skipped = index.hint_prunes(
                        job.request,
                        start_hint=hints[job],
                        check_price=not is_amp,
                    )
                    hint_skips += skipped
                    runtime_skips += runtime_skipped
                else:
                    skipped = 0
                    runtime_skipped = 0
                began = perf_counter()
                if is_amp:
                    found = index.find_amp_window_at(
                        job.request, budget=budgets[job], start_hint=hints[job]
                    )
                else:
                    alp_window = index.find_alp_window(
                        job.request, start_hint=hints[job]
                    )
                    found = (
                        None if alp_window is None else (alp_window, alp_window.start)
                    )
                scan_seconds += perf_counter() - began
                if found is None:
                    if not is_amp:
                        exhausted.add(job)
                    if record_decisions:
                        decisions.emit(
                            "index.no_window",
                            job=job.name,
                            search_pass=passes,
                            hint_skips=skipped,
                            hint_runtime_skips=runtime_skipped,
                        )
                    continue
                window, event_time = found
                began = perf_counter()
                index.commit(window)
                subtract_seconds += perf_counter() - began
                hints[job] = event_time
                windows.append(window)
                found_any = True
                if record_decisions:
                    decisions.emit(
                        "search.alternative_accepted",
                        job=job.name,
                        alternative=len(windows),
                        search_pass=passes,
                        start=window.start,
                        cost=window.cost,
                        hint_skips=skipped,
                        hint_runtime_skips=runtime_skipped,
                    )
            if not found_any:
                break
        result = SearchResult(
            alternatives=alternatives, remaining_slots=index.slot_list(), passes=passes
        )
        _flush_batch_metrics(telemetry, result, algorithm.value)
        telemetry.count("search.hint_skips", hint_skips, algo=algorithm.value)
        telemetry.count(
            "search.hint_runtime_skips", runtime_skips, algo=algorithm.value
        )
        telemetry.observe("phase.seconds", scan_seconds, phase="phase1.index_scan")
        telemetry.observe("phase.seconds", subtract_seconds, phase="phase1.subtract")
        return result


def _find_alternatives_sharded(
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    *,
    rho: float,
    max_passes: int | None,
    max_alternatives_per_job: int | None,
    shards: int,
    processes: bool | None,
) -> SearchResult:
    """The multi-pass scheme over a partition-parallel executor.

    Identical control flow to :func:`_find_alternatives_indexed` with the
    :class:`~repro.core.shard_search.ShardedSearchExecutor` standing in
    for the :class:`SlotIndex` — the executor's finders merge per-shard
    survivor streams back into global scan order, so every window, hint,
    and remaining slot is byte-identical to the serial path.
    """
    executor = ShardedSearchExecutor(slot_list, shards, processes=processes)
    try:
        is_amp = algorithm is SlotSearchAlgorithm.AMP
        budgets = (
            {job: job.request.scaled_budget(rho) for job in batch} if is_amp else {}
        )
        hints: dict[Job, float] = {job: NEG_INF for job in batch}
        alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
        # Same ALP-only exhausted-job rule as _find_alternatives_indexed
        # (see the comment there).
        exhausted: set[Job] = set()
        passes = 0
        while max_passes is None or passes < max_passes:
            passes += 1
            found_any = False
            for job in batch:
                if job in exhausted:
                    continue
                windows = alternatives[job]
                if (
                    max_alternatives_per_job is not None
                    and len(windows) >= max_alternatives_per_job
                ):
                    continue
                if is_amp:
                    found = executor.find_amp_window_at(
                        job.request, budget=budgets[job], start_hint=hints[job]
                    )
                    if found is None:
                        continue
                    window, event_time = found
                else:
                    window = executor.find_alp_window(
                        job.request, start_hint=hints[job]
                    )
                    if window is None:
                        exhausted.add(job)
                        continue
                    event_time = window.start
                executor.commit(window)
                hints[job] = event_time
                windows.append(window)
                found_any = True
            if not found_any:
                break
        return SearchResult(
            alternatives=alternatives,
            remaining_slots=executor.slot_list(),
            passes=passes,
        )
    finally:
        executor.close()


def _find_alternatives_sharded_instrumented(
    telemetry: Telemetry,
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    *,
    rho: float,
    max_passes: int | None,
    max_alternatives_per_job: int | None,
    shards: int,
    processes: bool | None,
) -> SearchResult:
    """The partition-parallel scheme with telemetry on.

    Emits exactly the surface of
    :func:`_find_alternatives_indexed_instrumented` — same span
    attributes, counters, decision records, and hint-skip accounting
    (per-shard counts sum to the serial value) — so ``canonical_trace``
    of a sharded run equals the serial indexed run's.  The only sharded
    extras are per-shard ``phase.seconds`` timings, which the canonical
    form strips along with every other duration.
    """
    decisions = telemetry.decisions
    record_decisions = decisions.enabled
    scan_seconds = 0.0
    subtract_seconds = 0.0
    hint_skips = 0
    runtime_skips = 0
    with telemetry.span(
        "phase1.find_alternatives",
        algo=algorithm.value,
        jobs=len(batch),
        indexed=True,
    ):
        executor = ShardedSearchExecutor(slot_list, shards, processes=processes)
        try:
            is_amp = algorithm is SlotSearchAlgorithm.AMP
            budgets = (
                {job: job.request.scaled_budget(rho) for job in batch}
                if is_amp
                else {}
            )
            hints: dict[Job, float] = {job: NEG_INF for job in batch}
            alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
            # Same ALP-only exhausted-job rule as the serial indexed
            # paths (see _find_alternatives_indexed).
            exhausted: set[Job] = set()
            passes = 0
            while max_passes is None or passes < max_passes:
                passes += 1
                found_any = False
                for job in batch:
                    if job in exhausted:
                        continue
                    windows = alternatives[job]
                    if (
                        max_alternatives_per_job is not None
                        and len(windows) >= max_alternatives_per_job
                    ):
                        continue
                    began = perf_counter()
                    if is_amp:
                        found = executor.find_amp_window_at(
                            job.request,
                            budget=budgets[job],
                            start_hint=hints[job],
                            count_skips=record_decisions,
                        )
                    else:
                        alp_window = executor.find_alp_window(
                            job.request,
                            start_hint=hints[job],
                            count_skips=record_decisions,
                        )
                        found = (
                            None
                            if alp_window is None
                            else (alp_window, alp_window.start)
                        )
                    scan_seconds += perf_counter() - began
                    if record_decisions:
                        skipped = executor.last_hint_skips
                        runtime_skipped = executor.last_runtime_skips
                    else:
                        skipped = 0
                        runtime_skipped = 0
                    hint_skips += skipped
                    runtime_skips += runtime_skipped
                    if found is None:
                        if not is_amp:
                            exhausted.add(job)
                        if record_decisions:
                            decisions.emit(
                                "index.no_window",
                                job=job.name,
                                search_pass=passes,
                                hint_skips=skipped,
                                hint_runtime_skips=runtime_skipped,
                            )
                        continue
                    window, event_time = found
                    began = perf_counter()
                    executor.commit(window)
                    subtract_seconds += perf_counter() - began
                    hints[job] = event_time
                    windows.append(window)
                    found_any = True
                    if record_decisions:
                        decisions.emit(
                            "search.alternative_accepted",
                            job=job.name,
                            alternative=len(windows),
                            search_pass=passes,
                            start=window.start,
                            cost=window.cost,
                            hint_skips=skipped,
                            hint_runtime_skips=runtime_skipped,
                        )
                if not found_any:
                    break
            result = SearchResult(
                alternatives=alternatives,
                remaining_slots=executor.slot_list(),
                passes=passes,
            )
            for shard, seconds in enumerate(executor.shard_scan_seconds):
                telemetry.observe(
                    "phase.seconds", seconds, phase=f"phase1.shard{shard}.scan"
                )
        finally:
            executor.close()
        _flush_batch_metrics(telemetry, result, algorithm.value)
        telemetry.count("search.hint_skips", hint_skips, algo=algorithm.value)
        telemetry.count(
            "search.hint_runtime_skips", runtime_skips, algo=algorithm.value
        )
        telemetry.observe("phase.seconds", scan_seconds, phase="phase1.index_scan")
        telemetry.observe("phase.seconds", subtract_seconds, phase="phase1.subtract")
        return result
