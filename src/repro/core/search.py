"""Multi-pass search for alternative slot sets (paper Section 2).

One scheduling iteration must supply *several* execution alternatives per
job so that the phase-2 optimizer has something to choose between.  The
scheme is:

* walk the batch in priority order; for each job, find one window with
  the configured algorithm (ALP or AMP);
* on success, *subtract* the window's occupied spans from the vacant-slot
  list, so that later alternatives — of this job and of every other job —
  never intersect it in processor time;
* after the last job, start over from the first job on the modified
  list; stop when a full pass over the batch finds no window for any
  job.

Because every found window removes a positive amount of vacant processor
time, the scheme always terminates.  The resulting alternatives are
mutually disjoint, so *any* combination choosing one window per job is
simultaneously realisable — the property the phase-2 dynamic programming
relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core import alp, amp
from repro.core.errors import InvalidRequestError
from repro.core.index import NEG_INF, SlotIndex
from repro.core.job import Batch, Job, ResourceRequest
from repro.core.slot import SlotList
from repro.core.window import Window
from repro.obs.spans import NOOP_SPAN
from repro.obs.telemetry import get_telemetry

__all__ = ["SlotSearchAlgorithm", "SearchResult", "find_alternatives", "WindowFinder"]

#: Default search path for :func:`find_alternatives` when ``use_index`` is
#: not given.  The indexed path is window-for-window equivalent to the
#: reference scan (``tests/test_reference_oracles.py``); flipping this to
#: ``False`` restores the naive O(m)-rescan path everywhere — the escape
#: hatch the benchmarks use to measure the speedup against the seed
#: behaviour.
DEFAULT_USE_INDEX = True

#: Signature of a pluggable single-window search: takes the current slot
#: list and a request, returns a window or ``None``.
WindowFinder = Callable[[SlotList, ResourceRequest], "Window | None"]


class SlotSearchAlgorithm(enum.Enum):
    """The two slot-search algorithms proposed by the paper."""

    ALP = "alp"
    AMP = "amp"

    def finder(self, *, rho: float = 1.0) -> WindowFinder:
        """A :data:`WindowFinder` for this algorithm.

        Args:
            rho: Budget-shrink factor of the Section 6 extension
                (``S = ρ · C · t · N``).  Only meaningful for AMP; ALP
                ignores it because its price cap is per-slot.
        """
        if self is SlotSearchAlgorithm.ALP:
            return lambda slots, request: alp.find_window(slots, request)
        return lambda slots, request: amp.find_window(
            slots, request, budget=request.scaled_budget(rho)
        )


@dataclass
class SearchResult:
    """Outcome of one alternative-search phase for a whole batch.

    Attributes:
        alternatives: For every job of the batch, its alternative windows
            in discovery order (possibly empty).
        remaining_slots: The vacant-slot list after all subtractions.
        passes: Number of complete passes over the batch, including the
            final empty pass that stopped the search.
    """

    alternatives: dict[Job, list[Window]]
    remaining_slots: SlotList
    passes: int

    @property
    def total_alternatives(self) -> int:
        """Total number of windows found across the whole batch."""
        return sum(len(windows) for windows in self.alternatives.values())

    @property
    def mean_alternatives_per_job(self) -> float:
        """Average number of alternatives per job (paper's ~7.39 vs ~34.28)."""
        if not self.alternatives:
            return 0.0
        return self.total_alternatives / len(self.alternatives)

    def jobs_without_alternatives(self) -> list[Job]:
        """Jobs whose scheduling must be postponed to the next iteration."""
        return [job for job, windows in self.alternatives.items() if not windows]

    def all_jobs_covered(self) -> bool:
        """Whether every job of the batch has at least one alternative.

        The paper's simulation study only counts experiments where this
        holds for the algorithms being compared.
        """
        return all(self.alternatives.values())

    def counts_by_job(self) -> Mapping[str, int]:
        """Alternative counts keyed by job name (diagnostic view)."""
        return {job.name: len(windows) for job, windows in self.alternatives.items()}


def find_alternatives(
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm | WindowFinder = SlotSearchAlgorithm.AMP,
    *,
    rho: float = 1.0,
    max_passes: int | None = None,
    max_alternatives_per_job: int | None = None,
    use_index: bool | None = None,
) -> SearchResult:
    """Find alternative windows for every job of ``batch``.

    Args:
        slot_list: Vacant slots of the current scheduling iteration.  The
            input list is left untouched; the search works on a copy.
        batch: Jobs in priority order.
        algorithm: One of :class:`SlotSearchAlgorithm`, or any custom
            :data:`WindowFinder` callable (used by the baselines and by
            ablation experiments).
        rho: AMP budget-shrink factor (Section 6 extension).
        max_passes: Optional safety cap on batch passes; ``None`` runs
            until a pass finds nothing (the paper's stopping rule).
        max_alternatives_per_job: Optional cap on alternatives collected
            per job; jobs at the cap are skipped in later passes.
        use_index: Run the phase-1 scans through the shared
            :class:`~repro.core.index.SlotIndex` (default: the module's
            :data:`DEFAULT_USE_INDEX`).  The indexed path produces
            bit-for-bit the same windows as the reference scan; it is
            bypassed automatically for custom finder callables and for
            telemetry-instrumented runs, where the per-slot scan counters
            of the reference path are part of the contract.
    """
    if max_passes is not None and max_passes < 1:
        raise InvalidRequestError(f"max_passes must be >= 1, got {max_passes!r}")
    if max_alternatives_per_job is not None and max_alternatives_per_job < 1:
        raise InvalidRequestError(
            f"max_alternatives_per_job must be >= 1, got {max_alternatives_per_job!r}"
        )
    if use_index is None:
        use_index = DEFAULT_USE_INDEX
    if (
        use_index
        and isinstance(algorithm, SlotSearchAlgorithm)
        and not get_telemetry().enabled
    ):
        return _find_alternatives_indexed(
            slot_list,
            batch,
            algorithm,
            rho=rho,
            max_passes=max_passes,
            max_alternatives_per_job=max_alternatives_per_job,
        )
    finder = (
        algorithm.finder(rho=rho)
        if isinstance(algorithm, SlotSearchAlgorithm)
        else algorithm
    )
    algo_label = (
        algorithm.value if isinstance(algorithm, SlotSearchAlgorithm) else "custom"
    )
    telemetry = get_telemetry()
    if telemetry.enabled:
        phase_span = telemetry.span(
            "phase1.find_alternatives", algo=algo_label, jobs=len(batch)
        )
    else:  # avoid even the keyword-dict allocation on the default path
        phase_span = NOOP_SPAN
    with phase_span:
        working = slot_list.copy()
        alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
        passes = 0
        while max_passes is None or passes < max_passes:
            passes += 1
            found_any = False
            for job in batch:
                windows = alternatives[job]
                if (
                    max_alternatives_per_job is not None
                    and len(windows) >= max_alternatives_per_job
                ):
                    continue
                window = finder(working, job.request)
                if window is None:
                    continue
                for resource, start, end in window.occupied_spans():
                    working.subtract(resource, start, end)
                windows.append(window)
                found_any = True
            if not found_any:
                break
        result = SearchResult(
            alternatives=alternatives, remaining_slots=working, passes=passes
        )
        if telemetry.enabled:
            telemetry.count("search.batches", 1, algo=algo_label)
            telemetry.count("search.passes", passes, algo=algo_label)
            telemetry.count(
                "search.windows_collected", result.total_alternatives, algo=algo_label
            )
            telemetry.count(
                "search.jobs_uncovered",
                len(result.jobs_without_alternatives()),
                algo=algo_label,
            )
            for windows in alternatives.values():
                telemetry.observe(
                    "search.alternatives_per_job", len(windows), algo=algo_label
                )
        return result


def _find_alternatives_indexed(
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    *,
    rho: float,
    max_passes: int | None,
    max_alternatives_per_job: int | None,
) -> SearchResult:
    """The multi-pass scheme over a shared :class:`SlotIndex`.

    Window-for-window equivalent to the reference loop in
    :func:`find_alternatives`: the index replays the same scans over
    primitive rows, subtraction is incremental, and per-job ``start_hint``
    values exploit the monotonicity of window starts across passes (slot
    subtraction only removes vacant time, so a job's next window can
    never start before its previous one).
    """
    index = SlotIndex(slot_list)
    is_amp = algorithm is SlotSearchAlgorithm.AMP
    budgets = (
        {job: job.request.scaled_budget(rho) for job in batch} if is_amp else {}
    )
    hints: dict[Job, float] = {job: NEG_INF for job in batch}
    alternatives: dict[Job, list[Window]] = {job: [] for job in batch}
    passes = 0
    while max_passes is None or passes < max_passes:
        passes += 1
        found_any = False
        for job in batch:
            windows = alternatives[job]
            if (
                max_alternatives_per_job is not None
                and len(windows) >= max_alternatives_per_job
            ):
                continue
            if is_amp:
                found = index.find_amp_window_at(
                    job.request, budget=budgets[job], start_hint=hints[job]
                )
                if found is None:
                    continue
                window, event_time = found
            else:
                window = index.find_alp_window(job.request, start_hint=hints[job])
                if window is None:
                    continue
                event_time = window.start
            index.commit(window)
            hints[job] = event_time
            windows.append(window)
            found_any = True
        if not found_any:
            break
    return SearchResult(
        alternatives=alternatives, remaining_slots=index.slot_list(), passes=passes
    )
