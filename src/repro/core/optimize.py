"""Phase-2 combination optimization — the backward-run dynamic programming.

Given the per-job alternative windows produced by the phase-1 search,
phase 2 chooses one window per job so that a batch criterion is optimal
under a resource constraint (paper Section 2, functional equation (1)):

    f_i(Z_i) = extr { g_i(s̄_i) + f_{i+1}(Z_i − z_i(s̄_i)) },
    f_{n+1} ≡ 0,

where ``g`` is the optimized measure (time or cost) and ``z`` the
constrained one (cost under the VO budget ``B*``, or time under the
occupancy quota ``T*``).  Because phase 1 guarantees that alternatives of
different jobs never intersect, *any* selection of one window per job is
realisable, and the problem is a multiple-choice knapsack solved exactly
(up to constraint discretization) by the backward run below.

The module also implements the constraint-generation formulas:

* :func:`time_quota` — eq. (2): ``T* = Σ_i ⌊Σ_s t_i(s̄_i) / l_i⌋`` (one
  floor per job, applied to the mean alternative time);
* :func:`vo_budget` — eq. (3): ``B*`` is the maximal owner income under
  the quota ``T*`` (the same DP run with ``extr = max``).

The constrained quantity is discretized into ``resolution`` integer bins
with *floor* rounding.  This guarantees that a truly feasible
combination is **never** rejected (no spurious infeasibility — crucial
because ``B*`` itself is defined as an attained income, so the Fig. 4
pipeline must always be feasible); the price is a bounded overshoot: a
combination reported feasible satisfies
``Σz <= limit · (1 + n / resolution)`` where ``n`` is the number of
jobs.  With integer inputs, an integer limit, and ``resolution >= limit``
the DP is exact.  A brute-force reference solver is provided for
testing.
"""

from __future__ import annotations

import itertools
import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.criteria import Criterion
from repro.core.errors import InfeasibleConstraintError, OptimizationError
from repro.core.job import Job
from repro.core.window import Window
from repro.obs.spans import NOOP_SPAN
from repro.obs.telemetry import Telemetry, get_telemetry

__all__ = [
    "Combination",
    "DPMemo",
    "OptimizationBudget",
    "time_quota",
    "vo_budget",
    "minimize_time",
    "minimize_cost",
    "optimize",
    "brute_force",
    "DEFAULT_RESOLUTION",
]

#: Default number of discretization bins for the constrained axis.  With
#: batches of at most ~10 jobs the worst-case relative constraint error is
#: ``n / resolution`` — under 1 % at the default.
DEFAULT_RESOLUTION: int = 2000


@dataclass(frozen=True)
class OptimizationBudget:
    """Resource budget bounding one phase-2 optimization run.

    Under overload (huge batches, many alternatives, a fine
    discretization) the backward-run DP can dominate an iteration.  A
    budget makes :func:`optimize` / :func:`vo_budget` *degrade* instead
    of blocking or failing:

    1. the discretization ``resolution`` is halved until the DP table
       fits ``max_cells`` (never below ``min_resolution``);
    2. if the table still does not fit — or ``deadline`` has already
       elapsed — the DP is skipped entirely and a greedy per-job
       selection is returned.

    Degraded results are always *feasible* (floor rounding keeps every
    truly feasible combination DP-feasible at any resolution, and the
    greedy fallback starts from the most-affordable window per job);
    only optimality is sacrificed.  Genuine infeasibility — no selection
    fits the limit even ignoring the budget — still raises
    :class:`~repro.core.errors.InfeasibleConstraintError`.

    Attributes:
        max_cells: Cap on DP table entries (alternatives × bins) per
            run; ``None`` leaves the table size unbounded.
        deadline: Wall-clock seconds allowed per optimization call;
            checked before the DP starts, ``None`` disables the check.
        min_resolution: Floor for the resolution step-down; below this
            the discretization error (``n / resolution`` per batch)
            would distort the constraint more than the DP is worth.
    """

    max_cells: int | None = None
    deadline: float | None = None
    min_resolution: int = 50

    def __post_init__(self) -> None:
        """Validate the budget knobs.

        Raises:
            OptimizationError: On non-positive or non-finite values.
        """
        if self.max_cells is not None and self.max_cells < 1:
            raise OptimizationError(
                f"max_cells must be >= 1, got {self.max_cells!r}"
            )
        if self.deadline is not None and (
            not math.isfinite(self.deadline) or self.deadline <= 0
        ):
            raise OptimizationError(
                f"deadline must be positive and finite, got {self.deadline!r}"
            )
        if self.min_resolution < 1:
            raise OptimizationError(
                f"min_resolution must be >= 1, got {self.min_resolution!r}"
            )


@dataclass(frozen=True)
class Combination:
    """A chosen slot combination ``s̄ = (s̄_1, ..., s̄_n)`` with its measures.

    Attributes:
        selection: The chosen window for every job.
        total_cost: ``C(s̄)`` in exact (undiscretized) arithmetic.
        total_time: ``T(s̄)`` in exact arithmetic.
        objective: Which criterion was minimized.
        limit: The constraint value the DP ran under.
        degraded: ``True`` when an :class:`OptimizationBudget` forced a
            stepped-down resolution or the greedy fallback — the
            selection is feasible but possibly sub-optimal.
    """

    selection: dict[Job, Window]
    total_cost: float
    total_time: float
    objective: Criterion
    limit: float
    degraded: bool = False

    @property
    def mean_job_time(self) -> float:
        """Average job execution time of the combination (Fig. 4a / 6b)."""
        if not self.selection:
            return 0.0
        return self.total_time / len(self.selection)

    @property
    def mean_job_cost(self) -> float:
        """Average job execution cost of the combination (Fig. 4b / 6a)."""
        if not self.selection:
            return 0.0
        return self.total_cost / len(self.selection)


def _as_job_lists(
    alternatives: Mapping[Job, Sequence[Window]],
) -> tuple[list[Job], list[list[Window]]]:
    """Validate and normalise the alternatives mapping.

    Raises:
        OptimizationError: If some job has no alternatives — such jobs
            must be postponed *before* phase 2 (paper Section 2).
    """
    jobs = list(alternatives)
    lists: list[list[Window]] = []
    for job in jobs:
        windows = list(alternatives[job])
        if not windows:
            raise OptimizationError(
                f"job {job.name!r} has no alternatives; postpone it before optimizing"
            )
        lists.append(windows)
    return jobs, lists


def time_quota(alternatives: Mapping[Job, Sequence[Window]]) -> float:
    """The slot-occupancy quota ``T*`` of eq. (2).

    ``T* = Σ_i ⌊ Σ_{s̄_i} t_i(s̄_i) / l_i ⌋`` where ``l_i`` is the number
    of admissible slot sets of job ``i``: per job, the *floor of the mean*
    alternative execution time.  The quota balances the global job flow
    against owners' local jobs: a batch may not occupy much more time than
    an "average" choice of alternatives would.

    The floor is applied once per job, to the mean — not to every
    ``t/l`` term.  Flooring inside the sum (``Σ⌊t/l⌋``) collapses to 0
    whenever all of a job's alternatives are shorter than their count
    (three windows of length 1 would yield quota 0 instead of ⌊mean⌋ = 1)
    and undershoots the mean by up to ``l - 1`` otherwise, making ``T*``
    infeasibly tight for batches whose durations ``l`` does not divide.
    """
    _, lists = _as_job_lists(alternatives)
    quota = 0
    for windows in lists:
        quota += math.floor(sum(window.length for window in windows) / len(windows))
    return float(quota)


def _discretize(values: list[float], limit: float, resolution: int) -> tuple[list[int], int]:
    """Map constraint values onto integer bins with floor rounding.

    Returns the per-value bin weights and the bin capacity.  Floor
    rounding guarantees that any truly feasible selection stays
    DP-feasible (``Σ⌊z/unit⌋ <= ⌊Σz/unit⌋ <= capacity``); a DP-feasible
    selection may overshoot the limit by at most one unit per job, i.e.
    ``limit · n / resolution`` in total (see module docstring).
    """
    if limit < 0:
        raise InfeasibleConstraintError(
            f"constraint limit must be non-negative, got {limit!r}", limit=limit
        )
    if resolution < 1:
        raise OptimizationError(f"resolution must be >= 1, got {resolution!r}")
    if limit == 0:
        unit = 1.0
    else:
        unit = limit / resolution
    weights = [max(0, math.floor(value / unit + 1e-9)) for value in values]
    capacity = resolution if limit > 0 else 0
    return weights, capacity


def _fit_resolution(
    total_alternatives: int,
    resolution: int,
    limit: float,
    budget: OptimizationBudget | None,
) -> tuple[int, bool]:
    """Step ``resolution`` down until the DP table fits ``budget.max_cells``.

    Halves repeatedly, clamped at ``budget.min_resolution``.  Returns the
    fitted resolution and whether the budget is *exhausted* — the table
    does not fit even at the floor, so the caller must skip the DP.
    Lowering the resolution never manufactures infeasibility: floor
    rounding keeps every truly feasible selection DP-feasible at any bin
    count (see :func:`_discretize`), so step-down only coarsens the
    optimum.
    """
    if budget is None or budget.max_cells is None:
        return resolution, False

    def cells(bins: int) -> int:
        capacity = bins if limit > 0 else 0
        return total_alternatives * (capacity + 1)

    fitted = resolution
    while cells(fitted) > budget.max_cells and fitted > budget.min_resolution:
        fitted = max(budget.min_resolution, fitted // 2)
    return fitted, cells(fitted) > budget.max_cells


def _out_of_time(started: float, budget: OptimizationBudget | None) -> bool:
    """Whether the budget's deadline elapsed since ``started`` (monotonic)."""
    return (
        budget is not None
        and budget.deadline is not None
        and time.monotonic() - started >= budget.deadline
    )


def _greedy_choose(
    lists: list[list[Window]],
    value: Callable[[Window], float],
    weight: Callable[[Window], float],
    limit: float,
    *,
    maximize: bool,
) -> list[Window] | None:
    """Budget-free greedy selection: one window per job under ``limit``.

    Starts from the most-affordable base (minimal ``weight`` per job, the
    selection with the best chance of fitting), then makes one sweep
    spending the remaining slack where it improves ``value``.  O(total
    alternatives) — the degradation path must stay cheap.  Returns
    ``None`` when even the base selection exceeds the limit, i.e. the
    instance is genuinely infeasible.
    """
    sign = -1.0 if maximize else 1.0
    base = [
        min(windows, key=lambda w: (weight(w), sign * value(w))) for windows in lists
    ]
    slack = limit - sum(weight(window) for window in base)
    if slack < -1e-9:
        return None
    chosen = list(base)
    for index, windows in enumerate(lists):
        current = chosen[index]
        best = current
        for window in windows:
            extra = weight(window) - weight(current)
            if extra <= slack + 1e-9 and sign * value(window) < sign * value(best):
                best = window
        if best is not current:
            slack -= weight(best) - weight(current)
            chosen[index] = best
    return chosen


def _backward_run(
    g_values: list[list[float]],
    z_weights: list[list[int]],
    capacity: int,
    *,
    maximize: bool,
) -> tuple[list[int], float] | None:
    """Solve the multiple-choice knapsack by the paper's backward run.

    ``f_i(b)`` is the extremal total of ``g`` over jobs ``i..n`` when bins
    ``b`` of the constraint remain; the recurrence is eq. (1).  Vectorised
    over the constraint axis with numpy.

    Returns:
        ``(chosen indices, extremal objective)`` or ``None`` when no
        selection fits the capacity.
    """
    bad = math.inf if not maximize else -math.inf
    spread = capacity + 1
    f_next = np.zeros(spread)
    choices: list[np.ndarray] = []
    for job_g, job_z in zip(reversed(g_values), reversed(z_weights)):
        table = np.full((len(job_g), spread), bad)
        for alt, (g, z) in enumerate(zip(job_g, job_z)):
            if z > capacity:
                continue
            row = table[alt]
            row[z:] = g + f_next[: spread - z]
        if maximize:
            choice = np.argmax(table, axis=0)
            f_next = np.max(table, axis=0)
        else:
            choice = np.argmin(table, axis=0)
            f_next = np.min(table, axis=0)
        choices.append(choice)
    choices.reverse()
    if not math.isfinite(f_next[capacity]):
        return None
    # Forward reconstruction: Z_1 = Z*, Z_{i+1} = Z_i − z_i(s̄_i).
    selection: list[int] = []
    remaining = capacity
    for job_index, choice in enumerate(choices):
        alt = int(choice[remaining])
        selection.append(alt)
        remaining -= z_weights[job_index][alt]
    return selection, float(f_next[capacity])


#: Memo key: extremum direction, bin capacity, and the per-job
#: ``(g row, z row)`` value pairs — everything :func:`_backward_run`
#: consumes, nothing else.
_DPKey = tuple[bool, int, tuple[tuple[tuple[float, ...], tuple[int, ...]], ...]]


class DPMemo:
    """Cross-cycle cache of backward-run DP results (ROADMAP item 3).

    Between metascheduler iterations the slot list changes only
    incrementally, so consecutive cycles frequently pose phase 2 the
    *same* multiple-choice knapsack — identical alternative sets,
    identical quota/budget limit, identical discretization.  The memo
    keys each solved instance by the **values** the DP consumes — the
    extremum direction, the bin capacity, and the per-job ``(g, z)``
    rows — so invalidation is automatic: any change to an alternative
    set, the limit, or a budget-forced resolution step-down produces a
    different key and misses.  Infeasible outcomes (``None``) are cached
    too; re-posing an infeasible instance is as common as re-posing a
    solvable one.

    Entries are LRU-evicted beyond ``max_entries``.  Hits return a copy
    of the cached selection, so callers may mutate their result freely.

    Attributes:
        max_entries: LRU capacity (oldest entries evicted beyond it).
        enabled: When ``False`` the memo is a transparent pass-through —
            every run recomputes — which gives tests and ablations a
            memo-off mode with the identical call surface.
        hits: Number of lookups answered from the cache.
        misses: Number of lookups that ran the DP.
    """

    __slots__ = ("max_entries", "enabled", "hits", "misses", "_entries")

    def __init__(self, max_entries: int = 256, *, enabled: bool = True) -> None:
        if max_entries < 1:
            raise OptimizationError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[_DPKey, tuple[list[int], float] | None] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached table and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Snapshot of the memo counters (benchmark/diagnostic view)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}


def _memoized_backward_run(
    g_values: list[list[float]],
    z_weights: list[list[int]],
    capacity: int,
    *,
    maximize: bool,
    memo: DPMemo | None,
    telemetry: Telemetry,
    label: str,
) -> tuple[list[int], float] | None:
    """:func:`_backward_run` through ``memo`` (byte-identical results).

    A hit returns the cached outcome — the same selection indices and
    extremal value the DP produced when the instance was first posed, so
    memo-on and memo-off runs are indistinguishable downstream.  Hits
    and misses are counted on the memo and, when telemetry is enabled,
    on the ``dp.memo.hits`` / ``dp.memo.misses`` counters.
    """
    if memo is None or not memo.enabled:
        return _backward_run(g_values, z_weights, capacity, maximize=maximize)
    key: _DPKey = (
        maximize,
        capacity,
        tuple(
            (tuple(job_g), tuple(job_z))
            for job_g, job_z in zip(g_values, z_weights)
        ),
    )
    entries = memo._entries
    if key in entries:
        entries.move_to_end(key)
        memo.hits += 1
        if telemetry.enabled:
            telemetry.count("dp.memo.hits", 1, objective=label)
        cached = entries[key]
        return None if cached is None else (list(cached[0]), cached[1])
    memo.misses += 1
    if telemetry.enabled:
        telemetry.count("dp.memo.misses", 1, objective=label)
    solved = _backward_run(g_values, z_weights, capacity, maximize=maximize)
    entries[key] = None if solved is None else (list(solved[0]), solved[1])
    while len(entries) > memo.max_entries:
        entries.popitem(last=False)
    return solved


def optimize(
    alternatives: Mapping[Job, Sequence[Window]],
    objective: Criterion,
    limit: float,
    *,
    resolution: int = DEFAULT_RESOLUTION,
    budget: OptimizationBudget | None = None,
    memo: DPMemo | None = None,
) -> Combination:
    """Choose one window per job minimizing ``objective`` under ``limit``.

    The limit constrains the *dual* criterion: minimizing time runs under
    the VO budget ``B*``; minimizing cost runs under the quota ``T*``.

    With a ``budget``, overload degrades instead of failing: the DP
    resolution is stepped down to fit ``budget.max_cells``, and when the
    table still does not fit (or ``budget.deadline`` already elapsed)
    a greedy per-job selection is returned.  Either way the result is
    marked ``degraded=True`` and stays feasible — budget exhaustion
    never raises.

    The backward run goes through ``memo`` when one is supplied — see
    :class:`DPMemo`; a hit reproduces the memo-off outcome exactly.
    ``memo=None`` (the default) recomputes every run: cross-cycle reuse
    is an explicit opt-in owned by the caller (each
    :class:`~repro.core.scheduler.BatchScheduler` holds its own memo),
    never ambient process state.

    Raises:
        InfeasibleConstraintError: When no selection fits the limit
            (genuine infeasibility — independent of any budget).
        OptimizationError: When a job has no alternatives.
    """
    started = time.monotonic()
    jobs, lists = _as_job_lists(alternatives)
    if not jobs:
        return Combination({}, 0.0, 0.0, objective, limit)
    telemetry = get_telemetry()
    if telemetry.enabled:
        phase_span = telemetry.span(
            "phase2.optimize", objective=objective.value, jobs=len(jobs)
        )
    else:
        phase_span = NOOP_SPAN
    with phase_span:
        constrained = objective.dual
        z_values = [[constrained.of(window) for window in windows] for windows in lists]
        total_alternatives = sum(len(values) for values in z_values)
        fitted, exhausted = _fit_resolution(
            total_alternatives, resolution, limit, budget
        )
        if exhausted or _out_of_time(started, budget):
            reason = "max_cells" if exhausted else "deadline"
            chosen = _greedy_choose(
                lists, objective.of, constrained.of, limit, maximize=False
            )
            if chosen is None:
                if telemetry.enabled:
                    telemetry.count("dp.infeasible", 1, objective=objective.value)
                    if telemetry.decisions.enabled:
                        telemetry.decisions.emit(
                            "dp.infeasible", objective=objective.value, limit=limit
                        )
                best = sum(min(values) for values in z_values)
                raise InfeasibleConstraintError(
                    f"no combination satisfies {constrained.value} <= {limit:g} "
                    f"(cheapest possible is >= {best:g})",
                    limit=limit,
                    best=best,
                )
            if telemetry.enabled:
                telemetry.count(
                    "optimize.degraded", 1, objective=objective.value, mode=reason
                )
                if telemetry.decisions.enabled:
                    decisions = telemetry.decisions
                    decisions.emit(
                        "dp.greedy_fallback",
                        objective=objective.value,
                        reason=reason,
                        limit=limit,
                    )
                    for job, window in zip(jobs, chosen):
                        decisions.emit(
                            "dp.selected",
                            job=job.name,
                            objective=objective.value,
                            start=window.start,
                            cost=window.cost,
                            degraded=True,
                        )
            return _combination_of(
                dict(zip(jobs, chosen)), objective, limit, degraded=True
            )
        g_values = [[objective.of(window) for window in windows] for windows in lists]
        flat_z = [value for job_values in z_values for value in job_values]
        weights_flat, capacity = _discretize(flat_z, limit, fitted)
        z_weights: list[list[int]] = []
        cursor = 0
        for windows in lists:
            z_weights.append(weights_flat[cursor : cursor + len(windows)])
            cursor += len(windows)
        if telemetry.enabled:
            _count_dp_run(telemetry, len(weights_flat), capacity, objective.value)
            if fitted != resolution and telemetry.decisions.enabled:
                telemetry.decisions.emit(
                    "dp.resolution_stepdown",
                    objective=objective.value,
                    requested=resolution,
                    fitted=fitted,
                )
            began = time.perf_counter()
            solved = _memoized_backward_run(
                g_values,
                z_weights,
                capacity,
                maximize=False,
                memo=memo,
                telemetry=telemetry,
                label=objective.value,
            )
            telemetry.observe(
                "phase.seconds", time.perf_counter() - began, phase="phase2.dp"
            )
        else:
            solved = _memoized_backward_run(
                g_values,
                z_weights,
                capacity,
                maximize=False,
                memo=memo,
                telemetry=telemetry,
                label=objective.value,
            )
        if solved is None:
            if telemetry.enabled:
                telemetry.count("dp.infeasible", 1, objective=objective.value)
                if telemetry.decisions.enabled:
                    telemetry.decisions.emit(
                        "dp.infeasible", objective=objective.value, limit=limit
                    )
            best = sum(min(values) for values in z_values)
            raise InfeasibleConstraintError(
                f"no combination satisfies {constrained.value} <= {limit:g} "
                f"(cheapest possible is >= {best:g})",
                limit=limit,
                best=best,
            )
        degraded = fitted != resolution
        if degraded and telemetry.enabled:
            telemetry.count(
                "optimize.degraded", 1, objective=objective.value, mode="stepdown"
            )
        chosen, _ = solved
        selection = {
            job: lists[index][alt] for index, (job, alt) in enumerate(zip(jobs, chosen))
        }
        if telemetry.enabled and telemetry.decisions.enabled:
            decisions = telemetry.decisions
            for index, (job, alt) in enumerate(zip(jobs, chosen)):
                window = lists[index][alt]
                decisions.emit(
                    "dp.selected",
                    job=job.name,
                    objective=objective.value,
                    alternative=alt + 1,
                    start=window.start,
                    cost=window.cost,
                    degraded=degraded,
                )
        return _combination_of(selection, objective, limit, degraded=degraded)


def _combination_of(
    selection: dict[Job, Window],
    objective: Criterion,
    limit: float,
    *,
    degraded: bool = False,
) -> Combination:
    """Build a :class:`Combination` with exact totals over ``selection``."""
    return Combination(
        selection=selection,
        total_cost=sum(window.cost for window in selection.values()),
        total_time=sum(window.length for window in selection.values()),
        objective=objective,
        limit=limit,
        degraded=degraded,
    )


def _count_dp_run(
    telemetry: Telemetry, total_alternatives: int, capacity: int, label: str
) -> None:
    """Record the size of one backward run before it executes.

    ``dp.table_cells`` is the exact number of ``f_i`` table entries the
    run fills: one row per alternative, ``capacity + 1`` constraint bins
    per row (matching the arrays allocated in ``_backward_run``).
    """
    if not telemetry.enabled:
        return
    telemetry.count("dp.runs", 1, objective=label)
    telemetry.count(
        "dp.table_cells", total_alternatives * (capacity + 1), objective=label
    )
    telemetry.observe("dp.capacity", capacity, objective=label)
    telemetry.observe("dp.alternatives", total_alternatives, objective=label)


def vo_budget(
    alternatives: Mapping[Job, Sequence[Window]],
    quota: float | None = None,
    *,
    resolution: int = DEFAULT_RESOLUTION,
    budget: OptimizationBudget | None = None,
    memo: DPMemo | None = None,
) -> float:
    """The VO budget ``B*`` of eq. (3).

    ``B*`` is the maximal total income of resource owners over all
    combinations whose total time fits the quota ``T*`` — the same
    backward run with ``extr = max`` and cost as the income function.

    Args:
        alternatives: Phase-1 output; every job must have alternatives.
        quota: The time quota ``T*``; computed by eq. (2) when omitted.
        budget: Optional degradation budget; on exhaustion ``B*`` is
            estimated by a greedy selection instead of the DP (a lower
            bound on the exact income, still quota-feasible).
        memo: Optional DP memo for the backward run (``None``
            recomputes; see :class:`DPMemo`).

    Raises:
        InfeasibleConstraintError: When even the fastest combination
            exceeds the quota (the scheduling iteration is then dropped,
            matching the paper's experimental protocol).
    """
    started = time.monotonic()
    jobs, lists = _as_job_lists(alternatives)
    if not jobs:
        return 0.0
    if quota is None:
        quota = time_quota(alternatives)
    telemetry = get_telemetry()
    if telemetry.enabled:
        phase_span = telemetry.span("phase2.vo_budget", jobs=len(jobs))
    else:
        phase_span = NOOP_SPAN
    with phase_span:
        z_values = [[window.length for window in windows] for windows in lists]
        total_alternatives = sum(len(values) for values in z_values)
        fitted, exhausted = _fit_resolution(
            total_alternatives, resolution, quota, budget
        )
        if exhausted or _out_of_time(started, budget):
            reason = "max_cells" if exhausted else "deadline"
            chosen = _greedy_choose(
                lists,
                lambda window: window.cost,
                lambda window: window.length,
                quota,
                maximize=True,
            )
            if chosen is None:
                if telemetry.enabled:
                    telemetry.count("dp.infeasible", 1, objective="budget")
                    if telemetry.decisions.enabled:
                        telemetry.decisions.emit(
                            "dp.infeasible", objective="budget", limit=quota
                        )
                best = sum(min(values) for values in z_values)
                raise InfeasibleConstraintError(
                    f"no combination satisfies time <= quota {quota:g} "
                    f"(fastest possible is >= {best:g})",
                    limit=quota,
                    best=best,
                )
            if telemetry.enabled:
                telemetry.count(
                    "optimize.degraded", 1, objective="budget", mode=reason
                )
                if telemetry.decisions.enabled:
                    telemetry.decisions.emit(
                        "dp.greedy_fallback",
                        objective="budget",
                        reason=reason,
                        limit=quota,
                    )
            return float(sum(window.cost for window in chosen))
        g_values = [[window.cost for window in windows] for windows in lists]
        flat_z = [value for job_values in z_values for value in job_values]
        weights_flat, capacity = _discretize(flat_z, quota, fitted)
        z_weights: list[list[int]] = []
        cursor = 0
        for windows in lists:
            z_weights.append(weights_flat[cursor : cursor + len(windows)])
            cursor += len(windows)
        if telemetry.enabled:
            _count_dp_run(telemetry, len(weights_flat), capacity, "budget")
            if fitted != resolution and telemetry.decisions.enabled:
                telemetry.decisions.emit(
                    "dp.resolution_stepdown",
                    objective="budget",
                    requested=resolution,
                    fitted=fitted,
                )
            began = time.perf_counter()
            solved = _memoized_backward_run(
                g_values,
                z_weights,
                capacity,
                maximize=True,
                memo=memo,
                telemetry=telemetry,
                label="budget",
            )
            telemetry.observe(
                "phase.seconds", time.perf_counter() - began, phase="phase2.dp"
            )
        else:
            solved = _memoized_backward_run(
                g_values,
                z_weights,
                capacity,
                maximize=True,
                memo=memo,
                telemetry=telemetry,
                label="budget",
            )
        if solved is None:
            if telemetry.enabled:
                telemetry.count("dp.infeasible", 1, objective="budget")
                if telemetry.decisions.enabled:
                    telemetry.decisions.emit(
                        "dp.infeasible", objective="budget", limit=quota
                    )
            best = sum(min(values) for values in z_values)
            raise InfeasibleConstraintError(
                f"no combination satisfies time <= quota {quota:g} "
                f"(fastest possible is >= {best:g})",
                limit=quota,
                best=best,
            )
        if fitted != resolution and telemetry.enabled:
            telemetry.count(
                "optimize.degraded", 1, objective="budget", mode="stepdown"
            )
        _, income = solved
        return income


def minimize_time(
    alternatives: Mapping[Job, Sequence[Window]],
    budget_limit: float,
    *,
    resolution: int = DEFAULT_RESOLUTION,
    budget: OptimizationBudget | None = None,
    memo: DPMemo | None = None,
) -> Combination:
    """``min T(s̄)`` subject to ``C(s̄) <= B*`` (the Fig. 4 experiment)."""
    return optimize(
        alternatives,
        Criterion.TIME,
        budget_limit,
        resolution=resolution,
        budget=budget,
        memo=memo,
    )


def minimize_cost(
    alternatives: Mapping[Job, Sequence[Window]],
    quota: float,
    *,
    resolution: int = DEFAULT_RESOLUTION,
    budget: OptimizationBudget | None = None,
    memo: DPMemo | None = None,
) -> Combination:
    """``min C(s̄)`` subject to ``T(s̄) <= T*`` (the Fig. 6 experiment)."""
    return optimize(
        alternatives,
        Criterion.COST,
        quota,
        resolution=resolution,
        budget=budget,
        memo=memo,
    )


def brute_force(
    alternatives: Mapping[Job, Sequence[Window]],
    objective: Criterion,
    limit: float,
    *,
    max_combinations: int = 2_000_000,
) -> Combination | None:
    """Exact exhaustive reference solver (for tests and small instances).

    Enumerates every combination, returning the best feasible one or
    ``None`` when none fits the limit.

    Raises:
        OptimizationError: If the search space exceeds
            ``max_combinations`` or a job has no alternatives.
    """
    jobs, lists = _as_job_lists(alternatives)
    if not jobs:
        return Combination({}, 0.0, 0.0, objective, limit)
    space = math.prod(len(windows) for windows in lists)
    if space > max_combinations:
        raise OptimizationError(
            f"brute force over {space} combinations exceeds cap {max_combinations}"
        )
    constrained = objective.dual
    best: tuple[float, tuple[Window, ...]] | None = None
    for combo in itertools.product(*lists):
        z_total = sum(constrained.of(window) for window in combo)
        if z_total > limit + 1e-9:
            continue
        g_total = sum(objective.of(window) for window in combo)
        if best is None or g_total < best[0]:
            best = (g_total, combo)
    if best is None:
        return None
    selection = dict(zip(jobs, best[1]))
    return Combination(
        selection=selection,
        total_cost=sum(window.cost for window in best[1]),
        total_time=sum(window.length for window in best[1]),
        objective=objective,
        limit=limit,
    )
