"""Exception hierarchy for the :mod:`repro` scheduling library.

Every error raised on purpose by the library derives from
:class:`SchedulingError`, so callers can catch one base class.  The
subclasses distinguish the three failure families that matter to users:
malformed inputs, infeasible searches, and optimizer failures.
"""

from __future__ import annotations

__all__ = [
    "SchedulingError",
    "InvariantViolationError",
    "InvalidRequestError",
    "SlotListError",
    "WindowNotFoundError",
    "OptimizationError",
    "InfeasibleConstraintError",
    "RecoveryExhaustedError",
    "AdmissionRejectedError",
    "TelemetryError",
    "TelemetryUsageError",
    "PersistenceError",
    "JournalCorruptError",
    "JournalClosedError",
    "CheckpointMismatchError",
    "WorkerLostError",
]


class SchedulingError(Exception):
    """Base class for all errors raised by the repro scheduling library."""


class InvariantViolationError(SchedulingError):
    """An internal consistency check failed — a library bug, not bad input.

    This is the typed replacement for ``assert``: ``python -O`` strips
    assert statements, so any invariant worth checking in production is
    checked with an explicit ``raise InvariantViolationError(...)``
    instead (``repro-lint`` rule RPR003 enforces this).  Seeing one of
    these means internal state the library guarantees by construction
    was violated; please report it with the traceback.
    """


class InvalidRequestError(SchedulingError, ValueError):
    """A resource request, job, or batch violates a model invariant.

    Raised eagerly at construction time (for example a request for zero
    nodes, a negative runtime, or a non-positive performance bound) so that
    the search algorithms can assume well-formed inputs.
    """


class SlotListError(SchedulingError, ValueError):
    """A slot-list operation received an inconsistent argument.

    Typical causes: subtracting a window slot that is not contained in any
    vacant slot of the list, or inserting a slot that ends before it
    starts.
    """


class WindowNotFoundError(SchedulingError):
    """No window satisfying a request exists in the current slot list.

    The search functions in :mod:`repro.core.alp` and
    :mod:`repro.core.amp` normally *return* ``None`` on failure because a
    failed search is an expected outcome of every scheduling iteration
    (the job is postponed, per Section 2 of the paper).  This exception
    exists for the strict variants (``require_window``) used by callers
    that treat failure as exceptional.
    """

    def __init__(self, message: str, *, job_name: str | None = None) -> None:
        super().__init__(message)
        #: Name of the job whose search failed, when known.
        self.job_name = job_name


class OptimizationError(SchedulingError):
    """The phase-2 combination optimizer could not produce a schedule."""


class InfeasibleConstraintError(OptimizationError):
    """No combination of alternatives satisfies the given constraint.

    Carries the constraint value so diagnostics can report how far the
    cheapest/fastest combination is from feasibility.
    """

    def __init__(self, message: str, *, limit: float | None = None, best: float | None = None) -> None:
        super().__init__(message)
        #: The constraint limit (``B*`` or ``T*``) that could not be met.
        self.limit = limit
        #: The best (smallest) achievable value of the constrained quantity.
        self.best = best


class RecoveryExhaustedError(SchedulingError):
    """A job spent its per-job revocation budget and was dropped.

    Raised conceptually by the fault-recovery subsystem
    (:mod:`repro.grid.resilience`) when outages revoke a job's
    reservation more often than the retry policy allows.  The recovery
    path never lets this propagate out of an outage event — the job is
    rejected in the workload trace and the error is recorded on the
    recovery event — but callers inspecting recovery outcomes get a
    typed, state-carrying exception instead of a bare string.
    """

    def __init__(
        self,
        message: str,
        *,
        job_name: str | None = None,
        revocations: int | None = None,
        limit: int | None = None,
    ) -> None:
        super().__init__(message)
        #: Name of the job whose revocation budget ran out.
        self.job_name = job_name
        #: How many times outages revoked the job's reservation.
        self.revocations = revocations
        #: The retry policy's revocation budget.
        self.limit = limit


class AdmissionRejectedError(SchedulingError):
    """A submission was shed because the pending queue is full.

    Bounded admission (the metascheduler's ``max_pending`` knob) keeps an
    overloaded VO from growing an unbounded backlog: once the number of
    jobs waiting for a window reaches the limit, further submissions are
    rejected *at the door* with this typed error rather than silently
    queued behind work that cannot drain.  Callers decide the shed
    policy — drop, retry later, or route to another VO.
    """

    def __init__(
        self,
        message: str,
        *,
        job_name: str | None = None,
        backlog: int | None = None,
        limit: int | None = None,
    ) -> None:
        super().__init__(message)
        #: Name of the job that was turned away.
        self.job_name = job_name
        #: Queue depth (pending + future submissions) at rejection time.
        self.backlog = backlog
        #: The configured admission limit.
        self.limit = limit


class PersistenceError(SchedulingError):
    """Durable scheduler state could not be written, read, or replayed.

    Base class for the checkpoint/journal subsystem
    (:mod:`repro.core.journal`, :mod:`repro.grid.checkpoint`); deriving
    from :class:`SchedulingError` maps these failures to the CLI's
    standard exit code 2.
    """


class JournalCorruptError(PersistenceError):
    """A journal record failed validation somewhere other than the tail.

    A *trailing* torn record is expected after a crash and is skipped
    with a warning; corruption in the middle of a journal (bad checksum,
    sequence gap, malformed JSON) means the file cannot be trusted and
    replay refuses to guess.
    """

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None) -> None:
        super().__init__(message)
        #: The journal file, when known.
        self.path = path
        #: 1-based line number of the offending record, when known.
        self.line = line


class JournalClosedError(PersistenceError):
    """An append was attempted on a journal that has fail-closed.

    After an append or ``fsync`` raises :class:`OSError`, the durability
    of the in-flight record is *unknown* — the page cache may or may not
    hold it, and a later successful append would silently write past a
    record that never reached stable storage (the "fsyncgate" failure
    mode).  The writer therefore poisons its handle on the first I/O
    error: every subsequent :meth:`~repro.core.journal.JournalWriter.append`
    raises this error until the journal is reopened, which re-scans the
    file and truncates any torn tail.
    """

    def __init__(self, message: str, *, path: str | None = None) -> None:
        super().__init__(message)
        #: The journal file whose handle is poisoned, when known.
        self.path = path


class WorkerLostError(SchedulingError):
    """A parallel worker process died and supervised recovery gave up.

    Raised by the parallel experiment engine
    (:class:`~repro.sim.experiment.ParallelRunner`) and the sharded
    search executor (:class:`~repro.core.shard_search.ShardedSearchExecutor`)
    after a killed or wedged worker process could not be replaced within
    the supervisor's bounded restart budget.  Because every worker
    assignment is derived-seed pure, a *successful* supervised retry is
    byte-identical to an undisturbed run; this error means the fault
    recurred past the budget and the run cannot be trusted to finish.
    Deriving from :class:`SchedulingError` maps it to the CLI's standard
    exit code 2.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        restarts: int | None = None,
    ) -> None:
        super().__init__(message)
        #: Index of the shard/span whose worker was lost, when known.
        self.shard = shard
        #: How many supervised restarts were attempted before giving up.
        self.restarts = restarts


class CheckpointMismatchError(PersistenceError):
    """A checkpoint or resume file does not match the requested run.

    Raised when resuming an experiment against a checkpoint written for
    a different configuration (seed, iteration count, generator
    parameters…), or when a snapshot declares an unsupported format.
    Resuming against the wrong state would silently produce corrupt
    merged results; refusing loudly is the only safe behaviour.
    """


class TelemetryError(SchedulingError):
    """A telemetry trace could not be written or replayed.

    Raised by :mod:`repro.obs.export` for missing, malformed, or
    unsupported-format trace files; deriving from
    :class:`SchedulingError` lets the CLI map it to a non-zero exit code
    with the same handler as every other library failure.
    """


class TelemetryUsageError(TelemetryError, ValueError):
    """An observability API was called with invalid values.

    Counter decrements, histogram bounds out of order, quantiles outside
    ``[0, 1]``, non-positive capacities — misuse of the :mod:`repro.obs`
    surface, as opposed to trace-file failures (plain
    :class:`TelemetryError`).  Also a :class:`ValueError`, so callers
    catching the builtin keep working (RPR102 migration: every untyped
    ``raise ValueError`` on the public observability surface became this
    type).
    """
