"""Whole-batch co-scheduling strategies (paper Section 7, future work).

The paper's scheme selects slots "for each job consecutively" in fixed
priority order and defers optimization to a dedicated phase; its stated
future work is "slot selection for the whole job batch at once", with
the schedule optimized "on the fly".  This module implements that
extension as pluggable *batch strategies* which produce one committed
window per job directly (no alternatives phase):

* :attr:`BatchStrategy.SEQUENTIAL` — the paper's baseline: fixed
  priority order, earliest window each, subtraction in between.
* :attr:`BatchStrategy.EARLIEST_FIRST` — global on-the-fly ordering: at
  every step, *every* unscheduled job's earliest window is evaluated on
  the current list, and the job whose window starts first is committed.
  This removes the priority-order artefact where an early big job
  pushes every later job behind it.
* :attr:`BatchStrategy.CHEAPEST_FIRST` — same machinery with the
  marginal criterion switched to window cost: commit the globally
  cheapest available window each step (ties toward earlier starts).

All strategies reuse the ALP/AMP single-window finders, so the economic
requirements keep holding per job.  Complexity: SEQUENTIAL is ``O(n·m)``
like the paper's scheme; the global strategies are ``O(n²·m)`` — the
price of on-the-fly optimization the paper alludes to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import InvalidRequestError
from repro.core.job import Batch, Job
from repro.core.search import SlotSearchAlgorithm, WindowFinder
from repro.core.slot import SlotList
from repro.core.window import Window

__all__ = ["BatchStrategy", "BatchAssignment", "coallocate_batch"]


class BatchStrategy(enum.Enum):
    """How the batch's windows are selected and ordered."""

    SEQUENTIAL = "sequential"
    EARLIEST_FIRST = "earliest-first"
    CHEAPEST_FIRST = "cheapest-first"


@dataclass
class BatchAssignment:
    """Outcome of a whole-batch co-allocation.

    Attributes:
        windows: Committed window per scheduled job.
        postponed: Jobs for which no window existed at their turn.
        order: Job names in commitment order (diagnostic: shows how the
            strategy deviated from priority order).
        remaining_slots: The slot list after all subtractions.
    """

    windows: dict[Job, Window]
    postponed: list[Job]
    order: list[str]
    remaining_slots: SlotList

    @property
    def total_time(self) -> float:
        """Sum of scheduled jobs' execution times."""
        return sum(window.length for window in self.windows.values())

    @property
    def total_cost(self) -> float:
        """Sum of scheduled jobs' window costs."""
        return sum(window.cost for window in self.windows.values())

    @property
    def makespan(self) -> float:
        """Latest window end over the batch (0.0 when nothing scheduled)."""
        if not self.windows:
            return 0.0
        return max(window.end for window in self.windows.values())


def _commit(working: SlotList, window: Window) -> None:
    for resource, start, end in window.occupied_spans():
        working.subtract(resource, start, end)


def _sequential(
    working: SlotList, batch: Batch, finder: WindowFinder
) -> BatchAssignment:
    windows: dict[Job, Window] = {}
    postponed: list[Job] = []
    order: list[str] = []
    for job in batch:
        window = finder(working, job.request)
        if window is None:
            postponed.append(job)
            continue
        _commit(working, window)
        windows[job] = window
        order.append(job.name)
    return BatchAssignment(windows, postponed, order, working)


def _global(
    working: SlotList,
    batch: Batch,
    finder: WindowFinder,
    *,
    key: Callable[[Window], Any],
) -> BatchAssignment:
    windows: dict[Job, Window] = {}
    postponed: list[Job] = []
    order: list[str] = []
    pending = list(batch)
    while pending:
        best: tuple[Job, Window] | None = None
        hopeless: list[Job] = []
        for job in pending:
            window = finder(working, job.request)
            if window is None:
                hopeless.append(job)
                continue
            if best is None or key(window) < key(best[1]):
                best = (job, window)
        if best is None:
            postponed.extend(pending)
            break
        job, window = best
        _commit(working, window)
        windows[job] = window
        order.append(job.name)
        pending.remove(job)
        # A job hopeless *now* may become schedulable later only if slots
        # were added — subtraction never adds capacity, so drop them.
        for job in hopeless:
            if job in pending:
                postponed.append(job)
                pending.remove(job)
    return BatchAssignment(windows, postponed, order, working)


def coallocate_batch(
    slot_list: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm | WindowFinder = SlotSearchAlgorithm.AMP,
    *,
    strategy: BatchStrategy = BatchStrategy.SEQUENTIAL,
    rho: float = 1.0,
) -> BatchAssignment:
    """Co-allocate one window per job for the whole batch at once.

    Args:
        slot_list: Vacant slots (left untouched; work happens on a copy).
        batch: The jobs; priority order matters only for SEQUENTIAL.
        algorithm: ALP/AMP or a custom single-window finder.
        strategy: Commitment-ordering strategy (see module docstring).
        rho: AMP budget-shrink factor.

    Returns:
        The committed assignment; jobs with no feasible window at their
        turn are postponed (Section 2's rule, applied per strategy).
    """
    if not isinstance(strategy, BatchStrategy):
        raise InvalidRequestError(f"unknown batch strategy: {strategy!r}")
    finder = (
        algorithm.finder(rho=rho)
        if isinstance(algorithm, SlotSearchAlgorithm)
        else algorithm
    )
    working = slot_list.copy()
    if strategy is BatchStrategy.SEQUENTIAL:
        return _sequential(working, batch, finder)
    if strategy is BatchStrategy.EARLIEST_FIRST:
        return _global(working, batch, finder, key=lambda w: (w.start, w.cost))
    return _global(working, batch, finder, key=lambda w: (w.cost, w.start))
