"""Append-only, checksummed JSONL write-ahead journal.

Durable scheduler state is kept as *snapshot + journal*: a periodic
atomic snapshot of the full state, plus an append-only log of every
state-changing event since.  Restoring after a crash loads the latest
snapshot and replays the journal on top — the classical write-ahead
recipe, shrunk to the needs of this reproduction:

* one JSON object per line, so journals are greppable and diffable;
* every record carries a monotonically increasing sequence number and a
  CRC-32 checksum of its payload, so torn writes and bit rot are
  *detected*, never silently replayed;
* appends are flushed (and optionally ``fsync``-ed) per record — after
  :meth:`JournalWriter.append` returns, the record survives a process
  kill;
* a **torn trailing record** — the half-written line a ``SIGKILL``
  mid-append leaves behind — is tolerated: :func:`read_journal` skips
  it with a warning and returns every record before it.  Corruption
  anywhere *else* raises :class:`~repro.core.errors.JournalCorruptError`
  (a mid-file tear means the file cannot be trusted).

The line format is ``{"seq": n, "crc": c, "kind": k, "data": {...}}``
where ``c`` is the CRC-32 of the canonical (compact, key-sorted) JSON
encoding of ``data``.  The first record of a fresh journal is a header
of kind ``"journal"`` declaring :data:`JOURNAL_FORMAT`.
"""

from __future__ import annotations

import json
import warnings
import zlib
from time import perf_counter
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.core.errors import JournalClosedError, JournalCorruptError, PersistenceError
from repro.core.fsio import REAL_FS, FileSystem
from repro.obs.telemetry import get_telemetry

__all__ = [
    "HEADER_KIND",
    "JOURNAL_FORMAT",
    "JournalRecord",
    "JournalWriter",
    "journal_header",
    "read_journal",
    "verify_record",
]

#: Format tag stamped into every journal's header record; bump on
#: breaking layout changes so replay can refuse files it cannot parse.
JOURNAL_FORMAT = "repro-journal/1"

#: Kind of the header record every fresh journal starts with.
HEADER_KIND = "journal"


def _canonical(data: dict[str, Any]) -> str:
    """The canonical payload encoding the checksum is computed over."""
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


def _crc(data: dict[str, Any]) -> int:
    return zlib.crc32(_canonical(data).encode("utf-8"))


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal entry.

    Attributes:
        seq: Monotonic sequence number (the header is ``seq == 0``).
        kind: Application-level record type (``"submit"``,
            ``"iteration"``, ``"outcome"``, …).
        data: The JSON payload.
    """

    seq: int
    kind: str
    data: dict[str, Any]


def verify_record(payload: Any) -> tuple[int, str, dict[str, Any]]:
    """Validate one parsed journal line; returns ``(seq, kind, data)``.

    Raises:
        JournalCorruptError: On a non-object line, missing envelope
            fields, or a checksum mismatch.
    """
    if not isinstance(payload, dict):
        raise JournalCorruptError(
            f"journal record must be a JSON object, got {type(payload).__name__}"
        )
    try:
        seq = int(payload["seq"])
        crc = int(payload["crc"])
        kind = str(payload["kind"])
        data = payload["data"]
    except (KeyError, TypeError, ValueError) as error:
        raise JournalCorruptError(f"malformed journal envelope: {error!r}") from None
    if not isinstance(data, dict):
        raise JournalCorruptError(
            f"journal payload must be a JSON object, got {type(data).__name__}"
        )
    actual = _crc(data)
    if actual != crc:
        raise JournalCorruptError(
            f"checksum mismatch on record seq={seq}: stored {crc}, computed {actual}"
        )
    return seq, kind, data


class JournalWriter:
    """Appends checksummed records to a journal file.

    Opening an existing journal resumes its sequence numbering (the tail
    is scanned once); opening a fresh path writes the format header.
    The writer is a context manager; :meth:`close` is idempotent.

    Args:
        path: Journal file location (parent directory must exist).
        fsync: Force every append to stable storage.  ``True`` is the
            crash-safe default; pass ``False`` for bulk runs where an
            OS-buffered flush per record is an acceptable risk.
        header: Extra fields merged into the header record of a fresh
            journal (e.g. a config fingerprint for resume validation).
        fs: Filesystem seam the writer performs I/O through.  Defaults
            to the real filesystem; the chaos engine injects a
            fault-raising :class:`~repro.core.fsio.FileSystem` here.

    The writer is **fail-closed**: the first :class:`OSError` raised by
    a write, flush, or fsync poisons the handle, and every later
    :meth:`append` raises :class:`~repro.core.errors.JournalClosedError`.
    After a failed fsync the durability of the in-flight record is
    unknown, so appending past it could silently build on state that
    never reached disk; reopening the path re-scans the file and
    truncates any torn tail, which is the only safe way to resume.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        header: dict[str, Any] | None = None,
        fs: FileSystem | None = None,
    ) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._fs = fs if fs is not None else REAL_FS
        self._stream: IO[str] | None = None
        self._poisoned = False
        existing = 0
        fresh = True
        if self.path.exists() and self.path.stat().st_size > 0:
            records, valid_lines, torn = _scan(self.path)
            existing = records[-1].seq + 1 if records else 0
            fresh = not records
            if torn:
                # Truncate the torn tail before appending: a new record
                # written after the fragment would share its line and be
                # unreadable forever.
                try:
                    with self._fs.open(self.path, "w") as stream:
                        for line in valid_lines:
                            self._fs.write(stream, line + "\n")
                        self._fs.fsync(stream)
                except OSError as error:
                    raise PersistenceError(
                        f"cannot truncate torn journal {str(self.path)!r}: {error}"
                    ) from error
        try:
            self._stream = self._fs.open(self.path, "a")
        except OSError as error:
            raise PersistenceError(f"cannot open journal {str(self.path)!r}: {error}") from error
        self._seq = existing
        if fresh:
            self.append(HEADER_KIND, {"format": JOURNAL_FORMAT, **(header or {})})

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will use."""
        return self._seq

    def append(self, kind: str, data: dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        Raises:
            JournalClosedError: When a previous append failed and the
                handle is fail-closed (reopen the path to resume).
            PersistenceError: When the journal is closed or the write
                fails (the failing call also poisons the handle).
        """
        if self._poisoned:
            raise JournalClosedError(
                f"journal {str(self.path)!r} is fail-closed after a write/fsync "
                f"failure; the durability of record seq {self._seq} is unknown — "
                f"reopen the journal to truncate any torn tail and resume",
                path=str(self.path),
            )
        if self._stream is None:
            raise PersistenceError(f"journal {str(self.path)!r} is closed")
        record = {
            "seq": self._seq,
            "crc": _crc(data),
            "kind": kind,
            "data": data,
        }
        telemetry = get_telemetry()
        began = perf_counter() if telemetry.enabled else 0.0
        try:
            self._fs.write(
                self._stream,
                json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n",
            )
            self._fs.flush(self._stream)
            if self._fsync:
                self._fs.fsync(self._stream)
        except OSError as error:
            self._poison()
            raise PersistenceError(
                f"cannot append to journal {str(self.path)!r}: {error}"
            ) from error
        self._seq += 1
        if telemetry.enabled:
            telemetry.count("journal.appends", 1, kind=kind)
            telemetry.observe(
                "phase.seconds", perf_counter() - began, phase="journal.fsync"
            )
        return record["seq"]

    def _poison(self) -> None:
        """Fail-close the handle after an I/O error (fsyncgate pattern)."""
        self._poisoned = True
        stream, self._stream = self._stream, None
        if stream is not None:
            try:
                stream.close()
            except OSError:
                # The handle is already being abandoned; a close failure
                # adds no information beyond the original I/O error.
                pass
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("journal.fail_closed")

    @property
    def poisoned(self) -> bool:
        """Whether the writer has fail-closed after an I/O error."""
        return self._poisoned

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_journal(
    path: str | Path,
    *,
    expect_format: str = JOURNAL_FORMAT,
) -> list[JournalRecord]:
    """Read and validate a journal; tolerates a torn trailing record.

    Every line is parsed, checksum-verified, and sequence-checked.  A
    record that fails validation on the **last** line is the expected
    residue of a crash mid-append: it is skipped with a
    :class:`UserWarning` and everything before it is returned.  A
    missing file yields an empty list (nothing was ever journaled).

    Raises:
        JournalCorruptError: On corruption anywhere but the tail — bad
            JSON, bad checksum, a sequence gap, or an unsupported
            declared format.
        PersistenceError: When the file exists but cannot be read.
    """
    records, _, _ = _scan(path, expect_format=expect_format)
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.count("journal.replayed", len(records))
    return records


def _scan(
    path: str | Path,
    *,
    expect_format: str = JOURNAL_FORMAT,
) -> tuple[list[JournalRecord], list[str], bool]:
    """Validate a journal file; returns ``(records, valid_lines, torn)``.

    ``valid_lines`` are the raw source lines of the validated records (so
    a writer can truncate a torn tail losslessly) and ``torn`` says
    whether a trailing fragment was skipped.
    """
    path = Path(path)
    if not path.exists():
        return [], [], False
    try:
        lines = path.read_text(encoding="utf-8").split("\n")
    except OSError as error:
        raise PersistenceError(f"cannot read journal {str(path)!r}: {error}") from error
    # A well-formed journal ends with "\n", so the final split element is
    # empty; anything else is a candidate torn tail.
    numbered = [(index + 1, line) for index, line in enumerate(lines) if line.strip()]
    records: list[JournalRecord] = []
    valid_lines: list[str] = []
    torn = False
    expected_seq: int | None = None
    for position, (line_number, line) in enumerate(numbered):
        last = position == len(numbered) - 1
        try:
            seq, kind, data = verify_record(json.loads(line))
        except (json.JSONDecodeError, JournalCorruptError) as error:
            if last:
                warnings.warn(
                    f"{path}:{line_number}: skipping torn trailing journal record "
                    f"({error})",
                    stacklevel=2,
                )
                telemetry = get_telemetry()
                if telemetry.enabled:
                    telemetry.count("journal.torn_records")
                torn = True
                break
            if isinstance(error, json.JSONDecodeError):
                raise JournalCorruptError(
                    f"{path}:{line_number}: not valid JSON ({error.msg})",
                    path=str(path),
                    line=line_number,
                ) from None
            raise JournalCorruptError(
                f"{path}:{line_number}: {error}", path=str(path), line=line_number
            ) from None
        if expected_seq is not None and seq != expected_seq:
            # A parseable, checksum-valid record with the wrong sequence
            # number means records were *lost*, not torn — even on the
            # tail this is unrecoverable corruption.
            raise JournalCorruptError(
                f"{path}:{line_number}: sequence gap: expected seq "
                f"{expected_seq}, found {seq}",
                path=str(path),
                line=line_number,
            )
        if seq == 0 and kind == HEADER_KIND:
            declared = data.get("format")
            if declared != expect_format:
                raise JournalCorruptError(
                    f"{path}: unsupported journal format {declared!r} "
                    f"(expected {expect_format!r})",
                    path=str(path),
                )
        records.append(JournalRecord(seq=seq, kind=kind, data=data))
        valid_lines.append(line)
        expected_seq = seq + 1
    return records, valid_lines, torn


def journal_header(records: Iterable[JournalRecord]) -> dict[str, Any] | None:
    """The header payload of a record stream, or ``None`` when absent."""
    for record in records:
        if record.seq == 0 and record.kind == HEADER_KIND:
            return record.data
        break
    return None
