"""Batch-level optimization criteria (paper Section 2).

The economic policy of the virtual organization is expressed through two
scalar measures of a slot combination ``s̄ = (s̄_1, ..., s̄_n)``:

* the total execution **cost** ``C(s̄) = Σ c_i(s̄_i)`` — the users' money
  flowing to resource owners, and
* the total execution **time** ``T(s̄) = Σ t_i(s̄_i)`` — the VO
  administrators' (and, partially, users') interest in throughput.

Single-criterion scheduling minimizes one of them under a limit on the
other: the VO budget ``B*`` caps cost, the slot-occupancy quota ``T*``
caps time.  The general model uses the vector
``⟨C(s̄), D(s̄), T(s̄), I(s̄)⟩`` with the slacks ``D = B* − C`` and
``I = T* − T``; :class:`CriteriaVector` packages it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.job import Job
from repro.core.window import Window

__all__ = [
    "Criterion",
    "CriteriaVector",
    "total_cost",
    "total_time",
    "criteria_vector",
]


class Criterion(enum.Enum):
    """The particular criterion ``g_i(s̄_i)`` optimized in phase 2."""

    COST = "cost"
    TIME = "time"

    def of(self, window: Window) -> float:
        """Value of this criterion for one job's window."""
        return window.cost if self is Criterion.COST else window.length

    @property
    def dual(self) -> "Criterion":
        """The complementary criterion, used as the DP constraint axis."""
        return Criterion.TIME if self is Criterion.COST else Criterion.COST


def total_cost(combination: Iterable[Window] | Mapping[Job, Window]) -> float:
    """The batch cost criterion ``C(s̄) = Σ c_i(s̄_i)``."""
    windows = combination.values() if isinstance(combination, Mapping) else combination
    return sum(window.cost for window in windows)


def total_time(combination: Iterable[Window] | Mapping[Job, Window]) -> float:
    """The batch time criterion ``T(s̄) = Σ t_i(s̄_i)``."""
    windows = combination.values() if isinstance(combination, Mapping) else combination
    return sum(window.length for window in windows)


@dataclass(frozen=True, slots=True)
class CriteriaVector:
    """The vector criterion ``⟨C(s̄), D(s̄), T(s̄), I(s̄)⟩`` of Section 2.

    Attributes:
        cost: ``C(s̄)`` — total batch execution cost.
        time: ``T(s̄)`` — total batch execution time.
        budget_slack: ``D(s̄) = B* − C(s̄)`` — unspent VO budget.
        time_slack: ``I(s̄) = T* − T(s̄)`` — unused occupancy quota.
    """

    cost: float
    time: float
    budget_slack: float
    time_slack: float

    @property
    def within_budget(self) -> bool:
        """Whether the combination respects the VO budget ``B*``."""
        return self.budget_slack >= -1e-9

    @property
    def within_quota(self) -> bool:
        """Whether the combination respects the occupancy quota ``T*``."""
        return self.time_slack >= -1e-9


def criteria_vector(
    combination: Iterable[Window] | Mapping[Job, Window],
    *,
    budget_limit: float,
    time_quota: float,
) -> CriteriaVector:
    """Evaluate the full vector criterion for a chosen combination."""
    windows = list(
        combination.values() if isinstance(combination, Mapping) else combination
    )
    cost = total_cost(windows)
    time = total_time(windows)
    return CriteriaVector(
        cost=cost,
        time=time,
        budget_slack=budget_limit - cost,
        time_slack=time_quota - time,
    )
