"""Injectable filesystem seam for the durable-state writers.

Every byte the durability layer puts on disk — journal appends, snapshot
temp-file writes, the atomic ``rename`` that publishes a snapshot, and
the ``fsync`` calls that make all of it crash-safe — goes through one
small object: :class:`FileSystem`.  Production code uses the process-wide
:data:`REAL_FS` instance, which delegates straight to the stdlib.  The
chaos engine (:mod:`repro.chaos.fs`) substitutes a fault-injecting
subclass that can tear a write mid-record, return ``ENOSPC``, fail an
``fsync``, refuse a rename, or flip a bit — all at deterministic,
seed-derived points.

The seam is deliberately tiny: it covers exactly the operations whose
failure modes the durability layer must survive, and nothing else.
Reads stay on the plain stdlib — a failed read is already surfaced as a
typed error by the readers themselves.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO

__all__ = ["FileSystem", "REAL_FS"]


class FileSystem:
    """Real filesystem operations behind the durability layer.

    Subclasses override individual operations to inject faults; the base
    class is a thin, allocation-free pass-through to the stdlib.  All
    text streams are UTF-8.
    """

    def open(self, path: str | Path, mode: str) -> IO[str]:
        """Open ``path`` as a UTF-8 text stream (``"w"`` / ``"a"`` …)."""
        return open(path, mode, encoding="utf-8")

    def write(self, stream: IO[str], text: str) -> None:
        """Write ``text`` to an open stream."""
        stream.write(text)

    def flush(self, stream: IO[str]) -> None:
        """Flush the stream's user-space buffer to the OS."""
        stream.flush()

    def fsync(self, stream: IO[str]) -> None:
        """Flush and force the stream's bytes to stable storage."""
        stream.flush()
        os.fsync(stream.fileno())

    def replace(self, source: str | Path, target: str | Path) -> None:
        """Atomically rename ``source`` over ``target``."""
        os.replace(source, target)

    def fsync_directory(self, path: str | Path) -> None:
        """Force a directory entry (e.g. after a rename) to stable storage."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: Process-wide pass-through instance used when no filesystem is injected.
REAL_FS = FileSystem()
