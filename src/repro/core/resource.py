"""Computational resources of the virtual organization.

A :class:`Resource` models one computational node (or one core line of a
multicore node) as seen by the economic scheduler: it has a *relative
performance rate* ``performance`` (the paper's ``P``, with ``P = 1`` being
the etalon node) and a *usage price per time unit* ``price`` (the paper's
``C`` / ``cash`` field of the ``Slot`` class in Section 3).

Resources are deliberately lightweight and hashable so they can serve as
dictionary keys in occupancy schedules and window bookkeeping.  The richer
node model (owner domains, local job flows, release/occupancy dynamics)
lives in :mod:`repro.grid`; the core algorithms only ever need the two
economic attributes defined here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.errors import InvalidRequestError

__all__ = ["Resource", "price_of_performance", "DEFAULT_PRICE_BASE"]

#: Base of the price/performance law used throughout the paper's Section 5
#: simulation study: the expected price of a node with performance ``P`` is
#: ``DEFAULT_PRICE_BASE ** P``.
DEFAULT_PRICE_BASE: float = 1.7

_resource_counter = itertools.count(1)


def price_of_performance(performance: float, *, base: float = DEFAULT_PRICE_BASE) -> float:
    """Return the nominal price per time unit of a node with ``performance``.

    This is the deterministic part of the paper's pricing law
    ``p = 1.7 ** performance`` (Section 5, SlotGenerator); generators add a
    uniform ±25 % perturbation on top of it.

    Args:
        performance: Relative performance rate ``P`` of the node (etalon
            node has ``P = 1``).
        base: Base of the exponential price law.

    Raises:
        InvalidRequestError: If ``performance`` is not positive.
    """
    if performance <= 0:
        raise InvalidRequestError(f"performance must be positive, got {performance!r}")
    return base**performance


@dataclass(frozen=True, slots=True)
class Resource:
    """A priced computational node.

    Attributes:
        name: Human-readable identifier (``"cpu1"`` in the paper's worked
            example).  Names need not be unique; identity is established by
            ``uid``.
        performance: Relative performance rate ``P > 0``.  A job whose
            etalon runtime (volume) is ``t`` executes on this node in
            ``t / performance`` time units (Section 6 of the paper: "the
            job execution time t/P").
        price: Usage cost per time unit ``C > 0`` charged by the owner.
        uid: Unique integer id; auto-assigned when not given.  Two
            ``Resource`` objects with the same ``uid`` compare equal, which
            lets slot lists recognise "same node" across slot splits.
    """

    name: str
    performance: float = 1.0
    price: float = 1.0
    uid: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.performance <= 0:
            raise InvalidRequestError(
                f"resource {self.name!r}: performance must be positive, got {self.performance!r}"
            )
        if self.price < 0:
            raise InvalidRequestError(
                f"resource {self.name!r}: price must be non-negative, got {self.price!r}"
            )
        if self.uid == -1:
            object.__setattr__(self, "uid", next(_resource_counter))

    def runtime_of(self, volume: float) -> float:
        """Execution time of a task with etalon runtime ``volume`` on this node.

        ``volume`` is the task's runtime on the etalon node (``P = 1``);
        a faster node shortens it proportionally.
        """
        if volume < 0:
            raise InvalidRequestError(f"volume must be non-negative, got {volume!r}")
        return volume / self.performance

    def cost_of(self, volume: float) -> float:
        """Cost of executing a task with etalon runtime ``volume`` here.

        Implements the paper's Section 6 formula for a single slot:
        ``C · t / P`` (price per unit times the actual occupancy time).
        """
        return self.price * self.runtime_of(volume)

    @property
    def price_quality(self) -> float:
        """The paper's ``C / P`` price/quality ratio (lower is better)."""
        return self.price / self.performance

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Resource):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resource({self.name!r}, performance={self.performance:g}, "
            f"price={self.price:g}, uid={self.uid})"
        )
