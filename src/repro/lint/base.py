"""Data model shared by every lint rule: findings, context, suppressions.

A rule sees one :class:`ModuleContext` per file — the parsed AST plus an
import-alias map so calls can be resolved to qualified names
(``from time import time; time()`` and ``import time; time.time()``
both resolve to ``"time.time"``).  Rules yield :class:`Finding` values;
the engine (:mod:`repro.lint.engine`) handles file walking, suppression
comments, ordering, and exit codes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.project import Project

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "file_suppressions",
    "module_key",
    "parse_suppressions",
    "SUPPRESS_ALL",
]

#: Wildcard accepted in ``# repro-lint: disable=...`` directives.
SUPPRESS_ALL = "ALL"

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: The file the finding is in, as given to the engine.
        line: 1-based source line.
        col: 0-based column (AST convention).
        code: Rule code, e.g. ``"RPR003"``.
        message: Human-readable explanation with the suggested fix.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line:col CODE message`` output line."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


def module_key(path: str) -> str:
    """Normalize ``path`` to a ``repro/...`` key for rule scoping.

    Rules scope by package-relative path (``repro/core/...``) so the
    linter behaves identically whether invoked on ``src/``, an installed
    site-packages tree, or a test fixture directory that mimics the
    layout.  When no ``repro`` component exists the posix form of the
    whole path is returned, so suffix-based scoping still works on
    loose fixture files.
    """
    posix = PurePath(path).as_posix()
    parts = posix.split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[anchor:])
    return posix


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed rule codes for inline directives.

    A directive is ``# repro-lint: disable=RPR001`` (one code),
    ``disable=RPR001,RPR004`` (several), or ``disable=all`` (that line
    opts out of every rule).  Codes are case-insensitive; unknown codes
    are kept verbatim so typos surface as *unused* suppressions rather
    than silently widening the disabled set.
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        }
        if codes:
            suppressions[lineno] = codes
    return suppressions


def file_suppressions(source: str) -> set[str]:
    """Codes disabled for the *whole file* by comment-only directives.

    A directive on a line of its own (nothing but the comment) scopes to
    the entire file; a directive trailing code scopes to that line only
    (see :func:`parse_suppressions`).  Codes of any rule family —
    ``RPR0xx`` module rules and ``RPR1xx`` flow rules alike — are
    accepted uniformly; the directive grammar never special-cases a
    code prefix.
    """
    codes: set[str] = set()
    for text in source.splitlines():
        stripped = text.strip()
        if not stripped.startswith("#"):
            continue
        match = _DIRECTIVE.search(stripped)
        if match is None:
            continue
        codes.update(
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        )
    return codes


class ModuleContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        """Wrap a parsed module.

        Args:
            path: The path the file was read from (used in findings).
            source: Full source text (used for suppression parsing).
            tree: The parsed AST.
        """
        self.path = path
        self.key = module_key(path)
        self.source = source
        self.tree = tree
        self.imports = _import_aliases(tree)

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to a dotted name.

        Import aliases are expanded (``import numpy.random as npr`` +
        ``npr.default_rng`` -> ``"numpy.random.default_rng"``).  Returns
        ``None`` for expressions that are not plain dotted access
        (subscripts, calls, literals).
        """
        attrs: list[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        attrs.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(attrs))

    def call_name(self, call: ast.Call) -> str | None:
        """The resolved qualified name of a call's function, if dotted."""
        return self.qualified_name(call.func)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified name, from every import statement."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class Rule:
    """Base class: one statically checkable project invariant.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to a path scope (entropy rules
    exempt the clock shim, serialization rules only run on serializing
    modules, and so on).
    """

    #: Stable identifier, ``RPR0xx``.
    code: ClassVar[str] = "RPR000"
    #: Short kebab-case name for ``--list-rules``.
    name: ClassVar[str] = "abstract-rule"
    #: One-line rationale tying the rule to a repo guarantee.
    rationale: ClassVar[str] = ""

    #: Extra path suffixes (beyond the built-in scope) — for tests.
    extra_paths: tuple[str, ...] = field(default=())

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule runs on ``module`` (default: every file)."""
        return True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``module``; the base class yields none."""
        return iter(())

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` under this rule's code."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


@dataclass
class ProjectRule(Rule):
    """Base class for whole-program rules (cross-module flow analysis).

    Unlike a plain :class:`Rule`, a project rule sees every parseable
    module of the run at once — as a :class:`repro.lint.project.Project`
    — and implements :meth:`check_project` instead of :meth:`check`.
    The engine attributes each finding back to its module and applies
    that file's suppressions, so a project rule's findings behave
    exactly like per-module ones downstream.
    """

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield findings for the whole project; base yields none."""
        return iter(())


def matches_suffix(key: str, suffixes: Iterable[str]) -> bool:
    """Whether a module key ends with any of the scoping suffixes."""
    return any(key.endswith(suffix) for suffix in suffixes)
