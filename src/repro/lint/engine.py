"""The lint engine: file walking, suppression handling, reporting.

The engine is pure (no process exit, no printing) so tests and other
tools can call it directly; :mod:`repro.lint.cli` layers the console
behaviour (output format, summary, exit codes) on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.base import SUPPRESS_ALL, Finding, ModuleContext, Rule, parse_suppressions
from repro.lint.rules import ALL_RULES

__all__ = [
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Code attached to files the engine cannot parse at all.
SYNTAX_ERROR_CODE = "RPR900"


def _finding_key(finding: Finding) -> tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.code)


@dataclass
class LintReport:
    """Outcome of one lint run over any number of files.

    Attributes:
        findings: Active violations, sorted by location then code.
        suppressed: Findings silenced by an inline directive (counted,
            never fatal — the suppression *is* the paper trail).
        files_checked: Number of files parsed and checked.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """``1`` when any active finding exists, else ``0``."""
        return 1 if self.findings else 0

    def extend(self, other: "LintReport") -> None:
        """Fold another report into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        """Order findings by path, line, column, code (stable output)."""
        self.findings.sort(key=_finding_key)
        self.suppressed.sort(key=_finding_key)


def _instantiate(rules: Sequence[Rule | type[Rule]] | None) -> list[Rule]:
    chosen = ALL_RULES if rules is None else rules
    return [rule() if isinstance(rule, type) else rule for rule in chosen]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule | type[Rule]] | None = None,
) -> LintReport:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives rule scoping (see :func:`repro.lint.base.module_key`),
    so fixture tests pass paths like ``"repro/core/sample.py"`` to opt
    into the core-scoped rules.  A file that does not parse yields one
    :data:`SYNTAX_ERROR_CODE` finding instead of raising.
    """
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        report.findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
            )
        )
        return report
    module = ModuleContext(path, source, tree)
    suppressions = parse_suppressions(source)
    for rule in _instantiate(rules):
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            allowed = suppressions.get(finding.line, set())
            if finding.code.upper() in allowed or SUPPRESS_ALL in allowed:
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.sort()
    return report


def lint_file(
    path: str | Path, rules: Sequence[Rule | type[Rule]] | None = None
) -> LintReport:
    """Lint one file from disk (UTF-8)."""
    file_path = Path(path)
    return lint_source(
        file_path.read_text(encoding="utf-8"), str(file_path), rules
    )


def _python_files(path: Path) -> list[Path]:
    """Every ``*.py`` under ``path`` (or the file itself), sorted."""
    if path.is_file():
        return [path]
    return sorted(candidate for candidate in path.rglob("*.py") if candidate.is_file())


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule | type[Rule]] | None = None,
) -> LintReport:
    """Lint every Python file under the given files/directories.

    Raises:
        FileNotFoundError: When a given path does not exist (a linter
            that silently checks nothing is worse than no linter).
    """
    instantiated = _instantiate(rules)
    report = LintReport()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for file_path in _python_files(path):
            report.extend(lint_file(file_path, instantiated))
    report.sort()
    return report
