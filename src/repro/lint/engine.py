"""The lint engine: file walking, suppression handling, reporting.

The engine is pure (no process exit, no printing) so tests and other
tools can call it directly; :mod:`repro.lint.cli` layers the console
behaviour (output format, summary, exit codes) on top.

Two rule families run over one file set:

* plain :class:`~repro.lint.base.Rule` subclasses see one module at a
  time (the PR-5 model);
* :class:`~repro.lint.base.ProjectRule` subclasses see the whole run as
  a :class:`~repro.lint.project.Project` — the cross-module flow rules.

Suppressions apply identically to both: a ``# repro-lint: disable=``
directive trailing code silences that line, a directive on a line of
its own silences the listed codes for the whole file.  With a
:class:`~repro.lint.cache.LintCache`, per-module results are reused for
unchanged files and the whole-program result is reused when *no* file
changed (one edit anywhere can change reachability everywhere).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.base import (
    SUPPRESS_ALL,
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    file_suppressions,
    parse_suppressions,
)
from repro.lint.cache import CACHE_VERSION, LintCache, source_digest
from repro.lint.flowrules import FLOW_RULES
from repro.lint.project import Project
from repro.lint.rules import ALL_RULES

__all__ = [
    "DEFAULT_RULES",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_sources",
]

#: Code attached to files the engine cannot parse at all.
SYNTAX_ERROR_CODE = "RPR900"

#: The full default rule set: per-module rules plus the flow rules.
DEFAULT_RULES: tuple[type[Rule], ...] = ALL_RULES + FLOW_RULES


def _finding_key(finding: Finding) -> tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.code)


@dataclass
class LintReport:
    """Outcome of one lint run over any number of files.

    Attributes:
        findings: Active violations, sorted by location then code.
        suppressed: Findings silenced by an inline directive (counted,
            never fatal — the suppression *is* the paper trail).
        files_checked: Number of files parsed and checked.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """``1`` when any active finding exists, else ``0``."""
        return 1 if self.findings else 0

    def extend(self, other: "LintReport") -> None:
        """Fold another report into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        """Order findings by path, line, column, code (stable output)."""
        self.findings.sort(key=_finding_key)
        self.suppressed.sort(key=_finding_key)


def _instantiate(rules: Sequence[Rule | type[Rule]] | None) -> list[Rule]:
    chosen = DEFAULT_RULES if rules is None else rules
    return [rule() if isinstance(rule, type) else rule for rule in chosen]


def _signature(rules: Sequence[Rule]) -> str:
    """Cache signature of a rule set (see :data:`~repro.lint.cache.CACHE_VERSION`)."""
    return f"v{CACHE_VERSION}:" + ",".join(sorted(rule.code for rule in rules))


class _Suppressions:
    """Line- and file-scoped suppression directives of one source file."""

    def __init__(self, source: str) -> None:
        self.by_line = parse_suppressions(source)
        self.file_wide = file_suppressions(source)

    def silences(self, finding: Finding) -> bool:
        allowed = self.by_line.get(finding.line, set()) | self.file_wide
        return finding.code.upper() in allowed or SUPPRESS_ALL in allowed


def _syntax_finding(path: str, error: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=error.lineno or 1,
        col=(error.offset or 1) - 1,
        code=SYNTAX_ERROR_CODE,
        message=f"file does not parse: {error.msg}",
    )


def lint_sources(
    files: Sequence[tuple[str, str]],
    rules: Sequence[Rule | type[Rule]] | None = None,
    *,
    cache: LintCache | None = None,
) -> LintReport:
    """Lint ``(path, source)`` pairs as one run (the engine core).

    Paths drive rule scoping and cross-module naming (see
    :func:`repro.lint.base.module_key`); files that do not parse yield
    one :data:`SYNTAX_ERROR_CODE` finding each and are excluded from the
    whole-program stage.  ``cache`` (optional) short-circuits unchanged
    files and, when nothing at all changed, the whole-program stage.
    """
    instantiated = _instantiate(rules)
    module_rules = [r for r in instantiated if not isinstance(r, ProjectRule)]
    project_rules = [r for r in instantiated if isinstance(r, ProjectRule)]
    module_signature = _signature(module_rules)
    project_signature = _signature(project_rules)
    report = LintReport()
    trees: dict[str, ast.Module | None] = {}
    sources: dict[str, str] = {}
    digests: list[tuple[str, str]] = []

    for path, source in files:
        report.files_checked += 1
        sources[path] = source
        digest = source_digest(source) if cache is not None else ""
        if cache is not None:
            digests.append((path, digest))
            cached = cache.load_file(path, digest, module_signature)
            if cached is not None:
                report.findings.extend(cached[0])
                report.suppressed.extend(cached[1])
                continue
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            finding = _syntax_finding(path, error)
            report.findings.append(finding)
            trees[path] = None
            if cache is not None:
                cache.store_file(path, digest, module_signature, [finding], [])
            continue
        trees[path] = tree
        module = ModuleContext(path, source, tree)
        suppressions = _Suppressions(source)
        active: list[Finding] = []
        silenced: list[Finding] = []
        for rule in module_rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                (silenced if suppressions.silences(finding) else active).append(
                    finding
                )
        report.findings.extend(active)
        report.suppressed.extend(silenced)
        if cache is not None:
            cache.store_file(path, digest, module_signature, active, silenced)

    if project_rules:
        project_result = None
        project_digest = ""
        if cache is not None:
            project_digest = LintCache.project_digest(digests)
            project_result = cache.load_project(project_digest, project_signature)
        if project_result is not None:
            report.findings.extend(project_result[0])
            report.suppressed.extend(project_result[1])
        else:
            parsed: list[tuple[str, str, ast.Module]] = []
            for path, source in files:
                if path not in trees:
                    # Module stage was a cache hit — parse now for the
                    # whole-program stage.
                    try:
                        trees[path] = ast.parse(source)
                    except SyntaxError:
                        trees[path] = None
                tree = trees[path]
                if tree is not None:
                    parsed.append((path, source, tree))
            project = Project.build(parsed)
            suppression_maps = {
                path: _Suppressions(source) for path, source, _ in parsed
            }
            active = []
            silenced = []
            for rule in project_rules:
                for finding in rule.check_project(project):
                    suppressions = suppression_maps.get(finding.path)
                    if suppressions is not None and suppressions.silences(finding):
                        silenced.append(finding)
                    else:
                        active.append(finding)
            report.findings.extend(active)
            report.suppressed.extend(silenced)
            if cache is not None:
                cache.store_project(
                    project_digest, project_signature, active, silenced
                )

    report.sort()
    return report


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule | type[Rule]] | None = None,
) -> LintReport:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives rule scoping (see :func:`repro.lint.base.module_key`),
    so fixture tests pass paths like ``"repro/core/sample.py"`` to opt
    into the core-scoped rules.  A file that does not parse yields one
    :data:`SYNTAX_ERROR_CODE` finding instead of raising.
    """
    return lint_sources([(path, source)], rules)


def lint_file(
    path: str | Path, rules: Sequence[Rule | type[Rule]] | None = None
) -> LintReport:
    """Lint one file from disk (UTF-8)."""
    file_path = Path(path)
    return lint_source(
        file_path.read_text(encoding="utf-8"), str(file_path), rules
    )


def _python_files(path: Path) -> list[Path]:
    """Every ``*.py`` under ``path`` (or the file itself), sorted."""
    if path.is_file():
        return [path]
    return sorted(candidate for candidate in path.rglob("*.py") if candidate.is_file())


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule | type[Rule]] | None = None,
    *,
    cache: LintCache | None = None,
) -> LintReport:
    """Lint every Python file under the given files/directories.

    All files form *one* run: the whole-program rules resolve imports
    across every directory given.  ``cache`` is saved by the caller
    (see :meth:`repro.lint.cache.LintCache.save`).

    Raises:
        FileNotFoundError: When a given path does not exist (a linter
            that silently checks nothing is worse than no linter).
    """
    files: list[tuple[str, str]] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for file_path in _python_files(path):
            files.append((str(file_path), file_path.read_text(encoding="utf-8")))
    return lint_sources(files, rules, cache=cache)
