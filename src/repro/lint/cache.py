"""Content-hash incremental cache for the lint engine.

Per-module results are keyed by ``(path, sha256(source), rule
signature)``; the whole-program (flow-rule) result is keyed by the
digest of *every* file's content digest, because one edited module can
change what is reachable in every other module.  A stale or corrupt
cache file is discarded wholesale — the cache can only ever skip work,
never change a result.

The rule signature is the sorted tuple of rule codes plus
:data:`CACHE_VERSION`; bump the version whenever any rule's behaviour
changes so old caches invalidate themselves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.lint.base import Finding

__all__ = ["CACHE_VERSION", "LintCache", "source_digest"]

#: Bump on any change to rule behaviour or the cache schema.
CACHE_VERSION = 1


def source_digest(source: str) -> str:
    """Stable content hash of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _encode_findings(findings: list[Finding]) -> list[dict[str, Any]]:
    return [asdict(finding) for finding in findings]


def _decode_findings(payload: Any) -> list[Finding] | None:
    if not isinstance(payload, list):
        return None
    decoded = []
    for entry in payload:
        try:
            decoded.append(Finding(**entry))
        except TypeError:
            return None
    return decoded


class LintCache:
    """One cache file; load on construction, persist via :meth:`save`."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict[str, Any]] = {}
        self._project: dict[str, Any] | None = None
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = files
        project = payload.get("project")
        if isinstance(project, dict):
            self._project = project

    # -- per-file entries ---------------------------------------------

    def load_file(
        self, path: str, digest: str, signature: str
    ) -> tuple[list[Finding], list[Finding]] | None:
        """Cached ``(findings, suppressed)`` for one unchanged file."""
        entry = self._files.get(path)
        if (
            not isinstance(entry, dict)
            or entry.get("digest") != digest
            or entry.get("signature") != signature
        ):
            self.misses += 1
            return None
        findings = _decode_findings(entry.get("findings"))
        suppressed = _decode_findings(entry.get("suppressed"))
        if findings is None or suppressed is None:
            self.misses += 1
            return None
        self.hits += 1
        return findings, suppressed

    def store_file(
        self,
        path: str,
        digest: str,
        signature: str,
        findings: list[Finding],
        suppressed: list[Finding],
    ) -> None:
        """Record one file's results under its content digest."""
        self._files[path] = {
            "digest": digest,
            "signature": signature,
            "findings": _encode_findings(findings),
            "suppressed": _encode_findings(suppressed),
        }

    # -- whole-program entry ------------------------------------------

    @staticmethod
    def project_digest(file_digests: list[tuple[str, str]]) -> str:
        """Digest over every (path, content digest) of the run."""
        hasher = hashlib.sha256()
        for path, digest in sorted(file_digests):
            hasher.update(path.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(digest.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def load_project(
        self, digest: str, signature: str
    ) -> tuple[list[Finding], list[Finding]] | None:
        """Cached whole-program results for an unchanged tree."""
        entry = self._project
        if (
            not isinstance(entry, dict)
            or entry.get("digest") != digest
            or entry.get("signature") != signature
        ):
            self.misses += 1
            return None
        findings = _decode_findings(entry.get("findings"))
        suppressed = _decode_findings(entry.get("suppressed"))
        if findings is None or suppressed is None:
            self.misses += 1
            return None
        self.hits += 1
        return findings, suppressed

    def store_project(
        self,
        digest: str,
        signature: str,
        findings: list[Finding],
        suppressed: list[Finding],
    ) -> None:
        """Record the whole-program results for the tree digest."""
        self._project = {
            "digest": digest,
            "signature": signature,
            "findings": _encode_findings(findings),
            "suppressed": _encode_findings(suppressed),
        }

    # -- persistence --------------------------------------------------

    def save(self) -> None:
        """Write the cache atomically (tmp file + rename)."""
        payload = {
            "version": CACHE_VERSION,
            "files": {path: self._files[path] for path in sorted(self._files)},
            "project": self._project,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(self.path)
