"""Conservative cross-module call graph + worker-reachability.

Built on the :class:`~repro.lint.project.Project` symbol table.  Every
top-level function and every method becomes a node (qualified as
``pkg.module.func`` / ``pkg.module.Class.method``; nested functions and
lambdas fold into their enclosing definition).  Edges are added only
when the callee resolves statically:

* direct calls to module-level functions, local or imported (aliases
  and ``__init__`` re-export chains are followed);
* ``self.method()`` inside a class, searched through statically
  resolvable base classes;
* constructor calls — ``Cls(...)`` adds edges to ``Cls.__init__`` and
  ``Cls.__post_init__`` when defined, and tags the assigned local with
  the class so later ``local.method()`` calls resolve;
* methods on locals whose class is known from a constructor call or a
  plain annotation (``x: Cls``);
* bare *references* to known functions (callbacks handed to executors,
  e.g. ``pool.map(worker_fn, ...)``) — a referenced function may be
  called, so reachability must include it.

Anything else — dynamic dispatch, getattr, values returned from calls,
subscripted containers of callables — contributes **no edge**.  The
graph is therefore an under-approximation of the true call relation on
dynamic code and an over-approximation on referenced-but-never-called
functions; the flow rules document how each one leans on that.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.lint.project import ClassInfo, Project, ProjectModule

__all__ = ["CallGraph", "FunctionInfo"]

#: Dunder methods a constructor call implicitly runs.
_CONSTRUCTOR_METHODS = ("__init__", "__post_init__")


@dataclass
class FunctionInfo:
    """One call-graph node: a function or method definition."""

    qualname: str
    module: ProjectModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None


@dataclass
class CallGraph:
    """The project's functions and the resolvable may-call edges."""

    project: Project
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project=project)
        for module in project.sorted_modules():
            for name, node in sorted(module.functions.items()):
                graph._register(f"{module.name}.{name}", module, node, None)
            for class_name, info in sorted(module.classes.items()):
                for method_name, method in sorted(info.methods.items()):
                    graph._register(
                        f"{module.name}.{class_name}.{method_name}",
                        module,
                        method,
                        class_name,
                    )
        for qualname in sorted(graph.functions):
            graph.edges[qualname] = graph._collect_edges(graph.functions[qualname])
        return graph

    def _register(
        self,
        qualname: str,
        module: ProjectModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, module=module, node=node, class_name=class_name
        )

    # -- resolution helpers -------------------------------------------

    def _class_of(self, module: ProjectModule, name: str) -> tuple[ProjectModule, ClassInfo] | None:
        """Resolve a (possibly imported/aliased) class name."""
        qualified = module.resolve_local(name)
        if qualified is None:
            return None
        symbol = self.project.resolve_symbol(qualified)
        if symbol is None or symbol.kind != "class":
            return None
        return symbol.module, symbol.module.classes[symbol.local_name]

    def _method_qualname(
        self, module: ProjectModule, info: ClassInfo, method: str, _depth: int = 0
    ) -> str | None:
        """Find ``method`` on the class or a statically known base."""
        if method in info.methods:
            return f"{module.name}.{info.name}.{method}"
        if _depth >= 8:
            return None
        for base in info.bases:
            dotted = self.project.resolve_expression(module, base)
            if dotted is None:
                continue
            symbol = self.project.resolve_symbol(dotted)
            if symbol is None or symbol.kind != "class":
                continue
            base_info = symbol.module.classes[symbol.local_name]
            found = self._method_qualname(
                symbol.module, base_info, method, _depth + 1
            )
            if found is not None:
                return found
        return None

    def _constructor_targets(
        self, module: ProjectModule, info: ClassInfo
    ) -> list[str]:
        targets = []
        for dunder in _CONSTRUCTOR_METHODS:
            qualname = self._method_qualname(module, info, dunder)
            if qualname is not None and qualname in self.functions:
                targets.append(qualname)
        return targets

    def _function_targets(
        self, function: FunctionInfo, expr: ast.expr, local_types: dict[str, str]
    ) -> list[str]:
        """Qualnames a callable expression may invoke (possibly empty)."""
        module = function.module
        if isinstance(expr, ast.Name):
            resolved = module.resolve_local(expr.id)
            if resolved is None:
                return []
            symbol = self.project.resolve_symbol(resolved)
            if symbol is None:
                return []
            if symbol.kind == "function":
                qualname = f"{symbol.module.name}.{symbol.local_name}"
                return [qualname] if qualname in self.functions else []
            if symbol.kind == "class":
                return self._constructor_targets(
                    symbol.module, symbol.module.classes[symbol.local_name]
                )
            return []
        if isinstance(expr, ast.Attribute):
            base = expr.value
            # self.method() — resolve through the enclosing class.
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and function.class_name is not None
            ):
                info = module.classes.get(function.class_name)
                if info is None:
                    return []
                qualname = self._method_qualname(module, info, expr.attr)
                return (
                    [qualname]
                    if qualname is not None and qualname in self.functions
                    else []
                )
            # local.method() where the local's class is known.
            if isinstance(base, ast.Name) and base.id in local_types:
                symbol = self.project.resolve_symbol(local_types[base.id])
                if symbol is not None and symbol.kind == "class":
                    owner = symbol.module
                    info = owner.classes[symbol.local_name]
                    qualname = self._method_qualname(owner, info, expr.attr)
                    return (
                        [qualname]
                        if qualname is not None and qualname in self.functions
                        else []
                    )
                return []
            # Dotted access: module.func, Class.method, alias chains.
            dotted = self.project.resolve_expression(module, expr)
            if dotted is None:
                return []
            symbol = self.project.resolve_symbol(dotted)
            if symbol is None:
                return []
            if symbol.kind == "function":
                qualname = f"{symbol.module.name}.{symbol.local_name}"
                return [qualname] if qualname in self.functions else []
            if symbol.kind == "class":
                return self._constructor_targets(
                    symbol.module, symbol.module.classes[symbol.local_name]
                )
            return []
        return []

    def _local_types(self, function: FunctionInfo) -> dict[str, str]:
        """Local name -> class qualname, from constructors and annotations."""
        module = function.module
        types: dict[str, str] = {}

        def note_annotation(name: str, annotation: ast.expr | None) -> None:
            if annotation is None:
                return
            dotted = self.project.resolve_expression(module, annotation)
            if dotted is None and isinstance(annotation, ast.Constant):
                # String annotations: "ClassName" (no dotted forms).
                if isinstance(annotation.value, str) and annotation.value.isidentifier():
                    dotted = module.resolve_local(annotation.value)
            if dotted is None:
                return
            symbol = self.project.resolve_symbol(dotted)
            if symbol is not None and symbol.kind == "class":
                types[name] = f"{symbol.module.name}.{symbol.local_name}"

        arguments = function.node.args
        for arg in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            note_annotation(arg.arg, arg.annotation)
        for node in ast.walk(function.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                note_annotation(node.target.id, node.annotation)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = node.value.func
                class_name: str | None = None
                if isinstance(callee, ast.Name):
                    class_name = callee.id
                elif isinstance(callee, ast.Attribute):
                    dotted = self.project.resolve_expression(module, callee)
                    if dotted is not None:
                        symbol = self.project.resolve_symbol(dotted)
                        if symbol is not None and symbol.kind == "class":
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    types[target.id] = (
                                        f"{symbol.module.name}.{symbol.local_name}"
                                    )
                            continue
                if class_name is not None:
                    resolved = self._class_of(module, class_name)
                    if resolved is not None:
                        owner, info = resolved
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                types[target.id] = f"{owner.name}.{info.name}"
        return types

    def _collect_edges(self, function: FunctionInfo) -> set[str]:
        local_types = self._local_types(function)
        targets: set[str] = set()
        callee_positions: set[int] = set()
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                callee_positions.add(id(node.func))
                targets.update(
                    self._function_targets(function, node.func, local_types)
                )
        # Bare references to known functions (callbacks shipped to
        # executors, registries, ...): a referenced function may run.
        for node in ast.walk(function.node):
            if id(node) in callee_positions:
                continue
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            for qualname in self._function_targets(function, node, local_types):
                # References only count for plain functions; a bare
                # class reference is not an instantiation.
                if self.functions[qualname].class_name is None or isinstance(
                    node, ast.Attribute
                ):
                    targets.add(qualname)
        return targets

    # -- queries ------------------------------------------------------

    def reachable(self, roots: list[str]) -> dict[str, str]:
        """Map each reachable function to the (first) root that reaches it.

        Roots missing from the graph are ignored — an entry point whose
        module is outside the linted set simply contributes nothing.
        """
        witness: dict[str, str] = {}
        queue: deque[str] = deque()
        for root in sorted(set(roots)):
            if root in self.functions and root not in witness:
                witness[root] = root
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in witness:
                    witness[callee] = witness[current]
                    queue.append(callee)
        return witness
