"""SARIF 2.1.0 export of a :class:`~repro.lint.engine.LintReport`.

SARIF (Static Analysis Results Interchange Format) is the artifact
format CI code-scanning UIs ingest.  The document carries the full rule
catalog under ``tool.driver.rules`` and one ``result`` per finding;
findings silenced by an in-source directive are included with a
``suppressions`` entry of kind ``inSource`` so consumers can count the
paper trail without treating it as active.

Columns: the engine stores 0-based AST columns; SARIF regions are
1-based, so ``startColumn`` is ``col + 1``.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.lint.base import Finding, Rule
from repro.lint.engine import SYNTAX_ERROR_CODE, LintReport

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "sarif_document"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Name/semver reported for the tool driver.
_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "2.0.0"
_TOOL_URI = "https://example.invalid/repro/docs/static-analysis.md"


def _rule_entries(rules: Sequence[Rule | type[Rule]]) -> list[dict[str, Any]]:
    entries = []
    seen = set()
    for rule in rules:
        code = rule.code
        if code in seen:
            continue
        seen.add(code)
        entries.append(
            {
                "id": code,
                "name": rule.name,
                "shortDescription": {"text": rule.rationale or rule.name},
            }
        )
    entries.append(
        {
            "id": SYNTAX_ERROR_CODE,
            "name": "syntax-error",
            "shortDescription": {"text": "file does not parse"},
        }
    )
    entries.sort(key=lambda entry: entry["id"])
    return entries


def _result(
    finding: Finding, rule_index: dict[str, int], suppressed: bool
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def sarif_document(
    report: LintReport, rules: Sequence[Rule | type[Rule]]
) -> dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run, as plain data."""
    rule_entries = _rule_entries(rules)
    rule_index = {entry["id"]: index for index, entry in enumerate(rule_entries)}
    results = [
        _result(finding, rule_index, suppressed=False)
        for finding in report.findings
    ]
    results.extend(
        _result(finding, rule_index, suppressed=True)
        for finding in report.suppressed
    )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "informationUri": _TOOL_URI,
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport, rules: Sequence[Rule | type[Rule]]) -> str:
    """The SARIF document serialized deterministically (sorted keys)."""
    return json.dumps(sarif_document(report, rules), indent=2, sort_keys=True) + "\n"
