"""repro-lint: the project's invariant linter.

The reproduction's headline property — byte-identical results for any
worker count, across crashes and resumes — rests on a handful of coding
invariants that no general-purpose linter knows about:

* no ambient entropy (wall-clock timestamps, the global ``random``
  state, OS randomness) in the scheduling and simulation code;
* every RNG in a sharded path is seeded through the derivation helpers
  (:func:`repro.sim.experiment.derive_iteration_seed`,
  :func:`repro.grid.resilience.derive_node_seed`), never ad hoc;
* invariants raise typed errors from :mod:`repro.core.errors` rather
  than ``assert`` (which vanishes under ``python -O``);
* everything feeding serialization or journal writes iterates in a
  defined order;
* no handler is broad enough to swallow
  :class:`~repro.core.errors.JournalCorruptError` or
  :class:`~repro.core.errors.CheckpointMismatchError`;
* every telemetry/decision-log emit in the hot scheduling paths
  (``repro/core``, ``repro/grid``) sits behind an enabled-guard, so
  disabled telemetry stays zero-cost.

On top of the per-module rules sits a whole-program layer: a project
symbol table with import/alias resolution (:mod:`repro.lint.project`),
a conservative cross-module call graph (:mod:`repro.lint.graph`), and
four flow rules (:mod:`repro.lint.flowrules`) — RPR101 no shared state
in worker-reachable code, RPR102 typed errors at the ``__all__``
surface, RPR103 fork-safe worker arguments, RPR104 deterministic
resource lifecycles.

This package checks those invariants statically, at lint time, instead
of waiting for a 25 000-iteration differential run to diverge.  Run it
as ``repro-lint src/`` (console script) or ``python -m repro.lint src/``;
rules are one class each (:mod:`repro.lint.rules`,
:mod:`repro.lint.flowrules`), findings print as
``file:line:col CODE message`` (or SARIF 2.1.0 via ``--format sarif``),
and ``# repro-lint: disable=...`` comments suppress line- or file-wide
(and are counted).  ``--changed-only`` scopes reporting to the git
diff; ``--cache`` makes reruns incremental.  See
``docs/static-analysis.md`` for the full rule catalog, the
whole-program model and its conservatisms, and the suppression policy.
"""

from repro.lint.base import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    file_suppressions,
    module_key,
    parse_suppressions,
)
from repro.lint.cache import LintCache
from repro.lint.engine import (
    DEFAULT_RULES,
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.flowrules import (
    FLOW_RULES,
    ExceptionContractRule,
    ForkSafetyRule,
    ResourceLifecycleRule,
    SharedStateRule,
)
from repro.lint.graph import CallGraph
from repro.lint.project import Project
from repro.lint.rules import (
    ALL_RULES,
    BroadExceptRule,
    DerivedSeedRule,
    EntropyRule,
    GuardedTelemetryRule,
    NoAssertRule,
    OrderedSerializationRule,
    rules_by_code,
)
from repro.lint.sarif import render_sarif, sarif_document
from repro.lint.cli import main

__all__ = [
    # data model
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "file_suppressions",
    "module_key",
    "parse_suppressions",
    # engine
    "DEFAULT_RULES",
    "LintReport",
    "LintCache",
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_paths",
    # whole-program analysis
    "Project",
    "CallGraph",
    # per-module rules
    "ALL_RULES",
    "EntropyRule",
    "DerivedSeedRule",
    "NoAssertRule",
    "OrderedSerializationRule",
    "BroadExceptRule",
    "GuardedTelemetryRule",
    "rules_by_code",
    # flow rules
    "FLOW_RULES",
    "SharedStateRule",
    "ExceptionContractRule",
    "ForkSafetyRule",
    "ResourceLifecycleRule",
    # export
    "render_sarif",
    "sarif_document",
    # entry point
    "main",
]
