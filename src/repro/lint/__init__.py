"""repro-lint: the project's invariant linter.

The reproduction's headline property — byte-identical results for any
worker count, across crashes and resumes — rests on a handful of coding
invariants that no general-purpose linter knows about:

* no ambient entropy (wall-clock timestamps, the global ``random``
  state, OS randomness) in the scheduling and simulation code;
* every RNG in a sharded path is seeded through the derivation helpers
  (:func:`repro.sim.experiment.derive_iteration_seed`,
  :func:`repro.grid.resilience.derive_node_seed`), never ad hoc;
* invariants raise typed errors from :mod:`repro.core.errors` rather
  than ``assert`` (which vanishes under ``python -O``);
* everything feeding serialization or journal writes iterates in a
  defined order;
* no handler is broad enough to swallow
  :class:`~repro.core.errors.JournalCorruptError` or
  :class:`~repro.core.errors.CheckpointMismatchError`;
* every telemetry/decision-log emit in the hot scheduling paths
  (``repro/core``, ``repro/grid``) sits behind an enabled-guard, so
  disabled telemetry stays zero-cost.

This package checks those invariants statically, at lint time, instead
of waiting for a 25 000-iteration differential run to diverge.  Run it
as ``repro-lint src/`` (console script) or ``python -m repro.lint src/``;
rules are one class each (:mod:`repro.lint.rules`), findings print as
``file:line:col CODE message``, and inline
``# repro-lint: disable=RPR00x`` comments suppress (and are counted).
See ``docs/static-analysis.md`` for the full rule catalog and the
suppression policy.
"""

from repro.lint.base import (
    Finding,
    ModuleContext,
    Rule,
    module_key,
    parse_suppressions,
)
from repro.lint.engine import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import (
    ALL_RULES,
    BroadExceptRule,
    DerivedSeedRule,
    EntropyRule,
    GuardedTelemetryRule,
    NoAssertRule,
    OrderedSerializationRule,
    rules_by_code,
)
from repro.lint.cli import main

__all__ = [
    # data model
    "Finding",
    "ModuleContext",
    "Rule",
    "module_key",
    "parse_suppressions",
    # engine
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    # rules
    "ALL_RULES",
    "EntropyRule",
    "DerivedSeedRule",
    "NoAssertRule",
    "OrderedSerializationRule",
    "BroadExceptRule",
    "GuardedTelemetryRule",
    "rules_by_code",
    # entry point
    "main",
]
