"""Whole-program flow rules: RPR101–RPR104.

RPR101 and RPR102 are :class:`~repro.lint.base.ProjectRule` subclasses —
they need the cross-module call graph.  RPR103 and RPR104 inspect one
module at a time (a ship-site or an ``open()`` call and everything that
feeds it sit in the same function), so they stay plain module rules and
run everywhere without a project build.

Every rule is conservative in the same direction: a construct the
analysis cannot resolve statically produces **no finding** (dynamic
dispatch never crashes the linter and never fabricates a violation),
while the constructs it *can* resolve are checked strictly.  The known
conservatisms are catalogued in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.base import Finding, ModuleContext, ProjectRule, Rule
from repro.lint.graph import CallGraph, FunctionInfo
from repro.lint.project import Project, ProjectModule

__all__ = [
    "FLOW_RULES",
    "ExceptionContractRule",
    "ForkSafetyRule",
    "ResourceLifecycleRule",
    "SharedStateRule",
    "WORKER_ENTRY_POINTS",
]

#: Declared worker entry points: functions shipped to worker processes
#: by the parallel engines.  Everything statically reachable from these
#: runs under fork/spawn and must not depend on parent-process state.
WORKER_ENTRY_POINTS = (
    # ParallelRunner iteration shards (plain / traced / checkpoint-hole).
    "repro.sim.experiment._run_span",
    "repro.sim.experiment._run_span_traced",
    "repro.sim.experiment._run_indices",
    # ShardedSearchExecutor worker loop.
    "repro.core.shard_search._shard_worker",
    # Chaos-engine supervised span task (pool-shipped callable).
    "repro.chaos.proc.CrashOnceSpanTask.__call__",
)

#: Module-key prefixes exempt from RPR101.  The observability layer
#: *is* per-process mutable context by contract: each worker installs
#: its own telemetry/clock and ships the result back as a trace shard
#: (see ``_run_span_traced``), so its module-level active-context slots
#: are intentional — divergence is reconciled by the trace merger.
SHARED_STATE_ALLOWLIST = ("repro/obs/",)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
        "__setitem__",
    }
)

#: Builtin exception names the public surface may not raise untyped.
#: KeyError/IndexError/TypeError stay allowed — they are the idiomatic
#: contract of mapping lookups and argument-type checks — as do the
#: OSError family (real I/O failures) and control-flow exceptions.
_DENIED_BUILTIN_RAISES = frozenset(
    {
        "BaseException",
        "Exception",
        "ValueError",
        "RuntimeError",
        "ArithmeticError",
        "ZeroDivisionError",
        "AssertionError",
    }
)


def _local_bindings(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally inside a function (params, assigns, loops...).

    ``global``-declared names are *excluded*: assigning one rebinds
    module state, which is exactly what RPR101 exists to catch.
    """
    bound: set[str] = set()
    globals_declared: set[str] = set()
    arguments = node.args
    for arg in [
        *arguments.posonlyargs,
        *arguments.args,
        *arguments.kwonlyargs,
    ]:
        bound.add(arg.arg)
    if arguments.vararg:
        bound.add(arguments.vararg.arg)
    if arguments.kwarg:
        bound.add(arguments.kwarg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Global):
            globals_declared.update(child.names)
        elif isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    # Only Store-context names bind: the base of a
                    # subscript/attribute store (``STATE['k'] = 1``)
                    # loads an existing name, it does not create one.
                    if isinstance(leaf, ast.Name) and isinstance(
                        leaf.ctx, ast.Store
                    ):
                        bound.add(leaf.id)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(child.target):
                if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Store):
                    bound.add(leaf.id)
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            bound.add(child.name)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if child is not node:
                bound.add(child.name)
        elif isinstance(child, ast.comprehension):
            for leaf in ast.walk(child.target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return bound - globals_declared


def _root_name(node: ast.expr) -> ast.Name | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


@dataclass
class SharedStateRule(ProjectRule):
    """RPR101: worker-reachable code must not write module-level state.

    A worker process forks (or re-imports) the module tree; any write to
    a module-level name inside worker-reachable code diverges silently
    between processes and breaks the worker-count-invariance guarantee.
    State must travel explicitly — parameters in, return values out.
    """

    code = "RPR101"
    name = "no-shared-state-in-workers"
    rationale = (
        "worker-reachable code writing module-level state diverges per "
        "process and breaks worker-count invariance"
    )

    #: Additional entry points (dotted qualnames) — for fixture tests.
    extra_entry_points: tuple[str, ...] = field(default=())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Flag module-level state writes in worker-reachable functions."""
        graph = CallGraph.build(project)
        roots = list(WORKER_ENTRY_POINTS) + list(self.extra_entry_points)
        witness = graph.reachable(roots)
        for qualname in sorted(witness):
            info = graph.functions[qualname]
            if any(
                info.module.key.startswith(prefix)
                for prefix in SHARED_STATE_ALLOWLIST
            ):
                continue
            yield from self._check_function(info, witness[qualname])

    def _check_function(self, info: FunctionInfo, root: str) -> Iterator[Finding]:
        module = info.module
        node = info.node
        locals_ = _local_bindings(node)

        def is_module_level(name: str) -> bool:
            if name in locals_ or name == "self":
                return False
            return (
                name in module.module_names
                or name in module.imports
                or name in module.classes
            )

        # One-hop aliases: ``entries = SOME_GLOBAL`` makes writes
        # through ``entries`` writes to module state.
        aliases: set[str] = set()
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Assign)
                and isinstance(child.value, ast.Name)
                and is_module_level(child.value.id)
            ):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)

        def written_root(target: ast.expr) -> str | None:
            """Module-level name a store target writes through, if any."""
            if isinstance(target, ast.Name):
                # Plain rebinds only count under an explicit ``global``
                # (otherwise the name is local); _local_bindings already
                # removed global-declared names from ``locals_``.
                declared_global = any(
                    isinstance(g, ast.Global) and target.id in g.names
                    for g in ast.walk(node)
                )
                if declared_global:
                    return target.id
                return None
            root = _root_name(target)
            if root is None:
                return None
            if is_module_level(root.id) or root.id in aliases:
                return root.id
            return None

        def finding_for(statement: ast.AST, name: str, action: str) -> Finding:
            return Finding(
                path=module.path,
                line=getattr(statement, "lineno", 1),
                col=getattr(statement, "col_offset", 0),
                code=self.code,
                message=(
                    f"worker-reachable function '{info.qualname}' (reached "
                    f"from entry '{root}') {action} module-level state "
                    f"'{name}'; pass state explicitly instead of sharing it"
                ),
            )

        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    name = written_root(target)
                    if name is not None:
                        yield finding_for(child, name, "writes")
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                name = written_root(child.target)
                if name is not None:
                    yield finding_for(child, name, "writes")
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    name = written_root(target)
                    if name is not None:
                        yield finding_for(child, name, "deletes")
            elif isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    mutation_root = _root_name(func.value)
                    if mutation_root is not None and (
                        is_module_level(mutation_root.id)
                        or mutation_root.id in aliases
                    ):
                        yield finding_for(
                            child,
                            mutation_root.id,
                            f"mutates (.{func.attr}())",
                        )


@dataclass
class ExceptionContractRule(ProjectRule):
    """RPR102: the public surface raises typed errors only.

    Functions exported via ``__all__`` — and everything they reach —
    form the package's API.  Callers are entitled to catch
    ``SchedulingError``; an untyped ``ValueError``/``RuntimeError``
    escaping that surface silently bypasses every structured handler
    (worker marshalling, chaos recovery, the CLI's error reporting).
    """

    code = "RPR102"
    name = "typed-errors-at-public-surface"
    rationale = (
        "untyped ValueError/RuntimeError escaping __all__-exported "
        "functions bypasses the SchedulingError contract"
    )

    #: Additional root qualnames (dotted) — for fixture tests.
    extra_roots: tuple[str, ...] = field(default=())

    def _public_roots(self, project: Project, graph: CallGraph) -> list[str]:
        roots: list[str] = list(self.extra_roots)
        for module in project.sorted_modules():
            for exported in module.exports or ():
                symbol = project.resolve_symbol(f"{module.name}.{exported}")
                if symbol is None:
                    continue
                if symbol.kind == "function":
                    roots.append(f"{symbol.module.name}.{symbol.local_name}")
                elif symbol.kind == "class":
                    info = symbol.module.classes[symbol.local_name]
                    for method in info.methods:
                        roots.append(
                            f"{symbol.module.name}.{symbol.local_name}.{method}"
                        )
        return roots

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Flag untyped builtin raises reachable from the public API."""
        graph = CallGraph.build(project)
        witness = graph.reachable(self._public_roots(project, graph))
        for qualname in sorted(witness):
            info = graph.functions[qualname]
            for child in ast.walk(info.node):
                if not isinstance(child, ast.Raise) or child.exc is None:
                    continue
                raised = child.exc
                if isinstance(raised, ast.Call):
                    raised = raised.func
                name = self._untyped_name(project, info.module, raised)
                if name is not None:
                    yield Finding(
                        path=info.module.path,
                        line=child.lineno,
                        col=child.col_offset,
                        code=self.code,
                        message=(
                            f"function '{qualname}' is reachable from the "
                            f"public API (via '{witness[qualname]}') but "
                            f"raises untyped {name}; raise a typed error "
                            f"from repro.core.errors instead"
                        ),
                    )

    def _untyped_name(
        self, project: Project, module: ProjectModule, raised: ast.expr
    ) -> str | None:
        """The denied builtin name raised, or ``None`` when acceptable."""
        dotted = project.resolve_expression(module, raised)
        if dotted is None:
            return None  # dynamic raise — conservative no-finding
        if project.resolve_symbol(dotted) is not None:
            return None  # project-defined (typed) exception
        terminal = dotted.rsplit(".", 1)[-1]
        if terminal in _DENIED_BUILTIN_RAISES:
            return terminal
        return None


#: Constructors whose results must not cross a process boundary, by kind.
_FORK_UNSAFE_CONSTRUCTORS = {
    "open": "file",
    "io.open": "file",
    "io.FileIO": "file",
    "io.BufferedReader": "file",
    "io.BufferedWriter": "file",
    "io.TextIOWrapper": "file",
    "tempfile.TemporaryFile": "file",
    "tempfile.NamedTemporaryFile": "file",
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "threading.Event": "lock",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "lock",
    "multiprocessing.Semaphore": "lock",
    "multiprocessing.Condition": "lock",
    "multiprocessing.Pool": "pool",
    "multiprocessing.pool.Pool": "pool",
    "concurrent.futures.ProcessPoolExecutor": "pool",
    "concurrent.futures.ThreadPoolExecutor": "pool",
    "concurrent.futures.process.ProcessPoolExecutor": "pool",
    "concurrent.futures.thread.ThreadPoolExecutor": "pool",
    "multiprocessing.Pipe": "pipe",
    "multiprocessing.connection.Pipe": "pipe",
    "multiprocessing.Queue": "pipe",
}

def _flatten_literals(expressions: list[ast.expr]) -> list[ast.expr]:
    """Expand container literals so their elements are judged directly.

    ``pool.map(fn, [handle])`` ships ``handle`` just as surely as
    ``pool.submit(fn, handle)`` — one level of ``Tuple``/``List``/``Set``
    literal is looked through (nested literals recurse).
    """
    flat: list[ast.expr] = []
    for expr in expressions:
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            flat.extend(_flatten_literals(expr.elts))
        else:
            flat.append(expr)
    return flat


#: Pool methods whose arguments are pickled and shipped to workers.
_POOL_SHIP_METHODS = frozenset(
    {"submit", "map", "starmap", "apply", "apply_async", "imap", "imap_unordered"}
)


@dataclass
class ForkSafetyRule(Rule):
    """RPR103: no files/locks/pools/pipes shipped to worker processes.

    File objects, locks, and pools are process-local: pickled through a
    pool they either fail loudly or (worse) arrive as divergent copies.
    One exception is encoded: pipe ``Connection`` ends **may** ride in
    ``Process(args=...)`` — handing a child its pipe at creation time is
    the documented multiprocessing pattern (``shard_search`` does it) —
    but never through a pool's pickling methods.
    """

    code = "RPR103"
    name = "fork-safe-worker-arguments"
    rationale = (
        "files/locks/pools captured in worker arguments or closures are "
        "process-local and break (or silently diverge) when shipped"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag fork-unsafe locals shipped to worker processes."""
        for node in module.tree.body:
            yield from self._check_scope(module, node)

    def _check_scope(self, module: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_function(module, node)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._check_scope(module, child)

    def _qualified(self, module: ModuleContext, expr: ast.expr) -> str | None:
        return module.qualified_name(expr)

    def _check_function(
        self, module: ModuleContext, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # kind of every local bound to a fork-unsafe constructor result.
        unsafe: dict[str, str] = {}
        pools: set[str] = set()
        local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda] = {}

        def constructor_kind(value: ast.expr) -> str | None:
            if not isinstance(value, ast.Call):
                return None
            qualified = self._qualified(module, value.func)
            if qualified is None:
                return None
            return _FORK_UNSAFE_CONSTRUCTORS.get(qualified)

        def bind(target: ast.expr, kind: str) -> None:
            if isinstance(target, ast.Name):
                unsafe[target.id] = kind
                if kind == "pool":
                    pools.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    bind(element, kind)

        for child in ast.walk(function):
            if isinstance(child, ast.Assign):
                kind = constructor_kind(child.value)
                if kind is not None:
                    for target in child.targets:
                        bind(target, kind)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    kind = constructor_kind(item.context_expr)
                    if kind is not None and item.optional_vars is not None:
                        bind(item.optional_vars, kind)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not function:
                    local_defs[child.name] = child

        def argument_kind(expr: ast.expr) -> tuple[str, str] | None:
            """(kind, description) when an argument is fork-unsafe."""
            direct = constructor_kind(expr)
            if direct is not None:
                return direct, f"a fresh {direct} object"
            if isinstance(expr, ast.Name):
                if expr.id in unsafe:
                    return unsafe[expr.id], f"{expr.id!r} (a {unsafe[expr.id]})"
                if expr.id in local_defs:
                    captured = self._captured_unsafe(local_defs[expr.id], unsafe)
                    if captured is not None:
                        name, kind = captured
                        return (
                            kind,
                            f"closure {expr.id!r} capturing {name!r} (a {kind})",
                        )
            if isinstance(expr, ast.Lambda):
                captured = self._captured_unsafe(expr, unsafe)
                if captured is not None:
                    name, kind = captured
                    return kind, f"a lambda capturing {name!r} (a {kind})"
            return None

        def ship_arguments(call: ast.Call) -> tuple[str, list[ast.expr]] | None:
            """(site kind, shipped expressions) for worker-ship calls."""
            func = call.func
            # pool.submit/map/... on a known pool local.
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _POOL_SHIP_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in pools
            ):
                shipped = _flatten_literals(
                    [*call.args, *(kw.value for kw in call.keywords)]
                )
                return "pool", shipped
            qualified = self._qualified(module, func)
            if qualified in ("multiprocessing.Process", "multiprocessing.process.Process", "Process"):
                resolved = module.imports.get("Process")
                if qualified == "Process" and resolved not in (
                    "multiprocessing.Process",
                    "multiprocessing.process.Process",
                ):
                    return None
                shipped = []
                for keyword in call.keywords:
                    if keyword.arg in ("target", "args", "kwargs"):
                        shipped.extend(_flatten_literals([keyword.value]))
                shipped.extend(_flatten_literals(call.args))
                return "process", shipped
            return None

        for child in ast.walk(function):
            if not isinstance(child, ast.Call):
                continue
            site = ship_arguments(child)
            if site is None:
                continue
            site_kind, shipped = site
            for expr in shipped:
                verdict = argument_kind(expr)
                if verdict is None:
                    continue
                kind, description = verdict
                # Pipe connections legitimately ride Process(args=...):
                # the child inherits its end at creation time.
                if kind == "pipe" and site_kind == "process":
                    continue
                yield self.finding(
                    module,
                    child,
                    f"ships {description} to a worker process; "
                    f"{'pool arguments are pickled per task' if site_kind == 'pool' else 'worker arguments must be process-independent'}"
                    " — pass paths/values and open process-local handles inside the worker",
                )

    @staticmethod
    def _captured_unsafe(
        definition: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        unsafe: dict[str, str],
    ) -> tuple[str, str] | None:
        """First enclosing-scope fork-unsafe name a closure reads."""
        bound: set[str] = set()
        arguments = definition.args
        for arg in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            bound.add(arg.arg)
        if arguments.vararg:
            bound.add(arguments.vararg.arg)
        if arguments.kwarg:
            bound.add(arguments.kwarg.arg)
        body = (
            definition.body
            if isinstance(definition.body, list)
            else [definition.body]
        )
        loaded: list[str] = []
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, ast.Store):
                        bound.add(node.id)
                    elif isinstance(node.ctx, ast.Load):
                        loaded.append(node.id)
        for name in loaded:
            if name not in bound and name in unsafe:
                return name, unsafe[name]
        return None


#: Calls that acquire a closeable resource RPR104 tracks.
_RESOURCE_CONSTRUCTORS = (
    "open",
    "io.open",
    "tempfile.TemporaryFile",
    "tempfile.NamedTemporaryFile",
    "tempfile.SpooledTemporaryFile",
    "tempfile.TemporaryDirectory",
)


@dataclass
class ResourceLifecycleRule(Rule):
    """RPR104: every ``open()``/temp-file is closed deterministically.

    Library code must not rely on garbage collection to flush and close
    file handles — a crashed worker or a resumed checkpoint replays on
    whatever the last *flushed* byte was.  Acceptable lifecycles:
    ``with`` (directly or via ``contextlib.closing``), a ``try/finally``
    that closes the binding, handing the open handle to the caller
    (``return``/``yield`` — ownership transfers), or storing it on
    ``self`` (the owning object manages it, e.g. a sink's ``close()``).
    """

    code = "RPR104"
    name = "deterministic-resource-lifecycle"
    rationale = (
        "open()/temp-files not closed via with or try/finally leak "
        "handles and lose buffered writes on crash paths"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag resource constructors without a closing lifecycle."""
        parents: dict[int, ast.AST] = {}
        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = module.call_name(node)
            if qualified not in _RESOURCE_CONSTRUCTORS:
                continue
            if self._lifecycle_ok(node, parents):
                continue
            yield self.finding(
                module,
                node,
                f"result of {qualified}() is not closed via 'with' or "
                f"try/finally (and is not returned, yielded, or stored "
                f"on self); wrap it in a 'with' block",
            )

    @staticmethod
    def _lifecycle_ok(call: ast.Call, parents: dict[int, ast.AST]) -> bool:
        parent = parents.get(id(call))
        # contextlib.closing(open(...)) / io.TextIOWrapper(open(...)):
        # step out of wrapping calls before judging the context.
        while isinstance(parent, ast.Call):
            call = parent
            parent = parents.get(id(call))
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            # self.attr = open(...): the object owns the lifecycle.
            if any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in targets
            ):
                return True
            names = [
                target.id for target in targets if isinstance(target, ast.Name)
            ]
            if names:
                return ResourceLifecycleRule._closed_in_finally(
                    parent, names, parents
                )
        return False

    @staticmethod
    def _closed_in_finally(
        assign: ast.stmt, names: list[str], parents: dict[int, ast.AST]
    ) -> bool:
        """Whether a try/finally in the same function closes a name.

        Both placements of the standard idiom count: the assignment
        inside the ``try`` body, and the equally common
        assign-*then*-``try`` form where the binding is a sibling of the
        ``try`` statement.  Any ``finally`` block within the enclosing
        function that calls ``name.close()``/``name.cleanup()``
        satisfies the rule — scoping finer than that would flag correct
        code, and the rule must only lean the other way.
        """
        scope: ast.AST | None = assign
        while scope is not None and not isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            scope = parents.get(id(scope))
        if scope is None:
            return False
        for node in ast.walk(scope):
            if not (isinstance(node, ast.Try) and node.finalbody):
                continue
            for statement in node.finalbody:
                for leaf in ast.walk(statement):
                    if (
                        isinstance(leaf, ast.Call)
                        and isinstance(leaf.func, ast.Attribute)
                        and leaf.func.attr in ("close", "cleanup")
                        and isinstance(leaf.func.value, ast.Name)
                        and leaf.func.value.id in names
                    ):
                        return True
        return False


#: The flow-rule set, appended to the per-module catalog by default.
FLOW_RULES: tuple[type[Rule], ...] = (
    SharedStateRule,
    ExceptionContractRule,
    ForkSafetyRule,
    ResourceLifecycleRule,
)
