"""Project symbol table: every module of one lint run, cross-resolvable.

The per-module linter (:mod:`repro.lint.rules`) sees one file at a time;
the flow rules (:mod:`repro.lint.flowrules`) need to know what a dotted
name in module A refers to in module B.  This module builds that view:

* each file becomes a :class:`ProjectModule` — its dotted module name,
  import bindings (``from x import y as z`` maps ``z`` to ``x.y``),
  top-level functions/classes, module-level assigned names, and the
  literal ``__all__`` export list when one exists;
* :class:`Project` resolves dotted names *across* modules, following
  re-export chains through ``__init__`` files with a cycle guard, and
  degrades to ``None`` for anything dynamic or external — resolution is
  conservative by design: an unresolvable name produces no symbol, and
  rules built on top must treat "no symbol" as "no finding".

Module names derive from :func:`repro.lint.base.module_key`, so a tree
rooted at ``src/repro`` and a test fixture tree rooted at
``tmp_path/repro`` produce the same dotted names (``repro.core.x``) and
therefore resolve each other's imports identically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.lint.base import module_key

__all__ = [
    "ClassInfo",
    "Project",
    "ProjectModule",
    "ResolvedSymbol",
    "module_name_from_key",
]


def module_name_from_key(key: str) -> str:
    """Dotted module name for a :func:`module_key`-normalized path.

    ``repro/core/optimize.py`` -> ``repro.core.optimize``;
    ``repro/lint/__init__.py`` -> ``repro.lint``.
    """
    parts = key.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class ClassInfo:
    """One top-level class: its methods and (unresolved) base names."""

    name: str
    node: ast.ClassDef
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: Base-class expressions as written (resolved lazily via imports).
    bases: tuple[ast.expr, ...] = ()


@dataclass
class ResolvedSymbol:
    """What a dotted name resolved to inside the project.

    ``kind`` is one of ``"module"``, ``"function"``, ``"class"``, or
    ``"name"`` (a module-level assigned name).  ``node`` is the defining
    AST node when one exists (``None`` for modules).
    """

    kind: str
    module: "ProjectModule"
    local_name: str
    node: ast.AST | None


class ProjectModule:
    """One parsed module and its locally resolvable symbols."""

    def __init__(self, path: str, name: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.key = module_key(path)
        self.name = name
        self.source = source
        self.tree = tree
        self.imports: dict[str, str] = {}
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_names: set[str] = set()
        self.exports: tuple[str, ...] | None = None
        self._index()

    # -- construction -------------------------------------------------

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.key.endswith("/__init__.py"):
            return self.name
        head, _, _ = self.name.rpartition(".")
        return head

    def _resolve_relative(self, module: str | None, level: int) -> str | None:
        """Absolute module named by a ``from ... import`` statement."""
        if level == 0:
            return module
        anchor = self.package.split(".") if self.package else []
        drop = level - 1
        if drop > len(anchor):
            return None
        if drop:
            anchor = anchor[:-drop]
        if module:
            anchor.extend(module.split("."))
        return ".".join(anchor) or None

    def _index(self) -> None:
        # Imports anywhere in the module (function-local lazy imports
        # included — they bind names the call graph must resolve).
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_relative(node.module, node.level)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"
        # Top-level definitions and module-scope bindings only.
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(name=node.name, node=node, bases=tuple(node.bases))
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[item.name] = item
                self.classes[node.name] = info
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for name in _assigned_names(node):
                    self.module_names.add(name)
        self.exports = _literal_exports(self.tree)

    # -- queries ------------------------------------------------------

    def resolve_local(self, name: str) -> str | None:
        """Qualified dotted target of a local name, if statically known."""
        if name in self.imports:
            return self.imports[name]
        if name in self.functions or name in self.classes or name in self.module_names:
            return f"{self.name}.{name}"
        return None


def _assigned_names(node: ast.stmt) -> Iterator[str]:
    targets: list[ast.expr]
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    else:
        return
    for target in targets:
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name):
                yield leaf.id


def _literal_exports(tree: ast.Module) -> tuple[str, ...] | None:
    """The module's ``__all__`` when it is a literal list/tuple of strings."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        value = node.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None
        return tuple(names)
    return None


class Project:
    """All modules of one lint run, resolvable against each other."""

    def __init__(self, modules: Iterable[ProjectModule]) -> None:
        self.modules: dict[str, ProjectModule] = {}
        for module in modules:
            self.modules[module.name] = module

    @classmethod
    def build(cls, files: Iterable[tuple[str, str, ast.Module]]) -> "Project":
        """Build from ``(path, source, parsed tree)`` triples."""
        return cls(
            ProjectModule(path, module_name_from_key(module_key(path)), source, tree)
            for path, source, tree in files
        )

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build from ``{dotted module name: source}`` (test fixtures).

        Raises:
            SyntaxError: When a fixture source does not parse — fixture
                bugs should fail loudly, unlike engine inputs (which get
                an RPR900 finding and are excluded from the project).
        """
        modules = []
        for name, source in sources.items():
            path = name.replace(".", "/") + ".py"
            # "pkg.__init__" is the package "pkg", as on disk.
            if name.endswith(".__init__"):
                name = name[: -len(".__init__")]
            modules.append(ProjectModule(path, name, source, ast.parse(source)))
        return cls(modules)

    def sorted_modules(self) -> list[ProjectModule]:
        """Modules in name order (deterministic iteration for rules)."""
        return [self.modules[name] for name in sorted(self.modules)]

    def _split(self, qualified: str) -> tuple[ProjectModule, list[str]] | None:
        """Longest known module prefix of ``qualified`` + the remainder."""
        parts = qualified.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return self.modules[prefix], parts[cut:]
        return None

    def resolve_symbol(
        self, qualified: str, _seen: frozenset[str] = frozenset()
    ) -> ResolvedSymbol | None:
        """Resolve a dotted name to a project symbol, or ``None``.

        Follows re-export chains (``from repro.core.optimize import
        minimize_time`` in ``repro/core/__init__.py`` makes
        ``repro.core.minimize_time`` resolve to the real function) with
        a cycle guard, so mutually importing ``__init__`` files cannot
        loop.  External names and anything dynamic resolve to ``None``.
        """
        if qualified in _seen:
            return None
        split = self._split(qualified)
        if split is None:
            return None
        module, rest = split
        if not rest:
            return ResolvedSymbol("module", module, "", None)
        head, tail = rest[0], rest[1:]
        if head in module.functions:
            if tail:
                return None
            return ResolvedSymbol("function", module, head, module.functions[head])
        if head in module.classes:
            info = module.classes[head]
            if not tail:
                return ResolvedSymbol("class", module, head, info.node)
            if len(tail) == 1 and tail[0] in info.methods:
                return ResolvedSymbol(
                    "function", module, f"{head}.{tail[0]}", info.methods[tail[0]]
                )
            return None
        if head in module.imports:
            target = ".".join([module.imports[head], *tail])
            return self.resolve_symbol(target, _seen | {qualified})
        if head in module.module_names:
            if tail:
                return None
            return ResolvedSymbol("name", module, head, None)
        return None

    def resolve_expression(
        self, module: ProjectModule, node: ast.expr
    ) -> str | None:
        """Dotted name of a ``Name``/``Attribute`` chain in ``module``.

        The chain's base name is expanded through the module's local
        bindings (imports, then own definitions); non-dotted expressions
        (calls, subscripts, literals) return ``None``.
        """
        attrs: list[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = module.resolve_local(node.id) or node.id
        attrs.append(base)
        return ".".join(reversed(attrs))
