"""Console entry point: ``repro-lint`` / ``python -m repro.lint``.

Exit codes follow the usual linter contract:

* ``0`` — every checked file is clean (suppressed findings are fine);
* ``1`` — at least one active finding;
* ``2`` — usage error (unknown rule code, missing path, git failure).

Findings go to stdout as ``file:line:col CODE message`` (one per line,
machine-parseable); the summary goes to stderr so piping stdout into
another tool stays clean.  ``--format sarif`` swaps the finding lines
for a SARIF 2.1.0 document (CI artifact); ``--output`` redirects either
format to a file.  ``--changed-only`` still analyses the *whole* tree —
flow rules need every module to resolve reachability — but reports only
findings in files touched relative to ``--diff-base`` (plus untracked
files), which is the pre-commit sweet spot; pair it with ``--cache`` so
the unchanged majority is never re-parsed.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.lint.base import Rule
from repro.lint.cache import LintCache
from repro.lint.engine import DEFAULT_RULES, LintReport, lint_paths
from repro.lint.rules import rules_by_code
from repro.lint.sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project invariant linter: determinism, seeding, error "
            "discipline, and whole-program flow analysis for the repro "
            "scheduling library."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the summary",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by inline directives",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write findings/SARIF to FILE instead of stdout",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report findings only for files changed vs --diff-base or "
            "untracked (the whole tree is still analysed)"
        ),
    )
    parser.add_argument(
        "--diff-base",
        metavar="REF",
        default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help="content-hash incremental cache file (created when absent)",
    )
    return parser


def _selected_rules(select: str | None) -> list[type[Rule]] | None:
    if select is None:
        return None
    catalog = rules_by_code()
    chosen: list[type[Rule]] = []
    for raw in select.split(","):
        code = raw.strip().upper()
        if not code:
            continue
        if code not in catalog:
            raise KeyError(code)
        chosen.append(catalog[code])
    return chosen


def _print_catalog(stream: TextIO) -> None:
    for rule in DEFAULT_RULES:
        stream.write(f"{rule.code}  {rule.name}: {rule.rationale}\n")


def _print_summary(report: LintReport, statistics: bool, stream: TextIO) -> None:
    noun = "file" if report.files_checked == 1 else "files"
    stream.write(
        f"repro-lint: checked {report.files_checked} {noun}: "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed\n"
    )
    if statistics and (report.findings or report.suppressed):
        counts: dict[str, int] = {}
        for finding in report.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        for code in sorted(counts):
            stream.write(f"  {code}: {counts[code]}\n")


def _changed_files(diff_base: str) -> set[Path]:
    """Absolute paths changed vs ``diff_base`` plus untracked files.

    Raises:
        OSError: When git is unavailable or the diff fails (surfaced as
            a usage error by :func:`main`).
    """
    root_proc = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
    )
    if root_proc.returncode != 0:
        raise OSError(f"not a git checkout: {root_proc.stderr.strip()}")
    root = Path(root_proc.stdout.strip())
    changed: set[Path] = set()
    for arguments in (
        ["git", "diff", "--name-only", diff_base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(arguments, capture_output=True, text=True)
        if proc.returncode != 0:
            raise OSError(
                f"{' '.join(arguments)} failed: {proc.stderr.strip()}"
            )
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add((root / line.strip()).resolve())
    return changed


def _restrict_to_changed(report: LintReport, changed: set[Path]) -> LintReport:
    """The report filtered to findings inside the changed-file set."""
    filtered = LintReport(files_checked=report.files_checked)
    filtered.findings = [
        finding
        for finding in report.findings
        if Path(finding.path).resolve() in changed
    ]
    filtered.suppressed = [
        finding
        for finding in report.suppressed
        if Path(finding.path).resolve() in changed
    ]
    return filtered


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_catalog(sys.stdout)
        return 0
    try:
        rules = _selected_rules(args.select)
    except KeyError as error:
        known = ",".join(sorted(rules_by_code()))
        sys.stderr.write(f"repro-lint: unknown rule code {error.args[0]} (known: {known})\n")
        return 2
    cache = LintCache(args.cache) if args.cache else None
    try:
        report = lint_paths(args.paths, rules, cache=cache)
    except FileNotFoundError as error:
        sys.stderr.write(f"repro-lint: {error}\n")
        return 2
    if cache is not None:
        cache.save()
    if args.changed_only:
        try:
            changed = _changed_files(args.diff_base)
        except OSError as error:
            sys.stderr.write(f"repro-lint: --changed-only: {error}\n")
            return 2
        report = _restrict_to_changed(report, changed)
    selected_for_catalog = rules if rules is not None else list(DEFAULT_RULES)
    if args.output:
        destination: TextIO = open(args.output, "w", encoding="utf-8")
    else:
        destination = sys.stdout
    try:
        if args.format == "sarif":
            destination.write(render_sarif(report, selected_for_catalog))
        else:
            for finding in report.findings:
                destination.write(finding.render() + "\n")
            if args.show_suppressed:
                for finding in report.suppressed:
                    destination.write(finding.render() + " (suppressed)\n")
    finally:
        if args.output:
            destination.close()
    _print_summary(report, args.statistics, sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
