"""Console entry point: ``repro-lint`` / ``python -m repro.lint``.

Exit codes follow the usual linter contract:

* ``0`` — every checked file is clean (suppressed findings are fine);
* ``1`` — at least one active finding;
* ``2`` — usage error (unknown rule code, missing path).

Findings go to stdout as ``file:line:col CODE message`` (one per line,
machine-parseable); the summary goes to stderr so piping stdout into
another tool stays clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence, TextIO

from repro.lint.base import Rule
from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import ALL_RULES, rules_by_code

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project invariant linter: determinism, seeding, and error "
            "discipline for the repro scheduling library."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to the summary",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by inline directives",
    )
    return parser


def _selected_rules(select: str | None) -> list[type[Rule]] | None:
    if select is None:
        return None
    catalog = rules_by_code()
    chosen: list[type[Rule]] = []
    for raw in select.split(","):
        code = raw.strip().upper()
        if not code:
            continue
        if code not in catalog:
            raise KeyError(code)
        chosen.append(catalog[code])
    return chosen


def _print_catalog(stream: TextIO) -> None:
    for rule in ALL_RULES:
        stream.write(f"{rule.code}  {rule.name}: {rule.rationale}\n")


def _print_summary(report: LintReport, statistics: bool, stream: TextIO) -> None:
    noun = "file" if report.files_checked == 1 else "files"
    stream.write(
        f"repro-lint: checked {report.files_checked} {noun}: "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed\n"
    )
    if statistics and (report.findings or report.suppressed):
        counts: dict[str, int] = {}
        for finding in report.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        for code in sorted(counts):
            stream.write(f"  {code}: {counts[code]}\n")


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_catalog(sys.stdout)
        return 0
    try:
        rules = _selected_rules(args.select)
    except KeyError as error:
        known = ",".join(sorted(rules_by_code()))
        sys.stderr.write(f"repro-lint: unknown rule code {error.args[0]} (known: {known})\n")
        return 2
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as error:
        sys.stderr.write(f"repro-lint: {error}\n")
        return 2
    for finding in report.findings:
        sys.stdout.write(finding.render() + "\n")
    if args.show_suppressed:
        for finding in report.suppressed:
            sys.stdout.write(finding.render() + " (suppressed)\n")
    _print_summary(report, args.statistics, sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
