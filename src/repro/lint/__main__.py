"""``python -m repro.lint`` — module entry point for the invariant linter."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
