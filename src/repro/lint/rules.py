"""The rule catalog: six statically checkable determinism invariants.

Each rule is one class; ``ALL_RULES`` is the default set the engine
runs.  The catalog with worked examples and rationale lives in
``docs/static-analysis.md`` — keep the two in sync when adding rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import Finding, ModuleContext, Rule, matches_suffix

__all__ = [
    "ALL_RULES",
    "EntropyRule",
    "DerivedSeedRule",
    "NoAssertRule",
    "OrderedSerializationRule",
    "BroadExceptRule",
    "GuardedTelemetryRule",
    "rules_by_code",
]

#: Modules allowed to touch the wall clock: the injectable clock shim is
#: the single funnel for timestamps (see ``repro/obs/clock.py``).
ENTROPY_ALLOWLIST = ("repro/obs/clock.py",)

#: Sharded execution paths: every RNG here must be seeded through the
#: derivation helpers or results stop being worker-count-invariant.
#: The chaos engine is held to the same bar — fault placement must be a
#: pure function of the master ``--chaos-seed`` or campaigns stop
#: replaying.
SHARDED_PATHS = (
    "sim/experiment.py",
    "grid/resilience.py",
    "chaos/faults.py",
    "chaos/fs.py",
    "chaos/proc.py",
    "chaos/harness.py",
)

#: Modules whose output is serialized, journaled, checksummed, or
#: diffed byte-for-byte across runs.
SERIALIZATION_PATHS = (
    "core/serialize.py",
    "core/journal.py",
    "grid/checkpoint.py",
    "sim/checkpoint.py",
    "sim/export.py",
    "obs/export.py",
    "obs/events.py",
    "obs/merge.py",
)

#: ``random`` module helpers that drive the *shared global* RNG (or the
#: OS entropy pool, for SystemRandom) — never acceptable in seeded code.
_SEED_DERIVERS = ("derive_iteration_seed", "derive_node_seed", "derive_fault_seed")

_WALL_CLOCK_CALLS = {
    "time.time": "wall-clock timestamp",
    "time.time_ns": "wall-clock timestamp",
    "datetime.datetime.now": "wall-clock timestamp",
    "datetime.datetime.utcnow": "wall-clock timestamp",
    "datetime.datetime.today": "wall-clock timestamp",
    "datetime.date.today": "wall-clock date",
}

_OS_ENTROPY_CALLS = {
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "random.SystemRandom": "OS-entropy RNG",
}


def _is_none(node: ast.expr | None) -> bool:
    return node is None or (isinstance(node, ast.Constant) and node.value is None)


class EntropyRule(Rule):
    """RPR001 — no ambient entropy outside the clock allowlist.

    Wall-clock reads, the process-global ``random`` state, OS
    randomness, and random UUIDs all make output depend on *when and
    where* the code ran instead of only on the seed.  One stray call in
    ``core/``/``sim/``/``grid/`` silently breaks worker-count-invariant
    sharding and byte-identical resume.  Timestamps belong in
    :mod:`repro.obs.clock` (the only allowlisted module); randomness
    must come from an explicitly seeded ``random.Random(seed)``.

    Monotonic duration clocks (``time.monotonic``,
    ``time.perf_counter``) are deliberately *not* flagged: they measure
    elapsed time for budgets and telemetry and never produce values
    that feed seeded state or serialized results.
    """

    code = "RPR001"
    name = "no-ambient-entropy"
    rationale = "seeded runs must not read wall clocks or global/OS randomness"

    def applies_to(self, module: ModuleContext) -> bool:
        """Every module except the injectable clock shim."""
        return not matches_suffix(module.key, ENTROPY_ALLOWLIST)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag calls into wall clocks, the global RNG, and OS entropy."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.call_name(node)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"ambient {_WALL_CLOCK_CALLS[name]} via {name}() — route "
                    "timestamps through repro.obs.clock.now()",
                )
            elif name in _OS_ENTROPY_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"ambient {_OS_ENTROPY_CALLS[name]} via {name}() — all "
                    "randomness must flow from an explicit seed",
                )
            elif name.startswith("secrets."):
                yield self.finding(
                    module,
                    node,
                    f"ambient OS entropy via {name}() — all randomness must "
                    "flow from an explicit seed",
                )
            elif name == "random.Random" and (
                not node.args or _is_none(node.args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    "random.Random() without an explicit seed falls back to "
                    "OS entropy — pass a derived seed",
                )
            elif name.startswith("random.") and name.count(".") == 1:
                helper = name.split(".", 1)[1]
                if helper and helper[0].islower():
                    yield self.finding(
                        module,
                        node,
                        f"{name}() drives the process-global RNG — construct "
                        "a seeded random.Random instead",
                    )


class DerivedSeedRule(Rule):
    """RPR002 — sharded paths seed RNGs only through the derivation helpers.

    :class:`~repro.sim.experiment.ParallelRunner` and the failure
    streams in :mod:`repro.grid.resilience` are byte-identical for any
    worker count *only because* every RNG they build is keyed by
    ``derive_iteration_seed(master, index)`` /
    ``derive_node_seed(master, name)`` — stable identities, independent
    of shard assignment.  An ad-hoc ``random.Random(seed + index)``
    (correlated neighbouring streams) or ``random.Random(worker_id)``
    (shard-dependent!) type-checks fine and only fails 25 000
    iterations later; this rule catches it at lint time.
    """

    code = "RPR002"
    name = "derived-seeds-only"
    rationale = "worker-count invariance requires hash-derived per-shard seeds"

    def applies_to(self, module: ModuleContext) -> bool:
        """Only the sharded execution paths (plus test-supplied extras)."""
        return matches_suffix(module.key, SHARDED_PATHS + self.extra_paths)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag ``random.Random(x)`` where ``x`` is not a derived seed."""
        derived_names = self._derived_assignments(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.call_name(node) != "random.Random":
                continue
            if not node.args or _is_none(node.args[0]):
                continue  # unseeded: RPR001's finding, not ours
            if not self._is_derived(module, node.args[0], derived_names):
                yield self.finding(
                    module,
                    node,
                    "RNG in a sharded path must be seeded via "
                    "derive_iteration_seed()/derive_node_seed(), not an "
                    "ad-hoc expression",
                )

    @staticmethod
    def _derived_assignments(module: ModuleContext) -> set[str]:
        """Names assigned directly from a seed-derivation call."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = module.call_name(node.value)
            if callee is None or callee.split(".")[-1] not in _SEED_DERIVERS:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_derived(
        module: ModuleContext, seed: ast.expr, derived_names: set[str]
    ) -> bool:
        """Whether a seed expression traces to a derivation helper."""
        if isinstance(seed, ast.Call):
            callee = module.call_name(seed)
            return callee is not None and callee.split(".")[-1] in _SEED_DERIVERS
        if isinstance(seed, ast.Name):
            return seed.id in derived_names
        return False


class NoAssertRule(Rule):
    """RPR003 — invariants raise typed errors, never bare ``assert``.

    ``python -O`` strips every ``assert`` statement, so an invariant
    guarded by one silently stops being checked exactly when someone
    runs the scheduler "optimized" in production.  Library invariants
    must raise the typed errors from :mod:`repro.core.errors`
    (``InvariantViolationError`` for internal consistency checks), which
    survive any interpreter flag and map to the CLI's exit-code
    contract.
    """

    code = "RPR003"
    name = "no-bare-assert"
    rationale = "asserts vanish under python -O; typed errors do not"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag every ``assert`` statement."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module,
                    node,
                    "bare assert is stripped under python -O — raise a typed "
                    "error from repro.core.errors instead",
                )


class OrderedSerializationRule(Rule):
    """RPR004 — serialized output is produced in a defined order.

    Journals, checkpoints, and traces are compared byte-for-byte across
    runs (crash/resume equivalence, workers-1-vs-N diffs), so the
    modules that write them must not let unordered collections pick the
    output order: set iteration order varies across processes (string
    hash randomization), and ``json.dumps`` without ``sort_keys=True``
    emits keys in whatever insertion order the producing code happened
    to use.  Iterate sets through ``sorted(...)`` and always pass
    ``sort_keys=True`` when serializing.
    """

    code = "RPR004"
    name = "ordered-serialization"
    rationale = "byte-identical journals need deterministic iteration and key order"

    def applies_to(self, module: ModuleContext) -> bool:
        """Only modules that write serialized/journaled output."""
        return matches_suffix(module.key, SERIALIZATION_PATHS + self.extra_paths)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag unordered set iteration and unsorted ``json.dump(s)``."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = module.call_name(node)
                if name in ("json.dump", "json.dumps") and not self._sorts_keys(node):
                    yield self.finding(
                        module,
                        node,
                        f"{name}() without sort_keys=True makes byte output "
                        "depend on dict insertion order — pass sort_keys=True",
                    )
            for iterable in self._iteration_sources(node):
                if self._is_set_expression(module, iterable):
                    yield self.finding(
                        module,
                        iterable,
                        "iterating a set in a serialization path has no "
                        "defined order — wrap the set in sorted(...)",
                    )

    @staticmethod
    def _sorts_keys(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "sort_keys":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False

    @staticmethod
    def _iteration_sources(node: ast.AST) -> list[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return [node.iter]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return [generator.iter for generator in node.generators]
        return []

    @staticmethod
    def _is_set_expression(module: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return module.call_name(node) in ("set", "frozenset")
        return False


class BroadExceptRule(Rule):
    """RPR005 — no handler broad enough to swallow corruption errors.

    ``except:`` / ``except Exception`` around persistence or replay
    code silently eats :class:`~repro.core.errors.JournalCorruptError`
    and :class:`~repro.core.errors.CheckpointMismatchError` — the two
    errors whose entire purpose is refusing to resume from state that
    cannot be trusted.  Catch the specific errors a call site can
    actually handle; let everything else propagate to the CLI's typed
    exit-code handler.
    """

    code = "RPR005"
    name = "no-broad-except"
    rationale = "broad handlers swallow JournalCorruptError/CheckpointMismatchError"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag bare ``except:`` and ``except (Base)Exception``."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except swallows JournalCorruptError/"
                    "CheckpointMismatchError — catch specific errors",
                )
                continue
            caught = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expression in caught:
                if module.qualified_name(expression) in ("Exception", "BaseException"):
                    yield self.finding(
                        module,
                        expression,
                        f"except {module.qualified_name(expression)} swallows "
                        "JournalCorruptError/CheckpointMismatchError — catch "
                        "specific errors",
                    )


#: Hot scheduling paths where every telemetry emit must sit behind an
#: explicit enabled-guard (the zero-cost-when-off contract).
TELEMETRY_GUARDED_PATHS = ("repro/core/", "repro/grid/")

#: Recording methods whose mere invocation builds argument tuples and
#: label dicts — overhead the disabled path must never pay per call.
_TELEMETRY_EMIT_METHODS = ("count", "observe", "set_gauge", "event", "emit")

#: Receiver-name fragments identifying a telemetry-ish object
#: (``telemetry.count``, ``decisions.emit``, ``self._telemetry.event``).
_TELEMETRY_RECEIVERS = ("telemetry", "decisions", "obs")


class GuardedTelemetryRule(Rule):
    """RPR006 — hot-path telemetry emits sit behind an enabled-guard.

    Every recording method already no-ops when telemetry is disabled,
    but the *call itself* still allocates: argument tuples, label dicts,
    formatted values.  In the per-slot/per-job loops of ``repro/core``
    and ``repro/grid`` that overhead is exactly what the zero-cost-
    when-off contract forbids, so an emit there must be lexically inside
    one of the accepted guard shapes:

    * an ``if`` whose test reads ``.enabled`` (or a local name assigned
      from one, e.g. ``record_decisions = decisions.enabled``) or calls
      ``telemetry_enabled()``;
    * a function whose *first* statement is such a test ending in
      ``return``/``raise`` (the early-return guard idiom);
    * a function whose name marks it as the instrumented copy of a
      dual-loop pair (``*_instrumented``) — its call sites pay the one
      boolean check.

    ``span()`` is deliberately exempt: it returns the shared no-op
    singleton and is used at per-batch/per-iteration granularity, never
    inside the hot scan loops.
    """

    code = "RPR006"
    name = "guarded-telemetry"
    rationale = "zero-cost-when-off: hot-path emits must be behind enabled-guards"

    def applies_to(self, module: ModuleContext) -> bool:
        """Only the hot scheduling paths (plus test-supplied extras)."""
        if matches_suffix(module.key, self.extra_paths):
            return True
        return any(module.key.startswith(prefix) for prefix in TELEMETRY_GUARDED_PATHS)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Flag telemetry emits reachable while telemetry is disabled."""
        guard_names = self._guard_names(module)
        yield from self._visit(module, module.tree, False, guard_names)

    def _visit(
        self,
        module: ModuleContext,
        node: ast.AST,
        guarded: bool,
        guard_names: set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = (
                guarded
                or "instrumented" in node.name
                or self._has_early_return_guard(module, node, guard_names)
            )
            for child in node.body:
                yield from self._visit(module, child, inner, guard_names)
            return
        if isinstance(node, ast.If):
            # A test that consults ``enabled`` marks both branches as
            # deliberate; the disabled branch of an inverted guard never
            # contains emits in practice, and leniency beats false
            # positives in a gating linter.
            branch = guarded or self._mentions_enabled(module, node.test, guard_names)
            for child in node.body:
                yield from self._visit(module, child, branch, guard_names)
            for child in node.orelse:
                yield from self._visit(module, child, branch, guard_names)
            return
        if not guarded and isinstance(node, ast.Call):
            name = module.call_name(node)
            if name is not None and self._is_emit(name):
                yield self.finding(
                    module,
                    node,
                    f"unguarded telemetry emit {name}() in a hot path — wrap "
                    "it in `if telemetry.enabled:` (or move it into an "
                    "*_instrumented dual-loop copy)",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child, guarded, guard_names)

    @staticmethod
    def _is_emit(name: str) -> bool:
        parts = name.split(".")
        if parts[-1] not in _TELEMETRY_EMIT_METHODS or len(parts) < 2:
            return False
        return any(
            fragment in part.lower()
            for part in parts[:-1]
            for fragment in _TELEMETRY_RECEIVERS
        )

    def _guard_names(self, module: ModuleContext) -> set[str]:
        """Local names assigned from an ``.enabled`` read."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not self._mentions_enabled(module, node.value, names):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _mentions_enabled(
        module: ModuleContext, expression: ast.expr, guard_names: set[str]
    ) -> bool:
        for node in ast.walk(expression):
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                return True
            if isinstance(node, ast.Name) and node.id in guard_names:
                return True
            if isinstance(node, ast.Call):
                name = module.call_name(node)
                if name is not None and name.split(".")[-1] == "telemetry_enabled":
                    return True
        return False

    def _has_early_return_guard(
        self,
        module: ModuleContext,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        guard_names: set[str],
    ) -> bool:
        body = function.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]  # skip the docstring
        if not body or not isinstance(body[0], ast.If):
            return False
        guard = body[0]
        if not self._mentions_enabled(module, guard.test, guard_names):
            return False
        return any(
            isinstance(statement, (ast.Return, ast.Raise)) for statement in guard.body
        )


#: The per-module rule set, in code order.  The engine's full default
#: set additionally includes the whole-program flow rules — see
#: :data:`repro.lint.engine.DEFAULT_RULES`.
ALL_RULES: tuple[type[Rule], ...] = (
    EntropyRule,
    DerivedSeedRule,
    NoAssertRule,
    OrderedSerializationRule,
    BroadExceptRule,
    GuardedTelemetryRule,
)


def rules_by_code() -> dict[str, type[Rule]]:
    """Map rule code -> rule class, RPR0xx and RPR1xx alike.

    Codes of both families resolve uniformly, so ``--select`` and
    suppression bookkeeping never special-case the flow rules.
    """
    from repro.lint.flowrules import FLOW_RULES

    return {rule.code: rule for rule in ALL_RULES + FLOW_RULES}
