"""Slot and job generators with the paper's Section 5 parameters.

The paper's simulation study does not model a whole distributed system;
it generates the *ordered list of vacant slots* and the *job batch*
directly, with published parameter ranges ("SlotGenerator" and
"JobGenerator").  This module reproduces both.  Every range below
defaults to the value printed in Section 5; all draws are uniform inside
their ranges, as the paper states.

One parameter is **not** published: the jobs' maximum price ``C`` (the
worked example has explicit per-job cost limits, the simulation section
lists none).  We derive it as
``C = price_cap_factor × base^(min performance)`` — the user agrees to
pay up to a premium over the *nominal* price of the slowest node that
satisfies the request — with ``price_cap_factor`` drawn uniformly from
``price_cap_factor_range``.  The default range ``[0.9, 1.3]`` is the
calibrated free parameter documented in DESIGN.md: it reproduces the
paper's ALP/AMP ratios, not its absolute numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import InvalidRequestError
from repro.core.job import Batch, Job, ResourceRequest
from repro.core.pricing import ExponentialPricing
from repro.core.resource import Resource
from repro.core.slot import Slot, SlotList

__all__ = [
    "SlotGeneratorConfig",
    "SlotGenerator",
    "JobGeneratorConfig",
    "JobGenerator",
]


def _check_range(name: str, bounds: tuple[float, float], *, minimum: float | None = None) -> None:
    low, high = bounds
    if low > high:
        raise InvalidRequestError(f"{name} must satisfy low <= high, got {bounds!r}")
    if minimum is not None and low < minimum:
        raise InvalidRequestError(f"{name} must start at >= {minimum}, got {bounds!r}")


@dataclass(frozen=True)
class SlotGeneratorConfig:
    """Section 5 "SlotGenerator" parameters.

    Attributes:
        slot_count_range: Number of slots in the ordered list
            (paper: ``[120, 150]``).
        slot_length_range: Individual slot length (paper: ``[50, 300]``).
        performance_range: Node performance rates (paper: ``[1, 3]`` —
            "the environment is relatively homogeneous").
        same_start_probability: Probability that a slot reuses the
            previous slot's start time (paper: 0.4 — resources released
            in cluster bursts).
        start_gap_range: Gap between distinct consecutive start times
            (paper: ``[0, 10]`` — "at each moment of time we have at
            least five different slots ready for utilization").
        pricing: Price law; paper: ``[0.75p, 1.25p]`` with
            ``p = 1.7^performance``.
    """

    slot_count_range: tuple[int, int] = (120, 150)
    slot_length_range: tuple[float, float] = (50.0, 300.0)
    performance_range: tuple[float, float] = (1.0, 3.0)
    same_start_probability: float = 0.4
    start_gap_range: tuple[float, float] = (0.0, 10.0)
    pricing: ExponentialPricing = field(default_factory=ExponentialPricing)

    def __post_init__(self) -> None:
        _check_range("slot_count_range", self.slot_count_range, minimum=1)
        _check_range("slot_length_range", self.slot_length_range, minimum=0.0)
        _check_range("performance_range", self.performance_range)
        if self.performance_range[0] <= 0:
            raise InvalidRequestError(
                f"performance_range must be positive, got {self.performance_range!r}"
            )
        if not 0 <= self.same_start_probability <= 1:
            raise InvalidRequestError(
                "same_start_probability must be in [0, 1], got "
                f"{self.same_start_probability!r}"
            )
        _check_range("start_gap_range", self.start_gap_range, minimum=0.0)


class SlotGenerator:
    """Generates the ordered list of vacant slots for one iteration."""

    def __init__(self, config: SlotGeneratorConfig | None = None, *, seed: int | None = None) -> None:
        self.config = config or SlotGeneratorConfig()
        self._rng = random.Random(seed)
        self._node_counter = 0

    @property
    def rng(self) -> random.Random:
        """The generator's RNG (shared with JobGenerator in experiments)."""
        return self._rng

    def generate(self) -> SlotList:
        """Draw one slot list.

        Every slot lives on a fresh resource: the list is a snapshot of
        *currently vacant* spans, and in the paper's generator each entry
        is an independent release.
        """
        config = self.config
        rng = self._rng
        count = rng.randint(*config.slot_count_range)
        slots = []
        start = 0.0
        for _ in range(count):
            if slots and rng.random() < config.same_start_probability:
                pass  # reuse the previous start: a synchronized release
            else:
                start += rng.uniform(*config.start_gap_range)
            performance = rng.uniform(*config.performance_range)
            price = config.pricing.sample(performance, rng)
            self._node_counter += 1
            node = Resource(
                f"sim-n{self._node_counter}", performance=performance, price=price
            )
            length = rng.uniform(*config.slot_length_range)
            slots.append(Slot(node, start, start + length))
        return SlotList(slots)


@dataclass(frozen=True)
class JobGeneratorConfig:
    """Section 5 "JobGenerator" parameters.

    Attributes:
        job_count_range: Jobs per batch (paper: ``[3, 7]``).
        node_count_range: Required concurrent nodes (paper: ``[1, 6]``).
        volume_range: Job length/complexity at etalon performance
            (paper: ``[50, 150]``).
        min_performance_range: Required minimum node performance
            (paper: ``[1, 2]`` — "a factor of job heterogeneity").
        price_cap_factor_range: The unpublished price-cap parameter (see
            module docstring).
        price_base: Base of the price law the cap is expressed against.
    """

    job_count_range: tuple[int, int] = (3, 7)
    node_count_range: tuple[int, int] = (1, 6)
    volume_range: tuple[float, float] = (50.0, 150.0)
    min_performance_range: tuple[float, float] = (1.0, 2.0)
    price_cap_factor_range: tuple[float, float] = (0.9, 1.3)
    price_base: float = 1.7

    def __post_init__(self) -> None:
        _check_range("job_count_range", self.job_count_range, minimum=1)
        _check_range("node_count_range", self.node_count_range, minimum=1)
        _check_range("volume_range", self.volume_range)
        if self.volume_range[0] <= 0:
            raise InvalidRequestError(
                f"volume_range must be positive, got {self.volume_range!r}"
            )
        _check_range("min_performance_range", self.min_performance_range)
        if self.min_performance_range[0] <= 0:
            raise InvalidRequestError(
                "min_performance_range must be positive, got "
                f"{self.min_performance_range!r}"
            )
        _check_range("price_cap_factor_range", self.price_cap_factor_range)
        if self.price_cap_factor_range[0] <= 0:
            raise InvalidRequestError(
                "price_cap_factor_range must be positive, got "
                f"{self.price_cap_factor_range!r}"
            )
        if self.price_base <= 0:
            raise InvalidRequestError(f"price_base must be positive, got {self.price_base!r}")


class JobGenerator:
    """Generates one job batch per scheduling iteration."""

    def __init__(
        self,
        config: JobGeneratorConfig | None = None,
        *,
        seed: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if seed is not None and rng is not None:
            raise InvalidRequestError("pass either seed or rng, not both")
        self.config = config or JobGeneratorConfig()
        self._rng = rng if rng is not None else random.Random(seed)
        self._batch_counter = 0

    def generate_request(self) -> ResourceRequest:
        """Draw one job's resource request."""
        config = self.config
        rng = self._rng
        min_performance = rng.uniform(*config.min_performance_range)
        factor = rng.uniform(*config.price_cap_factor_range)
        return ResourceRequest(
            node_count=rng.randint(*config.node_count_range),
            volume=rng.uniform(*config.volume_range),
            min_performance=min_performance,
            max_price=factor * config.price_base**min_performance,
        )

    def generate(self) -> Batch:
        """Draw one batch; priority follows generation order."""
        self._batch_counter += 1
        count = self._rng.randint(*self.config.job_count_range)
        return Batch(
            Job(
                self.generate_request(),
                name=f"b{self._batch_counter}-j{index}",
                priority=index,
            )
            for index in range(count)
        )
