"""Plain-text charts for terminal reports.

The benchmarks and the CLI regenerate the paper's figures as data; this
module renders them as ASCII bar charts and line series so that a run's
output is self-contained (no plotting dependencies are available in the
offline environment, and none are needed for shape comparison).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.errors import InvalidRequestError

__all__ = ["bar_chart", "line_chart", "table"]


def bar_chart(
    values: Mapping[str, float],
    *,
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per labelled value.

    Bars are scaled to the maximum value; zero/negative maxima render
    empty bars rather than failing, since experiment aggregates can
    legitimately be zero.
    """
    if width < 1:
        raise InvalidRequestError(f"width must be >= 1, got {width!r}")
    lines = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in values)
    peak = max(values.values())
    for label, value in values.items():
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "█" * filled
        lines.append(f"{label:<{label_width}} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 72,
    height: int = 16,
) -> str:
    """Multi-series line chart on a character grid.

    Each series is resampled to ``width`` columns and drawn with its own
    glyph; a legend and the y-range are printed alongside.  Intended for
    the Fig. 5 style per-experiment comparison series.
    """
    if width < 2 or height < 2:
        raise InvalidRequestError("line_chart needs width >= 2 and height >= 2")
    lines = [title] if title else []
    populated = {label: list(points) for label, points in series.items() if points}
    if not populated:
        lines.append("(no data)")
        return "\n".join(lines)
    glyphs = "*o+x@#"
    lo = min(min(points) for points in populated.values())
    hi = max(max(points) for points in populated.values())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(populated.items()):
        glyph = glyphs[index % len(glyphs)]
        for column in range(width):
            # Nearest-point resampling keeps short series readable.
            position = column * (len(points) - 1) / (width - 1) if len(points) > 1 else 0
            value = points[int(round(position))]
            row = int(round((height - 1) * (hi - value) / (hi - lo)))
            grid[row][column] = glyph
    lines.append(f"{hi:>10.2f} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{lo:>10.2f} ┘")
    legend = "   ".join(
        f"{glyphs[index % len(glyphs)]} {label}" for index, label in enumerate(populated)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def table(rows: Sequence[Sequence[str]], *, header: Sequence[str] | None = None) -> str:
    """Fixed-width text table.

    Args:
        rows: Cell text, one inner sequence per row.
        header: Optional column headers (adds a separator rule).
    """
    all_rows = ([list(header)] if header else []) + [list(row) for row in rows]
    if not all_rows:
        return "(empty table)"
    columns = max(len(row) for row in all_rows)
    for row in all_rows:
        row.extend([""] * (columns - len(row)))
    widths = [
        max(len(row[column]) for row in all_rows) for column in range(columns)
    ]
    def render(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = []
    if header:
        lines.append(render(all_rows[0]))
        lines.append("-+-".join("-" * width for width in widths))
        body = all_rows[1:]
    else:
        body = all_rows
    lines.extend(render(row) for row in body)
    return "\n".join(lines)
