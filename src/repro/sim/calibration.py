"""Calibration of the unpublished generator parameter.

Section 5 omits the jobs' maximum-price parameter (DESIGN.md §2).  Our
default, ``price_cap_factor ∈ [0.9, 1.3]``, was *fit*: this module is
the fitting harness, kept in the library so the choice is reproducible
and re-runnable — e.g. after changing any other model convention.

The fit minimizes a weighted relative distance between the measured
ALP/AMP comparison ratios and the paper's reported ones:

* AMP time gain 35 % (Fig. 4),
* AMP cost premium 15 % (Fig. 4),
* ALP alternatives per job 7.39 and the AMP/ALP factor 4.64 (in-text).

``python -m repro.cli`` does not expose this (it is a developer tool);
see ``tests/test_calibration.py`` for usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.criteria import Criterion
from repro.core.errors import InvalidRequestError
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.generators import JobGeneratorConfig
from repro.sim.stats import ExperimentSummary, summarize

__all__ = ["PAPER_TARGET", "CalibrationTarget", "CalibrationResult", "score", "calibrate"]


@dataclass(frozen=True)
class CalibrationTarget:
    """The paper ratios a parameterization should reproduce.

    Attributes:
        time_gain: AMP's relative time advantage (paper ~0.35).
        cost_premium: AMP's relative extra cost (paper ~0.15).
        alp_alternatives_per_job: ALP's per-job alternative count
            (paper ~7.39).
        alternatives_factor: AMP/ALP per-job factor (paper ~4.64).
        weights: Relative importance of the four terms, in the order
            above.
    """

    time_gain: float = 0.35
    cost_premium: float = 0.15
    alp_alternatives_per_job: float = 7.39
    alternatives_factor: float = 4.64
    weights: tuple[float, float, float, float] = (2.0, 1.0, 1.0, 1.0)


#: The default target: the paper's Section 5 numbers.
PAPER_TARGET = CalibrationTarget()


@dataclass(frozen=True)
class CalibrationResult:
    """One evaluated candidate, with its fit distance (lower = better)."""

    factor_range: tuple[float, float]
    summary: ExperimentSummary
    distance: float


def score(summary: ExperimentSummary, target: CalibrationTarget = PAPER_TARGET) -> float:
    """Weighted relative distance of a summary from the target ratios.

    A summary with no counted experiments scores infinity — an
    uncalibratable parameterization, not a good one.
    """
    if summary.counted == 0:
        return float("inf")
    ratios = summary.ratios()
    measured = (
        ratios.amp_time_gain,
        ratios.amp_cost_premium,
        summary.alp.mean_alternatives_per_job,
        ratios.alternatives_factor,
    )
    reference = (
        target.time_gain,
        target.cost_premium,
        target.alp_alternatives_per_job,
        target.alternatives_factor,
    )
    total = 0.0
    for weight, value, wanted in zip(target.weights, measured, reference):
        if wanted == 0:
            raise InvalidRequestError("calibration target values must be non-zero")
        total += weight * abs(value - wanted) / abs(wanted)
    return total


def calibrate(
    candidates: Sequence[tuple[float, float]],
    *,
    iterations: int = 150,
    seed: int = 20110368,
    target: CalibrationTarget = PAPER_TARGET,
) -> list[CalibrationResult]:
    """Evaluate candidate ``price_cap_factor`` ranges against the target.

    Args:
        candidates: ``(low, high)`` factor ranges to try.
        iterations: Attempted scheduling iterations per candidate.
        seed: Shared master seed, so candidates differ only in the
            parameter under study.
        target: Ratios to fit (defaults to the paper's).

    Returns:
        One result per candidate, sorted by ascending distance — the
        first entry is the best fit.
    """
    if not candidates:
        raise InvalidRequestError("need at least one candidate range")
    results = []
    for low, high in candidates:
        job_config = JobGeneratorConfig(price_cap_factor_range=(low, high))
        config = ExperimentConfig(
            objective=Criterion.TIME,
            iterations=iterations,
            seed=seed,
            job_config=job_config,
        )
        summary = summarize(ExperimentRunner(config).run())
        results.append(
            CalibrationResult(
                factor_range=(low, high),
                summary=summary,
                distance=score(summary, target),
            )
        )
    results.sort(key=lambda result: result.distance)
    return results
