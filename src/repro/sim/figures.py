"""Regeneration of every evaluation figure of the paper.

Each ``figureN`` function turns experiment results into exactly the data
series the corresponding paper figure plots, together with the paper's
reference values so reports can show paper-vs-measured side by side;
``render_figureN`` draws the ASCII version.

* **Fig. 4** — job batch *time* minimization: (a) average job execution
  time, (b) average job execution cost, ALP vs AMP bars.
* **Fig. 5** — the same experiment: per-experiment average job execution
  time for the first 300 counted experiments, two series.
* **Fig. 6** — job batch *cost* minimization: (a) average job execution
  cost, (b) average job execution time, ALP vs AMP bars.

The in-text statistics around the figures (alternative counts, average
slot and batch sizes) are produced by :mod:`repro.sim.stats` and
reported by the benchmarks as "Table S1".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.criteria import Criterion
from repro.core.errors import InvalidRequestError, InvariantViolationError
from repro.sim.ascii_plot import bar_chart, line_chart, table
from repro.sim.experiment import ExperimentResult
from repro.sim.stats import ExperimentSummary, summarize

__all__ = [
    "PAPER_REFERENCE",
    "FigureData",
    "figure4",
    "figure5",
    "figure6",
    "figure_series",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "summary_table",
]

#: The paper's reported numbers, keyed by figure panel (Section 5).
PAPER_REFERENCE: dict[str, dict[str, float]] = {
    "fig4a_time": {"ALP": 59.85, "AMP": 39.01},
    "fig4b_cost": {"ALP": 313.56, "AMP": 369.69},
    "fig6a_cost": {"ALP": 313.09, "AMP": 343.30},
    "fig6b_time": {"ALP": 61.04, "AMP": 51.62},
    "alternatives_per_job_time_min": {"ALP": 7.39, "AMP": 34.28},
    "alternatives_per_job_cost_min": {"ALP": 7.28, "AMP": 34.23},
}


@dataclass(frozen=True)
class FigureData:
    """One figure panel: measured values plus the paper's reference.

    Attributes:
        name: Panel id (e.g. ``"fig4a_time"``).
        measured: Our values per algorithm.
        reference: The paper's values per algorithm (empty for panels
            the paper only shows graphically, like Fig. 5).
        series: Optional per-experiment series (Fig. 5 only).
    """

    name: str
    measured: Mapping[str, float]
    reference: Mapping[str, float]
    series: Mapping[str, list[float]] | None = None


def _require_objective(result: ExperimentResult, objective: Criterion, figure: str) -> None:
    if result.config.objective is not objective:
        raise InvalidRequestError(
            f"{figure} requires a {objective.value}-minimization experiment, "
            f"got {result.config.objective.value}"
        )


def figure4(result: ExperimentResult) -> tuple[FigureData, FigureData]:
    """Fig. 4 panels (a) time and (b) cost from a time-min experiment."""
    _require_objective(result, Criterion.TIME, "figure4")
    summary = summarize(result)
    panel_a = FigureData(
        name="fig4a_time",
        measured={"ALP": summary.alp.mean_job_time, "AMP": summary.amp.mean_job_time},
        reference=PAPER_REFERENCE["fig4a_time"],
    )
    panel_b = FigureData(
        name="fig4b_cost",
        measured={"ALP": summary.alp.mean_job_cost, "AMP": summary.amp.mean_job_cost},
        reference=PAPER_REFERENCE["fig4b_cost"],
    )
    return panel_a, panel_b


def figure5(result: ExperimentResult, *, first_n: int = 300) -> FigureData:
    """Fig. 5: per-experiment average job time, first ``first_n`` samples."""
    _require_objective(result, Criterion.TIME, "figure5")
    head = result.samples[:first_n]
    return FigureData(
        name="fig5_series",
        measured={
            "ALP": (
                sum(sample.alp.mean_job_time for sample in head) / len(head)
                if head
                else 0.0
            ),
            "AMP": (
                sum(sample.amp.mean_job_time for sample in head) / len(head)
                if head
                else 0.0
            ),
        },
        reference={},
        series={
            "ALP": [sample.alp.mean_job_time for sample in head],
            "AMP": [sample.amp.mean_job_time for sample in head],
        },
    )


def figure6(result: ExperimentResult) -> tuple[FigureData, FigureData]:
    """Fig. 6 panels (a) cost and (b) time from a cost-min experiment."""
    _require_objective(result, Criterion.COST, "figure6")
    summary = summarize(result)
    panel_a = FigureData(
        name="fig6a_cost",
        measured={"ALP": summary.alp.mean_job_cost, "AMP": summary.amp.mean_job_cost},
        reference=PAPER_REFERENCE["fig6a_cost"],
    )
    panel_b = FigureData(
        name="fig6b_time",
        measured={"ALP": summary.alp.mean_job_time, "AMP": summary.amp.mean_job_time},
        reference=PAPER_REFERENCE["fig6b_time"],
    )
    return panel_a, panel_b


def _render_panel(panel: FigureData, title: str, unit: str = "") -> str:
    chart = bar_chart(dict(panel.measured), title=title, unit=unit)
    if not panel.reference:
        return chart
    reference = ", ".join(
        f"{label} {value:.2f}" for label, value in panel.reference.items()
    )
    return f"{chart}\n(paper reference: {reference})"


def render_figure4(result: ExperimentResult) -> str:
    """ASCII rendering of both Fig. 4 panels."""
    panel_a, panel_b = figure4(result)
    return "\n\n".join(
        [
            _render_panel(panel_a, "Fig. 4 (a) — average job execution time (time min.)"),
            _render_panel(panel_b, "Fig. 4 (b) — average job execution cost (time min.)"),
        ]
    )


def figure_series(panel: FigureData) -> Mapping[str, list[float]]:
    """The per-experiment series of a panel that must carry one.

    Raises:
        InvariantViolationError: When ``panel.series`` is ``None`` — the
            series-bearing builders (:func:`figure5`) always populate
            it, so a missing series is a library bug, not bad input.
    """
    if panel.series is None:
        raise InvariantViolationError(
            f"figure panel {panel.name!r} carries no per-experiment series"
        )
    return panel.series


def render_figure5(result: ExperimentResult, *, first_n: int = 300) -> str:
    """ASCII rendering of the Fig. 5 comparison series."""
    panel = figure5(result, first_n=first_n)
    series = figure_series(panel)
    chart = line_chart(
        dict(series),
        title=f"Fig. 5 — average job execution time, first {first_n} experiments",
    )
    return (
        f"{chart}\n"
        f"series means: ALP {panel.measured['ALP']:.2f}, "
        f"AMP {panel.measured['AMP']:.2f}"
    )


def render_figure6(result: ExperimentResult) -> str:
    """ASCII rendering of both Fig. 6 panels."""
    panel_a, panel_b = figure6(result)
    return "\n\n".join(
        [
            _render_panel(panel_a, "Fig. 6 (a) — average job execution cost (cost min.)"),
            _render_panel(panel_b, "Fig. 6 (b) — average job execution time (cost min.)"),
        ]
    )


def summary_table(summary: ExperimentSummary) -> str:
    """The in-text statistics as a text table ("Table S1")."""
    rows = [list(row) for row in summary.as_rows()]
    rows.append(
        ["slots per experiment", f"{summary.mean_slots_per_experiment:.2f}", "-"]
    )
    rows.append(
        [
            "jobs per counted experiment",
            f"{summary.mean_jobs_per_counted_experiment:.2f}",
            "-",
        ]
    )
    rows.append(
        [
            "experiments counted",
            f"{summary.counted}/{summary.attempted}",
            f"dropped: {summary.dropped_uncovered} uncovered, "
            f"{summary.dropped_infeasible} infeasible",
        ]
    )
    return table(rows, header=["metric", "ALP", "AMP"])
