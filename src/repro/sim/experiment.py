"""The Section 5 experiment protocol: ALP vs AMP on identical slot lists.

One *experiment* (the paper's "simulated scheduling iteration") is:

1. draw a vacant-slot list and a job batch from the generators;
2. run the full two-phase pipeline **twice on the same inputs** — once
   with ALP, once with AMP;
3. count the experiment only if *both* pipelines succeed: every job has
   at least one alternative with both algorithms, and both phase-2 DPs
   are feasible (the paper: "only those experiments were taken into
   account when all of the batch jobs had at least one suitable
   alternative of execution"; for cost minimization "all jobs were
   successfully assigned ... using both slot search procedures").

The runner records per-experiment samples (feeding Fig. 5) and drop
counters, so the selection effects the paper describes (e.g. counted
cost-minimization iterations having smaller batches) are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.criteria import Criterion
from repro.core.errors import InfeasibleConstraintError
from repro.core.job import Batch
from repro.core.optimize import (
    DEFAULT_RESOLUTION,
    Combination,
    minimize_cost,
    minimize_time,
    time_quota,
    vo_budget,
)
from repro.core.search import SearchResult, SlotSearchAlgorithm, find_alternatives
from repro.core.slot import SlotList
from repro.sim.generators import JobGenerator, JobGeneratorConfig, SlotGenerator, SlotGeneratorConfig

__all__ = [
    "AlgorithmSample",
    "IterationComparison",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "run_pipeline",
]


@dataclass(frozen=True)
class AlgorithmSample:
    """One algorithm's outcome on one counted experiment.

    Attributes:
        mean_job_time: Average job execution time of the chosen
            combination (the quantity of Fig. 4 (a) / Fig. 6 (b)).
        mean_job_cost: Average job execution cost (Fig. 4 (b) / 6 (a)).
        total_alternatives: Phase-1 alternatives over the whole batch.
        quota: The eq. (2) time quota ``T*`` of this pipeline.
        budget: The eq. (3) budget ``B*`` (None for cost minimization).
    """

    mean_job_time: float
    mean_job_cost: float
    total_alternatives: int
    quota: float
    budget: float | None

    @classmethod
    def from_combination(
        cls,
        combination: Combination,
        search: SearchResult,
        quota: float,
        budget: float | None,
    ) -> "AlgorithmSample":
        return cls(
            mean_job_time=combination.mean_job_time,
            mean_job_cost=combination.mean_job_cost,
            total_alternatives=search.total_alternatives,
            quota=quota,
            budget=budget,
        )


@dataclass(frozen=True)
class IterationComparison:
    """ALP and AMP on the same slot list and batch."""

    index: int
    slot_count: int
    job_count: int
    alp: AlgorithmSample
    amp: AlgorithmSample


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment series.

    Attributes:
        objective: TIME reproduces the Fig. 4/5 study (min ``T(s̄)``
            under ``B*``); COST reproduces Fig. 6 (min ``C(s̄)`` under
            ``T*``).
        iterations: Number of *attempted* scheduling iterations (the
            paper attempts 25 000; benchmarks default lower).
        seed: Master seed; one RNG drives both generators, so a config
            is fully reproducible.
        slot_config / job_config: Generator parameter sets.
        resolution: Phase-2 DP discretization.
        rho: AMP budget-shrink factor (Section 6 extension; 1.0 = paper).
    """

    objective: Criterion = Criterion.TIME
    iterations: int = 1000
    seed: int = 20110368
    slot_config: SlotGeneratorConfig = field(default_factory=SlotGeneratorConfig)
    job_config: JobGeneratorConfig = field(default_factory=JobGeneratorConfig)
    resolution: int = DEFAULT_RESOLUTION
    rho: float = 1.0


@dataclass
class ExperimentResult:
    """Everything one experiment series produced."""

    config: ExperimentConfig
    samples: list[IterationComparison]
    attempted: int
    dropped_uncovered: int
    dropped_infeasible: int
    total_slots_processed: int
    total_jobs_attempted: int

    @property
    def counted(self) -> int:
        """Experiments that passed the both-pipelines-succeed filter."""
        return len(self.samples)


def run_pipeline(
    slots: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    objective: Criterion,
    *,
    resolution: int = DEFAULT_RESOLUTION,
    rho: float = 1.0,
) -> tuple[AlgorithmSample, Combination] | None:
    """Run phase 1 + phase 2 for one algorithm; ``None`` when dropped.

    Dropping happens when some job gets no alternative or the derived
    constraint is infeasible — exactly the paper's filtering rule.
    """
    search = find_alternatives(slots, batch, algorithm, rho=rho)
    if not search.all_jobs_covered():
        return None
    covered = search.alternatives
    quota = time_quota(covered)
    try:
        if objective is Criterion.TIME:
            budget = vo_budget(covered, quota, resolution=resolution)
            combination = minimize_time(covered, budget, resolution=resolution)
        else:
            budget = None
            combination = minimize_cost(covered, quota, resolution=resolution)
    except InfeasibleConstraintError:
        return None
    sample = AlgorithmSample.from_combination(combination, search, quota, budget)
    return sample, combination


class ExperimentRunner:
    """Runs an experiment series per :class:`ExperimentConfig`."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def run(self, *, progress: Callable[[int, int], None] | None = None) -> ExperimentResult:
        """Execute the series.

        Args:
            progress: Optional callback ``(attempted_so_far, counted)``
                invoked after every attempted iteration.
        """
        config = self.config
        slot_generator = SlotGenerator(config.slot_config, seed=config.seed)
        job_generator = JobGenerator(config.job_config, rng=slot_generator.rng)
        samples: list[IterationComparison] = []
        dropped_uncovered = 0
        dropped_infeasible = 0
        total_slots = 0
        total_jobs = 0
        for attempt in range(config.iterations):
            slots = slot_generator.generate()
            batch = job_generator.generate()
            total_slots += len(slots)
            total_jobs += len(batch)
            outcomes = {}
            uncovered = False
            for algorithm in (SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP):
                search = find_alternatives(
                    slots, batch, algorithm, rho=config.rho
                )
                if not search.all_jobs_covered():
                    uncovered = True
                    break
                outcomes[algorithm] = search
            if uncovered:
                dropped_uncovered += 1
                if progress is not None:
                    progress(attempt + 1, len(samples))
                continue
            pipelines = {}
            infeasible = False
            for algorithm, search in outcomes.items():
                finished = self._optimize(search)
                if finished is None:
                    infeasible = True
                    break
                pipelines[algorithm] = finished
            if infeasible:
                dropped_infeasible += 1
                if progress is not None:
                    progress(attempt + 1, len(samples))
                continue
            samples.append(
                IterationComparison(
                    index=attempt,
                    slot_count=len(slots),
                    job_count=len(batch),
                    alp=pipelines[SlotSearchAlgorithm.ALP],
                    amp=pipelines[SlotSearchAlgorithm.AMP],
                )
            )
            if progress is not None:
                progress(attempt + 1, len(samples))
        return ExperimentResult(
            config=config,
            samples=samples,
            attempted=config.iterations,
            dropped_uncovered=dropped_uncovered,
            dropped_infeasible=dropped_infeasible,
            total_slots_processed=total_slots,
            total_jobs_attempted=total_jobs,
        )

    def _optimize(self, search: SearchResult) -> AlgorithmSample | None:
        config = self.config
        covered = search.alternatives
        quota = time_quota(covered)
        try:
            if config.objective is Criterion.TIME:
                budget = vo_budget(covered, quota, resolution=config.resolution)
                combination = minimize_time(
                    covered, budget, resolution=config.resolution
                )
            else:
                budget = None
                combination = minimize_cost(
                    covered, quota, resolution=config.resolution
                )
        except InfeasibleConstraintError:
            return None
        return AlgorithmSample.from_combination(combination, search, quota, budget)
