"""The Section 5 experiment protocol: ALP vs AMP on identical slot lists.

One *experiment* (the paper's "simulated scheduling iteration") is:

1. draw a vacant-slot list and a job batch from the generators;
2. run the full two-phase pipeline **twice on the same inputs** — once
   with ALP, once with AMP;
3. count the experiment only if *both* pipelines succeed: every job has
   at least one alternative with both algorithms, and both phase-2 DPs
   are feasible (the paper: "only those experiments were taken into
   account when all of the batch jobs had at least one suitable
   alternative of execution"; for cost minimization "all jobs were
   successfully assigned ... using both slot search procedures").

The runner records per-experiment samples (feeding Fig. 5) and drop
counters, so the selection effects the paper describes (e.g. counted
cost-minimization iterations having smaller batches) are measurable.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.proc import WorkerSupervisor
    from repro.grid.resilience import FailureConfig
    from repro.sim.checkpoint import ExperimentCheckpoint

from repro.core.criteria import Criterion
from repro.core.errors import (
    InfeasibleConstraintError,
    InvalidRequestError,
    WorkerLostError,
)
from repro.core.job import Batch
from repro.core.optimize import (
    DEFAULT_RESOLUTION,
    Combination,
    DPMemo,
    minimize_cost,
    minimize_time,
    time_quota,
    vo_budget,
)
from repro.core.search import SearchResult, SlotSearchAlgorithm, find_alternatives
from repro.core.slot import SlotList
from repro.sim.generators import JobGenerator, JobGeneratorConfig, SlotGenerator, SlotGeneratorConfig

__all__ = [
    "AlgorithmSample",
    "IterationComparison",
    "IterationOutcome",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "ParallelRunner",
    "derive_iteration_seed",
    "generate_iteration",
    "run_iteration",
    "run_pipeline",
    "trace_shard_path",
]

#: Result type of one supervised ``pool.map`` (span results or outcome
#: lists, depending on the calling path).
_SpanResult = TypeVar("_SpanResult")


@dataclass(frozen=True)
class AlgorithmSample:
    """One algorithm's outcome on one counted experiment.

    Attributes:
        mean_job_time: Average job execution time of the chosen
            combination (the quantity of Fig. 4 (a) / Fig. 6 (b)).
        mean_job_cost: Average job execution cost (Fig. 4 (b) / 6 (a)).
        total_alternatives: Phase-1 alternatives over the whole batch.
        quota: The eq. (2) time quota ``T*`` of this pipeline.
        budget: The eq. (3) budget ``B*`` (None for cost minimization).
    """

    mean_job_time: float
    mean_job_cost: float
    total_alternatives: int
    quota: float
    budget: float | None

    @classmethod
    def from_combination(
        cls,
        combination: Combination,
        search: SearchResult,
        quota: float,
        budget: float | None,
    ) -> "AlgorithmSample":
        return cls(
            mean_job_time=combination.mean_job_time,
            mean_job_cost=combination.mean_job_cost,
            total_alternatives=search.total_alternatives,
            quota=quota,
            budget=budget,
        )


@dataclass(frozen=True)
class IterationComparison:
    """ALP and AMP on the same slot list and batch."""

    index: int
    slot_count: int
    job_count: int
    alp: AlgorithmSample
    amp: AlgorithmSample


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment series.

    Attributes:
        objective: TIME reproduces the Fig. 4/5 study (min ``T(s̄)``
            under ``B*``); COST reproduces Fig. 6 (min ``C(s̄)`` under
            ``T*``).
        iterations: Number of *attempted* scheduling iterations (the
            paper attempts 25 000; benchmarks default lower).
        seed: Master seed; one RNG drives both generators, so a config
            is fully reproducible.
        slot_config / job_config: Generator parameter sets.
        resolution: Phase-2 DP discretization.
        rho: AMP budget-shrink factor (Section 6 extension; 1.0 = paper).
        failures: Optional stochastic failure model
            (:class:`repro.grid.resilience.FailureConfig`).  When set,
            every iteration's slot list is degraded by seeded per-node
            outage streams (:func:`repro.grid.resilience.apply_slot_outages`)
            before the pipelines run — modelling non-dedicated resources
            whose vacant time is interrupted by failures.  The streams
            are keyed by resource name and salted with the iteration's
            derived seed, so sharded runs stay byte-identical for any
            worker count.
        search_shards: Partition-parallel phase-1 search within every
            scheduling cycle (1 = serial).  Byte-identical to serial for
            any count, so it composes freely with iteration-level
            sharding (:class:`ParallelRunner`); worth enabling only on
            fleet-scale slot lists (see docs/benchmarks.md).
    """

    objective: Criterion = Criterion.TIME
    iterations: int = 1000
    seed: int = 20110368
    slot_config: SlotGeneratorConfig = field(default_factory=SlotGeneratorConfig)
    job_config: JobGeneratorConfig = field(default_factory=JobGeneratorConfig)
    resolution: int = DEFAULT_RESOLUTION
    rho: float = 1.0
    failures: "FailureConfig | None" = None
    search_shards: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise InvalidRequestError(
                f"iterations must be >= 1, got {self.iterations!r}"
            )
        if self.resolution < 2:
            raise InvalidRequestError(
                f"resolution must be >= 2, got {self.resolution!r}"
            )
        if self.rho <= 0:
            raise InvalidRequestError(f"rho must be positive, got {self.rho!r}")
        if self.search_shards < 1:
            raise InvalidRequestError(
                f"search_shards must be >= 1, got {self.search_shards!r}"
            )


@dataclass
class ExperimentResult:
    """Everything one experiment series produced."""

    config: ExperimentConfig
    samples: list[IterationComparison]
    attempted: int
    dropped_uncovered: int
    dropped_infeasible: int
    total_slots_processed: int
    total_jobs_attempted: int

    @property
    def counted(self) -> int:
        """Experiments that passed the both-pipelines-succeed filter."""
        return len(self.samples)


def run_pipeline(
    slots: SlotList,
    batch: Batch,
    algorithm: SlotSearchAlgorithm,
    objective: Criterion,
    *,
    resolution: int = DEFAULT_RESOLUTION,
    rho: float = 1.0,
    search_shards: int = 1,
) -> tuple[AlgorithmSample, Combination] | None:
    """Run phase 1 + phase 2 for one algorithm; ``None`` when dropped.

    Dropping happens when some job gets no alternative or the derived
    constraint is infeasible — exactly the paper's filtering rule.
    """
    # shards > 1 must select the indexed scheme explicitly so traced
    # runs take the instrumented sharded path instead of erroring.
    search = find_alternatives(
        slots,
        batch,
        algorithm,
        rho=rho,
        use_index=True if search_shards > 1 else None,
        shards=search_shards if search_shards > 1 else None,
    )
    if not search.all_jobs_covered():
        return None
    covered = search.alternatives
    quota = time_quota(covered)
    try:
        if objective is Criterion.TIME:
            budget = vo_budget(covered, quota, resolution=resolution)
            combination = minimize_time(covered, budget, resolution=resolution)
        else:
            budget = None
            combination = minimize_cost(covered, quota, resolution=resolution)
    except InfeasibleConstraintError:
        return None
    sample = AlgorithmSample.from_combination(combination, search, quota, budget)
    return sample, combination


@dataclass(frozen=True)
class IterationOutcome:
    """Result of one attempted scheduling iteration (either runner).

    Exactly one of ``comparison``/``dropped_uncovered``/
    ``dropped_infeasible`` is set/true per outcome.
    """

    slot_count: int
    job_count: int
    comparison: IterationComparison | None = None
    dropped_uncovered: bool = False
    dropped_infeasible: bool = False


def _optimize_search(
    config: ExperimentConfig,
    search: SearchResult,
    memo: "DPMemo | None" = None,
) -> AlgorithmSample | None:
    """Phase 2 for one algorithm's search; ``None`` when infeasible."""
    covered = search.alternatives
    quota = time_quota(covered)
    try:
        if config.objective is Criterion.TIME:
            budget = vo_budget(
                covered, quota, resolution=config.resolution, memo=memo
            )
            combination = minimize_time(
                covered, budget, resolution=config.resolution, memo=memo
            )
        else:
            budget = None
            combination = minimize_cost(
                covered, quota, resolution=config.resolution, memo=memo
            )
    except InfeasibleConstraintError:
        return None
    return AlgorithmSample.from_combination(combination, search, quota, budget)


def run_iteration(
    config: ExperimentConfig,
    index: int,
    slots: SlotList,
    batch: Batch,
    memo: "DPMemo | None" = None,
) -> IterationOutcome:
    """One attempted iteration: both pipelines on identical inputs.

    Pure function of its inputs — the shared building block of
    :class:`ExperimentRunner` (streamed RNG) and :class:`ParallelRunner`
    (per-iteration derived seeds).  ``memo`` is the caller-owned DP memo
    (each runner/worker span holds one); memo hits are byte-identical to
    recomputation, so the memo never affects results — only speed.
    """
    outcomes = {}
    uncovered = False
    for algorithm in (SlotSearchAlgorithm.ALP, SlotSearchAlgorithm.AMP):
        search = find_alternatives(
            slots,
            batch,
            algorithm,
            rho=config.rho,
            use_index=True if config.search_shards > 1 else None,
            shards=config.search_shards if config.search_shards > 1 else None,
        )
        if not search.all_jobs_covered():
            uncovered = True
            break
        outcomes[algorithm] = search
    if uncovered:
        return IterationOutcome(
            slot_count=len(slots), job_count=len(batch), dropped_uncovered=True
        )
    pipelines = {}
    for algorithm, search in outcomes.items():
        finished = _optimize_search(config, search, memo)
        if finished is None:
            return IterationOutcome(
                slot_count=len(slots), job_count=len(batch), dropped_infeasible=True
            )
        pipelines[algorithm] = finished
    comparison = IterationComparison(
        index=index,
        slot_count=len(slots),
        job_count=len(batch),
        alp=pipelines[SlotSearchAlgorithm.ALP],
        amp=pipelines[SlotSearchAlgorithm.AMP],
    )
    return IterationOutcome(
        slot_count=len(slots), job_count=len(batch), comparison=comparison
    )


class _SeriesAccumulator:
    """Folds :class:`IterationOutcome` values into an :class:`ExperimentResult`."""

    def __init__(self) -> None:
        self.samples: list[IterationComparison] = []
        self.dropped_uncovered = 0
        self.dropped_infeasible = 0
        self.total_slots = 0
        self.total_jobs = 0

    def add(self, outcome: IterationOutcome) -> None:
        self.total_slots += outcome.slot_count
        self.total_jobs += outcome.job_count
        if outcome.comparison is not None:
            self.samples.append(outcome.comparison)
        elif outcome.dropped_uncovered:
            self.dropped_uncovered += 1
        else:
            self.dropped_infeasible += 1

    def result(self, config: ExperimentConfig, attempted: int) -> ExperimentResult:
        return ExperimentResult(
            config=config,
            samples=self.samples,
            attempted=attempted,
            dropped_uncovered=self.dropped_uncovered,
            dropped_infeasible=self.dropped_infeasible,
            total_slots_processed=self.total_slots,
            total_jobs_attempted=self.total_jobs,
        )


def _open_checkpoint(
    config: ExperimentConfig,
    checkpoint: "str | Path | ExperimentCheckpoint | None",
    resume: bool,
) -> "ExperimentCheckpoint | None":
    """Open the optional resume journal for a runner (shared helper).

    An already-constructed :class:`~repro.sim.checkpoint.ExperimentCheckpoint`
    passes through unchanged — the seam the chaos suite uses to hand the
    runner a checkpoint backed by a fault-injecting filesystem.  The
    runner closes whatever store it ran with, caller-provided or not.
    """
    if checkpoint is None:
        return None
    from repro.sim.checkpoint import ExperimentCheckpoint

    if isinstance(checkpoint, ExperimentCheckpoint):
        return checkpoint
    return ExperimentCheckpoint(checkpoint, config, resume=resume)


class ExperimentRunner:
    """Runs an experiment series per :class:`ExperimentConfig`.

    Generation is *streamed*: one RNG, seeded once with ``config.seed``,
    drives every iteration in sequence — the historical behaviour, kept
    so existing seeds keep producing the numbers recorded in
    EXPERIMENTS.md.  For a runner whose draws are independent of
    iteration order (and therefore shardable across processes), see
    :class:`ParallelRunner`.
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()

    def run(
        self,
        *,
        progress: Callable[[int, int], None] | None = None,
        checkpoint: "str | Path | ExperimentCheckpoint | None" = None,
        resume: bool = False,
    ) -> ExperimentResult:
        """Execute the series.

        Args:
            progress: Optional callback ``(attempted_so_far, counted)``
                invoked after every attempted iteration.
            checkpoint: Optional path to a resumable checkpoint journal
                (or an open :class:`~repro.sim.checkpoint.ExperimentCheckpoint`);
                every completed iteration is appended so a killed run
                can be resumed.  Without ``resume``, an existing file at
                a given path is replaced.
            resume: Skip iterations already recorded in ``checkpoint``,
                replaying their outcomes from disk.  The generators are
                still advanced through skipped iterations, so the merged
                result is identical to an uninterrupted run.

        Raises:
            CheckpointMismatchError: When resuming against a checkpoint
                written for a different configuration.
        """
        config = self.config
        store = _open_checkpoint(config, checkpoint, resume)
        slot_generator = SlotGenerator(config.slot_config, seed=config.seed)
        job_generator = JobGenerator(config.job_config, rng=slot_generator.rng)
        accumulator = _SeriesAccumulator()
        # Run-local DP memo: cross-iteration reuse within this series
        # only, never ambient process state (hits are byte-identical).
        memo = DPMemo()
        try:
            for attempt in range(config.iterations):
                # Draws happen unconditionally: the streamed RNG must
                # advance through completed iterations for the remaining
                # ones to see the same stream an uninterrupted run would.
                slots = slot_generator.generate()
                batch = job_generator.generate()
                cached = store.get(attempt) if store is not None else None
                if cached is not None:
                    outcome = cached
                else:
                    slots = _degrade_slots(config, slots, salt=attempt)
                    outcome = run_iteration(config, attempt, slots, batch, memo)
                    if store is not None:
                        store.record(attempt, outcome)
                accumulator.add(outcome)
                if progress is not None:
                    progress(attempt + 1, len(accumulator.samples))
        finally:
            if store is not None:
                store.close()
        return accumulator.result(config, config.iterations)


def derive_iteration_seed(master_seed: int, index: int) -> int:
    """Deterministic, order-independent per-iteration seed.

    Hash-derived (not ``master_seed + index``) so that neighbouring
    iterations get statistically independent streams and any shard of the
    series can be regenerated in isolation — the property that makes
    :class:`ParallelRunner` results invariant under the worker count.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def generate_iteration(config: ExperimentConfig, index: int) -> tuple[SlotList, Batch]:
    """Draw iteration ``index``'s slot list and batch from its own stream.

    Mirrors the serial runner's coupling (one RNG shared by both
    generators) but re-seeds per iteration via
    :func:`derive_iteration_seed`.
    """
    seed = derive_iteration_seed(config.seed, index)
    slot_generator = SlotGenerator(config.slot_config, seed=seed)
    job_generator = JobGenerator(config.job_config, rng=slot_generator.rng)
    slots = slot_generator.generate()
    batch = job_generator.generate()
    return _degrade_slots(config, slots, salt=seed), batch


def _degrade_slots(config: ExperimentConfig, slots: SlotList, *, salt: int) -> SlotList:
    """Carve the config's failure streams out of one iteration's slots.

    A pure function of ``(config, slots, salt)`` — the salt is the
    iteration's own seed (parallel path) or index (streamed path), so
    iterations fail independently yet reproducibly, in any process.
    """
    if config.failures is None:
        return slots
    from repro.grid.resilience import apply_slot_outages

    return apply_slot_outages(slots, config.failures, salt=salt)


def _run_span(config: ExperimentConfig, start: int, stop: int) -> ExperimentResult:
    """Run iterations ``[start, stop)`` of the seeded series (one shard).

    The DP memo is span-local: created here, dropped with the span.
    Worker processes therefore never share cache state — cross-cycle
    reuse happens within one shard only (memo hits are byte-identical
    to recomputation, so this is purely a speed matter).
    """
    accumulator = _SeriesAccumulator()
    memo = DPMemo()
    for index in range(start, stop):
        slots, batch = generate_iteration(config, index)
        accumulator.add(run_iteration(config, index, slots, batch, memo))
    return accumulator.result(config, stop - start)


def trace_shard_path(trace_base: str | Path, worker: int) -> Path:
    """Per-worker trace shard path: ``trace.jsonl`` → ``trace.w3.jsonl``."""
    base = Path(trace_base)
    suffix = base.suffix or ".jsonl"
    return base.with_name(f"{base.stem}.w{worker}{suffix}")


def _run_span_traced(
    config: ExperimentConfig,
    start: int,
    stop: int,
    trace_base: str,
    worker: int,
) -> ExperimentResult:
    """One *traced* shard: a private telemetry context writing a JSONL shard.

    Worker processes cannot share the parent's metric registry, so each
    shard records into its own context and dumps it to
    :func:`trace_shard_path` when done.  The contexts of all shards carry
    :class:`~repro.obs.context.TraceContext` ids derived from the master
    seed (worker-numbered spans, one shared trace id), so
    :func:`repro.obs.merge.merge_trace_files` folds them back into a
    single coherent tree.  Each iteration binds the decision log's
    ``iteration`` scope — which restarts the per-iteration sequence
    numbers — making the merged decision stream invariant under the
    worker count.
    """
    from repro.obs.context import TraceContext
    from repro.obs.export import write_trace
    from repro.obs.telemetry import configure, get_telemetry, install

    previous = get_telemetry()
    telemetry = configure(context=TraceContext.derive(config.seed, worker=worker))
    try:
        accumulator = _SeriesAccumulator()
        memo = DPMemo()
        decisions = telemetry.decisions
        for index in range(start, stop):
            slots, batch = generate_iteration(config, index)
            with decisions.scope(iteration=index):
                with telemetry.span("experiment.iteration", index=index):
                    accumulator.add(run_iteration(config, index, slots, batch, memo))
        write_trace(str(trace_shard_path(trace_base, worker)), telemetry)
        return accumulator.result(config, stop - start)
    finally:
        install(previous)


def _run_indices(config: ExperimentConfig, indices: list[int]) -> list[IterationOutcome]:
    """Run the listed iterations of the seeded series, in the given order.

    The checkpointing counterpart of :func:`_run_span`: a resumed series
    has *holes* (iterations already on disk), so shards are arbitrary
    index lists rather than contiguous spans.
    """
    outcomes = []
    memo = DPMemo()
    for index in indices:
        slots, batch = generate_iteration(config, index)
        outcomes.append(run_iteration(config, index, slots, batch, memo))
    return outcomes


def _count_samples(outcomes: dict[int, IterationOutcome]) -> int:
    """Counted (both-pipelines-succeeded) iterations in an outcome map."""
    return sum(1 for outcome in outcomes.values() if outcome.comparison is not None)


def _shard_spans(iterations: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(iterations)`` into ``shards`` contiguous spans."""
    base, extra = divmod(iterations, shards)
    spans = []
    cursor = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        spans.append((cursor, cursor + size))
        cursor += size
    return [span for span in spans if span[0] < span[1]]


class ParallelRunner:
    """Shards a seeded experiment series across worker processes.

    Every iteration draws from its own :func:`derive_iteration_seed`
    stream, so the series is embarrassingly parallel *and* deterministic:
    for a fixed master seed the merged result — samples, drop counters,
    per-job outcomes — is byte-identical for any ``workers`` value
    (``tests/test_experiment.py`` asserts 4 workers ≡ serial).  Note the
    per-iteration seeding means results differ from
    :class:`ExperimentRunner`'s single-stream draws for the same master
    seed; both are fully reproducible, they are just different series.

    A worker killed mid-run (OOM killer, operator ``SIGKILL``) breaks
    the whole ``concurrent.futures`` pool; the runner catches that,
    re-derives every shard's seeds, and retries the map on a fresh pool
    under the supervisor's budget — byte-identical to an undisturbed run
    because shards are pure functions of ``(config, span)``.  A loss
    that recurs past the budget raises
    :class:`~repro.core.errors.WorkerLostError` (CLI exit code 2).
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        workers: int = 1,
        supervisor: "WorkerSupervisor | None" = None,
        span_task: "Callable[[ExperimentConfig, int, int], ExperimentResult] | None" = None,
        dp_memo: "DPMemo | None" = None,
    ) -> None:
        """Configure the sharded runner.

        Args:
            config: The experiment series to run.
            workers: Worker-process count (1 runs inline).
            supervisor: Restart budget/backoff for a broken worker pool.
                Defaults to a single fresh-pool retry
                (``WorkerSupervisor(max_restarts=1)``).
            span_task: Replacement for the per-shard span function on the
                plain (untraced, uncheckpointed) parallel path — the
                injection seam the chaos engine uses to kill a real
                worker (:class:`repro.chaos.proc.CrashOnceSpanTask`).
                Must be picklable and return the same result
                :func:`_run_span` would.
            dp_memo: Explicit opt-in DP memo for the *in-process*
                (``workers=1``, untraced, uncheckpointed) path — lets a
                caller observe or share cross-run DP cache traffic (the
                complexity benchmark does).  Worker processes always
                build their own span-local memo; results never depend on
                the memo either way.
        """
        if workers < 1:
            raise InvalidRequestError(f"workers must be >= 1, got {workers!r}")
        self.config = config or ExperimentConfig()
        self.workers = workers
        self._supervisor = supervisor
        self._span_task = span_task
        self._dp_memo = dp_memo

    def _pool_supervisor(self) -> "WorkerSupervisor":
        """The configured supervisor, or the one-fresh-pool-retry default."""
        if self._supervisor is None:
            from repro.chaos.proc import WorkerSupervisor

            self._supervisor = WorkerSupervisor(max_restarts=1)
        return self._supervisor

    def _map_supervised(
        self,
        task: "Callable[..., _SpanResult]",
        argument_lists: Sequence[Sequence[object]],
    ) -> "list[_SpanResult]":
        """``pool.map`` with broken-pool recovery.

        A ``SIGKILL``-ed worker surfaces as :class:`BrokenProcessPool`
        and poisons the whole executor, so recovery re-runs the *entire*
        map on a fresh pool: every shard is a pure function of its
        arguments, so the retried results are byte-identical and no
        partial state needs reconciling.
        """
        supervisor = self._pool_supervisor()
        restarts = 0
        while True:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    return list(pool.map(task, *argument_lists))
            except BrokenProcessPool as error:
                restarts += 1
                from repro.obs.telemetry import get_telemetry

                telemetry = get_telemetry()
                if telemetry.enabled:
                    telemetry.count("chaos.pool_broken", 1, layer="pool")
                if restarts > supervisor.max_restarts:
                    raise WorkerLostError(
                        f"experiment worker pool broke {restarts} times "
                        f"(a worker process died); supervisor budget "
                        f"({supervisor.max_restarts} restart(s)) is exhausted",
                        restarts=restarts - 1,
                    ) from error
                if telemetry.enabled:
                    telemetry.count("chaos.worker_restarts", 1, layer="pool")
                    if telemetry.decisions.enabled:
                        telemetry.decisions.emit(
                            "chaos.worker_recovered", layer="pool", restarts=restarts
                        )
                supervisor.pause(restarts)

    def run(
        self,
        *,
        progress: Callable[[int, int], None] | None = None,
        checkpoint: "str | Path | ExperimentCheckpoint | None" = None,
        resume: bool = False,
        trace_base: "str | Path | None" = None,
    ) -> ExperimentResult:
        """Execute the series across ``workers`` processes.

        Args:
            progress: Optional callback ``(attempted_so_far, counted)``;
                with multiple workers it fires once per merged shard
                rather than per iteration.
            checkpoint: Optional path to a resumable checkpoint journal
                (or an already-open :class:`ExperimentCheckpoint`, which
                is used as-is); completed iterations are appended (in
                the parent process) as shards finish.  Without
                ``resume``, an existing file is replaced.
            resume: Skip iterations already recorded in ``checkpoint``.
                Per-iteration derived seeds make every iteration
                independent, so only the missing indices run; the merged
                result is identical to an uninterrupted run for any
                worker count.
            trace_base: Record a telemetry trace of every shard.  Each
                worker writes :func:`trace_shard_path` (``trace.jsonl`` →
                ``trace.w0.jsonl`` …) from its own context; merge the
                shards with ``repro stats --merge`` or
                :func:`repro.obs.merge.merge_trace_files`.  For
                comparability, ``workers=1`` runs through the very same
                traced shard function (producing a single ``.w0`` shard).
                Mutually exclusive with ``checkpoint``.

        Raises:
            CheckpointMismatchError: When resuming against a checkpoint
                written for a different configuration.
            InvalidRequestError: When ``trace_base`` is combined with
                ``checkpoint``.
        """
        from repro.sim.stats import merge_results

        config = self.config
        if trace_base is not None and checkpoint is not None:
            raise InvalidRequestError(
                "trace_base cannot be combined with checkpoint: a resumed "
                "series has holes, so its shards would not form one trace"
            )
        store = _open_checkpoint(config, checkpoint, resume)
        if store is not None:
            try:
                return self._run_checkpointed(store, progress)
            finally:
                store.close()
        if self.workers == 1:
            if trace_base is not None:
                result = _run_span_traced(
                    config, 0, config.iterations, str(trace_base), 0
                )
                if progress is not None:
                    progress(result.attempted, result.counted)
                return result
            accumulator = _SeriesAccumulator()
            memo = self._dp_memo if self._dp_memo is not None else DPMemo()
            for index in range(config.iterations):
                slots, batch = generate_iteration(config, index)
                accumulator.add(run_iteration(config, index, slots, batch, memo))
                if progress is not None:
                    progress(index + 1, len(accumulator.samples))
            return accumulator.result(config, config.iterations)
        spans = _shard_spans(config.iterations, self.workers)
        if trace_base is not None:
            shards = self._map_supervised(
                _run_span_traced,
                (
                    [config] * len(spans),
                    [span[0] for span in spans],
                    [span[1] for span in spans],
                    [str(trace_base)] * len(spans),
                    list(range(len(spans))),
                ),
            )
        else:
            shards = self._map_supervised(
                self._span_task if self._span_task is not None else _run_span,
                (
                    [config] * len(spans),
                    [span[0] for span in spans],
                    [span[1] for span in spans],
                ),
            )
        if progress is not None:
            attempted = 0
            counted = 0
            for shard in shards:
                attempted += shard.attempted
                counted += shard.counted
                progress(attempted, counted)
        return merge_results(shards, config=config)

    def _run_checkpointed(
        self,
        store: "ExperimentCheckpoint",
        progress: Callable[[int, int], None] | None,
    ) -> ExperimentResult:
        """Run only the iterations missing from ``store``, then fold all.

        Outcomes are folded strictly in index order — recorded and fresh
        alike — so the result is byte-identical to an uninterrupted run
        regardless of where the previous run died or how many workers
        compute the remainder.
        """
        config = self.config
        outcomes: dict[int, IterationOutcome] = dict(store.outcomes)
        remaining = [
            index for index in range(config.iterations) if index not in outcomes
        ]
        if self.workers == 1 or len(remaining) <= 1:
            memo = DPMemo()
            for index in remaining:
                slots, batch = generate_iteration(config, index)
                outcome = run_iteration(config, index, slots, batch, memo)
                store.record(index, outcome)
                outcomes[index] = outcome
                if progress is not None:
                    progress(len(outcomes), _count_samples(outcomes))
        else:
            spans = _shard_spans(len(remaining), self.workers)
            chunks = [remaining[start:stop] for start, stop in spans]
            chunk_results = self._map_supervised(
                _run_indices, ([config] * len(chunks), chunks)
            )
            for chunk, results in zip(chunks, chunk_results):
                for index, outcome in zip(chunk, results):
                    store.record(index, outcome)
                    outcomes[index] = outcome
                if progress is not None:
                    progress(len(outcomes), _count_samples(outcomes))
        accumulator = _SeriesAccumulator()
        for index in range(config.iterations):
            accumulator.add(outcomes[index])
        return accumulator.result(config, config.iterations)
