"""Convergence diagnostics for experiment series.

EXPERIMENTS.md claims the ALP/AMP ratios are "stable from ~1 000 counted
experiments on"; this module makes that claim checkable instead of
anecdotal.  :func:`convergence_track` computes the running comparison
ratios after each counted experiment, and :func:`is_converged` tests
whether the tail of the track stays inside a tolerance band — the same
criterion a reviewer would apply to decide if a series ran long enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import InvalidRequestError
from repro.sim.experiment import ExperimentResult

__all__ = ["ConvergencePoint", "convergence_track", "is_converged", "required_samples"]


@dataclass(frozen=True)
class ConvergencePoint:
    """Running ratios after the first ``counted`` experiments."""

    counted: int
    amp_time_gain: float
    amp_cost_premium: float


def convergence_track(result: ExperimentResult) -> list[ConvergencePoint]:
    """Running comparison ratios over the counted experiments, in order."""
    track: list[ConvergencePoint] = []
    alp_time = alp_cost = amp_time = amp_cost = 0.0
    for position, sample in enumerate(result.samples, start=1):
        alp_time += sample.alp.mean_job_time
        alp_cost += sample.alp.mean_job_cost
        amp_time += sample.amp.mean_job_time
        amp_cost += sample.amp.mean_job_cost
        track.append(
            ConvergencePoint(
                counted=position,
                amp_time_gain=(alp_time - amp_time) / alp_time if alp_time else 0.0,
                amp_cost_premium=(amp_cost - alp_cost) / alp_cost if alp_cost else 0.0,
            )
        )
    return track


def is_converged(
    track: Sequence[ConvergencePoint],
    *,
    tail_fraction: float = 0.5,
    tolerance: float = 0.02,
) -> bool:
    """Whether the running ratios settled.

    The track converged when, over its last ``tail_fraction`` of points,
    both ratios stay within ``±tolerance`` (absolute) of their final
    values.

    Raises:
        InvalidRequestError: For out-of-range parameters.
    """
    if not 0 < tail_fraction <= 1:
        raise InvalidRequestError(f"tail_fraction must be in (0, 1], got {tail_fraction!r}")
    if tolerance <= 0:
        raise InvalidRequestError(f"tolerance must be positive, got {tolerance!r}")
    if not track:
        return False
    final = track[-1]
    tail_start = int(len(track) * (1 - tail_fraction))
    for point in track[tail_start:]:
        if abs(point.amp_time_gain - final.amp_time_gain) > tolerance:
            return False
        if abs(point.amp_cost_premium - final.amp_cost_premium) > tolerance:
            return False
    return True


def required_samples(
    track: Sequence[ConvergencePoint],
    *,
    tolerance: float = 0.02,
) -> int | None:
    """First count from which both ratios stay within the final band.

    Returns ``None`` when the track never settles (including the empty
    track).  This is the number EXPERIMENTS.md's stability claim rests
    on.
    """
    if tolerance <= 0:
        raise InvalidRequestError(f"tolerance must be positive, got {tolerance!r}")
    if not track:
        return None
    final = track[-1]
    settle_from: int | None = None
    for point in track:
        inside = (
            abs(point.amp_time_gain - final.amp_time_gain) <= tolerance
            and abs(point.amp_cost_premium - final.amp_cost_premium) <= tolerance
        )
        if inside:
            if settle_from is None:
                settle_from = point.counted
        else:
            settle_from = None
    return settle_from
