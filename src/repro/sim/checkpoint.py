"""Resumable experiment series: per-iteration outcome checkpoints.

A 25 000-iteration Section 5 study is hours of compute; a crash at
iteration 24 000 should cost one iteration, not the run.  This module
records every *completed* iteration's :class:`~repro.sim.experiment.IterationOutcome`
in a checksummed journal (:mod:`repro.core.journal`), so a re-run with
``--resume`` replays the finished iterations from disk and computes only
the missing ones.

Two properties make resumed runs trustworthy:

* **Config fingerprinting** — the journal header carries a hash of the
  full :class:`~repro.sim.experiment.ExperimentConfig`; resuming against
  a checkpoint written for different parameters raises
  :class:`~repro.core.errors.CheckpointMismatchError` instead of
  silently merging incompatible series.
* **Bit-exact replay** — outcomes are stored as JSON, whose ``float``
  round trip is exact in Python, so the merged
  :class:`~repro.sim.experiment.ExperimentResult` of a killed-and-resumed
  run equals an uninterrupted run (asserted in
  ``tests/test_experiment_resume.py`` and the CI crash-resume smoke).

A torn trailing record — the residue of killing the process mid-append —
is skipped with a warning; that iteration is simply recomputed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.core.errors import CheckpointMismatchError
from repro.core.fsio import FileSystem
from repro.core.journal import JournalWriter, journal_header, read_journal
from repro.sim.experiment import (
    AlgorithmSample,
    ExperimentConfig,
    IterationComparison,
    IterationOutcome,
)

__all__ = [
    "ExperimentCheckpoint",
    "config_fingerprint",
    "decode_outcome",
    "encode_outcome",
]

#: Journal record kind used for completed iterations.
OUTCOME_KIND = "outcome"


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable hash of every field that shapes an experiment series.

    Enum members are replaced by their values and nested dataclasses
    flattened, so the fingerprint depends only on the configuration's
    *content* — equal configs in different processes hash identically.
    """
    payload = asdict(config)
    payload["objective"] = config.objective.value
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def encode_outcome(outcome: IterationOutcome) -> dict[str, Any]:
    """JSON-ready encoding of one iteration outcome."""
    data: dict[str, Any] = {
        "slot_count": outcome.slot_count,
        "job_count": outcome.job_count,
        "dropped_uncovered": outcome.dropped_uncovered,
        "dropped_infeasible": outcome.dropped_infeasible,
    }
    if outcome.comparison is not None:
        comparison = outcome.comparison
        data["comparison"] = {
            "index": comparison.index,
            "slot_count": comparison.slot_count,
            "job_count": comparison.job_count,
            "alp": asdict(comparison.alp),
            "amp": asdict(comparison.amp),
        }
    return data


def decode_outcome(data: dict[str, Any]) -> IterationOutcome:
    """Rebuild an :class:`IterationOutcome` from :func:`encode_outcome`."""
    comparison = None
    payload = data.get("comparison")
    if payload is not None:
        comparison = IterationComparison(
            index=int(payload["index"]),
            slot_count=int(payload["slot_count"]),
            job_count=int(payload["job_count"]),
            alp=AlgorithmSample(**payload["alp"]),
            amp=AlgorithmSample(**payload["amp"]),
        )
    return IterationOutcome(
        slot_count=int(data["slot_count"]),
        job_count=int(data["job_count"]),
        comparison=comparison,
        dropped_uncovered=bool(data["dropped_uncovered"]),
        dropped_infeasible=bool(data["dropped_infeasible"]),
    )


class ExperimentCheckpoint:
    """Journal of completed experiment iterations, keyed by index.

    Args:
        path: Checkpoint file (checksummed JSONL).
        config: The series configuration; fingerprinted into the header.
        resume: Load previously completed iterations into
            :attr:`outcomes` instead of starting fresh.  A fresh run
            (``resume=False``) replaces any existing file.
        fsync: Force every append to stable storage.  The default
            ``False`` still flushes per record — enough to survive a
            process kill, which is the failure mode experiments care
            about — without paying an fsync per iteration.
        fs: Filesystem seam the underlying journal writes through
            (defaults to the real filesystem; used by the chaos engine).

    Raises:
        CheckpointMismatchError: When resuming against a checkpoint
            written for a different configuration.
    """

    def __init__(
        self,
        path: str | Path,
        config: ExperimentConfig,
        *,
        resume: bool = False,
        fsync: bool = False,
        fs: FileSystem | None = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = config_fingerprint(config)
        #: Completed iterations loaded on resume (index → outcome).
        self.outcomes: dict[int, IterationOutcome] = {}
        if resume:
            records = read_journal(self.path)
            header = journal_header(records)
            if header is not None:
                stored = header.get("fingerprint")
                if stored != self.fingerprint:
                    raise CheckpointMismatchError(
                        f"checkpoint {str(self.path)!r} was written for a "
                        f"different experiment configuration (fingerprint "
                        f"{stored!r}, expected {self.fingerprint!r}); "
                        "refusing to merge incompatible series"
                    )
            for record in records:
                if record.kind == OUTCOME_KIND:
                    self.outcomes[int(record.data["index"])] = decode_outcome(
                        record.data["outcome"]
                    )
        elif self.path.exists():
            self.path.unlink()
        self._writer = JournalWriter(
            self.path, fsync=fsync, header={"fingerprint": self.fingerprint}, fs=fs
        )

    def __contains__(self, index: int) -> bool:
        return index in self.outcomes

    def get(self, index: int) -> IterationOutcome | None:
        """The recorded outcome of iteration ``index``, if completed."""
        return self.outcomes.get(index)

    @property
    def completed(self) -> int:
        """Number of iterations already on disk."""
        return len(self.outcomes)

    def record(self, index: int, outcome: IterationOutcome) -> None:
        """Durably append one completed iteration."""
        self._writer.append(
            OUTCOME_KIND, {"index": index, "outcome": encode_outcome(outcome)}
        )
        self.outcomes[index] = outcome

    def close(self) -> None:
        """Flush and close the underlying journal (idempotent)."""
        self._writer.close()

    def __enter__(self) -> "ExperimentCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
