"""Simulation harness: the paper's Section 5 study, reproducible.

* :mod:`repro.sim.generators` — SlotGenerator / JobGenerator with the
  published parameter ranges;
* :mod:`repro.sim.experiment` — the ALP-vs-AMP experiment protocol
  (same inputs, both pipelines, count only mutual successes);
* :mod:`repro.sim.checkpoint` — resumable series: per-iteration outcome
  journals with config fingerprints;
* :mod:`repro.sim.stats` — the reported aggregates and ratios;
* :mod:`repro.sim.figures` — regeneration of Figs. 4, 5, 6 and the
  in-text statistics, with the paper's values as references;
* :mod:`repro.sim.ascii_plot` — dependency-free chart rendering.
"""

from repro.sim.ascii_plot import bar_chart, line_chart, table
from repro.sim.checkpoint import (
    ExperimentCheckpoint,
    config_fingerprint,
    decode_outcome,
    encode_outcome,
)
from repro.sim.calibration import (
    PAPER_TARGET,
    CalibrationResult,
    CalibrationTarget,
    calibrate,
)
from repro.sim.convergence import (
    ConvergencePoint,
    convergence_track,
    is_converged,
    required_samples,
)
from repro.sim.export import (
    figure_to_dict,
    result_to_rows,
    samples_csv_text,
    summary_to_dict,
    write_json,
    write_samples_csv,
)
from repro.sim.sensitivity import (
    SWEEPABLE_PARAMETERS,
    SensitivityPoint,
    render_sweep,
    sweep,
)
from repro.sim.experiment import (
    AlgorithmSample,
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    IterationComparison,
    IterationOutcome,
    ParallelRunner,
    derive_iteration_seed,
    generate_iteration,
    run_iteration,
    run_pipeline,
)
from repro.sim.figures import (
    PAPER_REFERENCE,
    FigureData,
    figure4,
    figure5,
    figure6,
    render_figure4,
    render_figure5,
    render_figure6,
    summary_table,
)
from repro.sim.generators import (
    JobGenerator,
    JobGeneratorConfig,
    SlotGenerator,
    SlotGeneratorConfig,
)
from repro.sim.stats import (
    AlgorithmStats,
    ComparisonRatios,
    ExperimentSummary,
    merge_results,
    summarize,
)

__all__ = [
    "SlotGenerator",
    "SlotGeneratorConfig",
    "JobGenerator",
    "JobGeneratorConfig",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentResult",
    "IterationComparison",
    "IterationOutcome",
    "AlgorithmSample",
    "ParallelRunner",
    "ExperimentCheckpoint",
    "config_fingerprint",
    "encode_outcome",
    "decode_outcome",
    "derive_iteration_seed",
    "generate_iteration",
    "run_iteration",
    "run_pipeline",
    "AlgorithmStats",
    "ComparisonRatios",
    "ExperimentSummary",
    "merge_results",
    "summarize",
    "FigureData",
    "PAPER_REFERENCE",
    "figure4",
    "figure5",
    "figure6",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "summary_table",
    "bar_chart",
    "line_chart",
    "table",
    "result_to_rows",
    "samples_csv_text",
    "write_samples_csv",
    "summary_to_dict",
    "figure_to_dict",
    "write_json",
    "SWEEPABLE_PARAMETERS",
    "SensitivityPoint",
    "sweep",
    "render_sweep",
    "PAPER_TARGET",
    "CalibrationTarget",
    "CalibrationResult",
    "calibrate",
    "ConvergencePoint",
    "convergence_track",
    "is_converged",
    "required_samples",
]
