"""Parameter-sensitivity sweeps over the Section 5 generators.

The paper fixes one generator parameterization; a reproduction should
also show *which* parameters the headline ratios depend on.  This
module sweeps one generator parameter at a time — environment
heterogeneity, release synchronization, slot supply, and the price-cap
free parameter — re-running the experiment protocol at each value and
collecting the ALP/AMP comparison.  The accompanying benchmark
(``benchmarks/bench_sensitivity.py``) prints the sweep tables and
asserts the qualitative trends:

* with a *homogeneous* environment (performance ceiling → 1) AMP's time
  advantage disappears — there are no fast nodes to buy;
* with a generous price cap ALP approaches AMP — the per-slot cap stops
  binding.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.criteria import Criterion
from repro.core.errors import InvalidRequestError
from repro.sim.ascii_plot import table
from repro.sim.experiment import ExperimentConfig, ExperimentRunner
from repro.sim.generators import JobGeneratorConfig, SlotGeneratorConfig
from repro.sim.stats import ExperimentSummary, summarize

__all__ = ["SWEEPABLE_PARAMETERS", "SensitivityPoint", "sweep", "render_sweep"]


def _with_performance_ceiling(value: float) -> ExperimentConfig:
    if value < 1.0:
        raise InvalidRequestError(f"performance ceiling must be >= 1, got {value!r}")
    return ExperimentConfig(
        slot_config=SlotGeneratorConfig(performance_range=(1.0, value)),
        # Jobs may not demand more than the environment can offer.
        job_config=JobGeneratorConfig(
            min_performance_range=(1.0, min(2.0, value)),
        ),
    )


def _with_same_start_probability(value: float) -> ExperimentConfig:
    return ExperimentConfig(
        slot_config=SlotGeneratorConfig(same_start_probability=value)
    )


def _with_slot_count(value: float) -> ExperimentConfig:
    count = int(value)
    if count < 1:
        raise InvalidRequestError(f"slot count must be >= 1, got {value!r}")
    return ExperimentConfig(slot_config=SlotGeneratorConfig(slot_count_range=(count, count)))


def _with_price_cap_ceiling(value: float) -> ExperimentConfig:
    if value <= 0:
        raise InvalidRequestError(f"price-cap ceiling must be positive, got {value!r}")
    return ExperimentConfig(
        job_config=JobGeneratorConfig(price_cap_factor_range=(0.9, value))
    )


#: Supported sweep axes: name → config builder for one value.
SWEEPABLE_PARAMETERS: dict[str, Callable[[float], ExperimentConfig]] = {
    "performance_ceiling": _with_performance_ceiling,
    "same_start_probability": _with_same_start_probability,
    "slot_count": _with_slot_count,
    "price_cap_ceiling": _with_price_cap_ceiling,
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep point: the parameter value and the resulting summary."""

    parameter: str
    value: float
    summary: ExperimentSummary


def sweep(
    parameter: str,
    values: Sequence[float],
    *,
    objective: Criterion = Criterion.TIME,
    iterations: int = 150,
    seed: int = 20110368,
) -> list[SensitivityPoint]:
    """Run the experiment protocol at each parameter value.

    Args:
        parameter: One of :data:`SWEEPABLE_PARAMETERS`.
        values: Parameter values to visit, in order.
        objective: Phase-2 criterion (TIME reproduces the Fig. 4 setup).
        iterations: Attempted iterations per point.
        seed: Master seed, shared by all points so only the parameter
            varies.

    Raises:
        InvalidRequestError: For an unknown parameter name.
    """
    try:
        builder = SWEEPABLE_PARAMETERS[parameter]
    except KeyError:
        raise InvalidRequestError(
            f"unknown sweep parameter {parameter!r}; pick one of "
            f"{sorted(SWEEPABLE_PARAMETERS)}"
        ) from None
    points = []
    for value in values:
        template = builder(value)
        config = dataclasses.replace(
            template, objective=objective, iterations=iterations, seed=seed
        )
        result = ExperimentRunner(config).run()
        points.append(
            SensitivityPoint(parameter=parameter, value=value, summary=summarize(result))
        )
    return points


def render_sweep(points: Sequence[SensitivityPoint]) -> str:
    """Text table of one sweep: ratios per parameter value."""
    if not points:
        return "(empty sweep)"
    rows = []
    for point in points:
        summary = point.summary
        ratios = summary.ratios()
        rows.append(
            [
                f"{point.value:g}",
                str(summary.counted),
                f"{summary.alp.mean_job_time:.1f}",
                f"{summary.amp.mean_job_time:.1f}",
                f"{100 * ratios.amp_time_gain:+.0f}%",
                f"{100 * ratios.amp_cost_premium:+.0f}%",
                f"x{ratios.alternatives_factor:.1f}",
            ]
        )
    return table(
        rows,
        header=[
            points[0].parameter,
            "counted",
            "ALP time",
            "AMP time",
            "time gain",
            "cost premium",
            "alts factor",
        ],
    )
