"""ASCII Gantt charts of slot lists and scheduled windows.

Renders the paper's Fig. 2 / Fig. 3 style resource-line charts in plain
text: one row per resource, time flowing left to right, with distinct
glyphs for vacant slots, owner-local busy time, and scheduled windows.
Used by ``examples/paper_example.py`` and the CLI's ``example`` command.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.errors import InvalidRequestError
from repro.core.resource import Resource
from repro.core.slot import SlotList
from repro.core.window import Window

__all__ = ["GanttChart"]

_VACANT = "."
_WINDOW_GLYPHS = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


class GanttChart:
    """Builds a text chart over a fixed horizon.

    Args:
        horizon: ``(start, end)`` of the rendered time span.
        width: Number of character columns the span maps onto.
    """

    def __init__(self, horizon: tuple[float, float], *, width: int = 78) -> None:
        start, end = horizon
        if end <= start:
            raise InvalidRequestError(f"horizon must be non-empty, got {horizon!r}")
        if width < 10:
            raise InvalidRequestError(f"width must be >= 10, got {width!r}")
        self.start = start
        self.end = end
        self.width = width
        self._rows: dict[int, tuple[str, list[str]]] = {}
        self._legend: list[str] = []

    # ------------------------------------------------------------------ #
    # Painting                                                           #
    # ------------------------------------------------------------------ #

    def _row(self, resource: Resource) -> list[str]:
        if resource.uid not in self._rows:
            label = f"{resource.name} (C={resource.price:g})"
            self._rows[resource.uid] = (label, [" "] * self.width)
        return self._rows[resource.uid][1]

    def _columns(self, start: float, end: float) -> range:
        span = self.end - self.start
        first = int((max(start, self.start) - self.start) / span * self.width)
        last = int((min(end, self.end) - self.start) / span * self.width)
        first = max(0, min(first, self.width - 1))
        last = max(first + 1, min(last, self.width))
        return range(first, last)

    def paint_slots(self, slots: SlotList | Iterable) -> None:
        """Paint vacant slots as ``.`` runs."""
        for slot in slots:
            row = self._row(slot.resource)
            for column in self._columns(slot.start, slot.end):
                if row[column] == " ":
                    row[column] = _VACANT

    def paint_windows(
        self, windows: Mapping[str, Window] | Sequence[tuple[str, Window]]
    ) -> None:
        """Paint labelled windows, one glyph per window (``1``, ``2``, …)."""
        items = windows.items() if isinstance(windows, Mapping) else windows
        for index, (label, window) in enumerate(items):
            glyph = _WINDOW_GLYPHS[index % len(_WINDOW_GLYPHS)]
            self._legend.append(
                f"{glyph} = {label}: [{window.start:g}, {window.end:g}) on "
                + ",".join(resource.name for resource in window.resources())
                + f", cost {window.cost:g}"
            )
            for allocation in window.allocations:
                row = self._row(allocation.resource)
                for column in self._columns(allocation.start, allocation.end):
                    row[column] = glyph

    # ------------------------------------------------------------------ #
    # Rendering                                                          #
    # ------------------------------------------------------------------ #

    def render(self, *, title: str = "") -> str:
        """Assemble the chart: axis, rows sorted by resource name, legend."""
        lines = [title] if title else []
        if not self._rows:
            lines.append("(no resources painted)")
            return "\n".join(lines)
        label_width = max(len(label) for label, _ in self._rows.values())
        rows = sorted(self._rows.values(), key=lambda pair: pair[0])
        for label, cells in rows:
            lines.append(f"{label:<{label_width}} |{''.join(cells)}|")
        axis_values = f"{self.start:g}"
        axis_pad = self.width - len(axis_values) - len(f"{self.end:g}")
        lines.append(
            " " * (label_width + 2) + axis_values + " " * max(1, axis_pad) + f"{self.end:g}"
        )
        if self._legend:
            lines.append("")
            lines.extend(self._legend)
        lines.append(f"legend: '{_VACANT}' vacant slot, blank = busy/unpublished")
        return "\n".join(lines)
