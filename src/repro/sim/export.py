"""Result export: CSV and JSON serialization of experiment outputs.

Reproduction results should be consumable outside Python — for external
plotting, archival, or diffing between runs.  This module serializes
experiment series, summaries, and figure panels into plain structures:

* :func:`result_to_rows` / :func:`write_samples_csv` — one CSV row per
  counted experiment (the raw material of Fig. 5);
* :func:`summary_to_dict` — the Section 5 aggregates as JSON-ready data;
* :func:`figure_to_dict` — one figure panel with measured and paper
  reference values side by side.

Only standard-library machinery is used (``csv``, ``json``).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from repro.sim.experiment import ExperimentResult
from repro.sim.figures import FigureData
from repro.sim.stats import ExperimentSummary

__all__ = [
    "result_to_rows",
    "write_samples_csv",
    "samples_csv_text",
    "summary_to_dict",
    "figure_to_dict",
    "write_json",
]

#: Column order of the per-experiment CSV.
CSV_FIELDS = [
    "index",
    "slot_count",
    "job_count",
    "alp_mean_job_time",
    "alp_mean_job_cost",
    "alp_total_alternatives",
    "amp_mean_job_time",
    "amp_mean_job_cost",
    "amp_total_alternatives",
]


def result_to_rows(result: ExperimentResult) -> list[dict[str, Any]]:
    """One dictionary per counted experiment, in CSV column order."""
    rows = []
    for sample in result.samples:
        rows.append(
            {
                "index": sample.index,
                "slot_count": sample.slot_count,
                "job_count": sample.job_count,
                "alp_mean_job_time": sample.alp.mean_job_time,
                "alp_mean_job_cost": sample.alp.mean_job_cost,
                "alp_total_alternatives": sample.alp.total_alternatives,
                "amp_mean_job_time": sample.amp.mean_job_time,
                "amp_mean_job_cost": sample.amp.mean_job_cost,
                "amp_total_alternatives": sample.amp.total_alternatives,
            }
        )
    return rows


def samples_csv_text(result: ExperimentResult) -> str:
    """The per-experiment CSV as a string."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS, lineterminator="\n")
    writer.writeheader()
    writer.writerows(result_to_rows(result))
    return buffer.getvalue()


def write_samples_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write the per-experiment CSV to ``path``; returns the path."""
    path = Path(path)
    path.write_text(samples_csv_text(result), encoding="utf-8")
    return path


def summary_to_dict(summary: ExperimentSummary) -> dict[str, Any]:
    """The Section 5 aggregates as a JSON-ready dictionary."""
    ratios = summary.ratios()
    return {
        "objective": summary.objective.value,
        "attempted": summary.attempted,
        "counted": summary.counted,
        "dropped_uncovered": summary.dropped_uncovered,
        "dropped_infeasible": summary.dropped_infeasible,
        "alp": {
            "mean_job_time": summary.alp.mean_job_time,
            "mean_job_cost": summary.alp.mean_job_cost,
            "total_alternatives": summary.alp.total_alternatives,
            "mean_alternatives_per_job": summary.alp.mean_alternatives_per_job,
        },
        "amp": {
            "mean_job_time": summary.amp.mean_job_time,
            "mean_job_cost": summary.amp.mean_job_cost,
            "total_alternatives": summary.amp.total_alternatives,
            "mean_alternatives_per_job": summary.amp.mean_alternatives_per_job,
        },
        "ratios": {
            "amp_time_gain": ratios.amp_time_gain,
            "amp_cost_premium": ratios.amp_cost_premium,
            "alternatives_factor": ratios.alternatives_factor,
        },
        "mean_slots_per_experiment": summary.mean_slots_per_experiment,
        "mean_jobs_per_counted_experiment": summary.mean_jobs_per_counted_experiment,
    }


def figure_to_dict(figure: FigureData) -> dict[str, Any]:
    """One figure panel (measured + paper reference) as JSON-ready data."""
    payload: dict[str, Any] = {
        "name": figure.name,
        "measured": dict(figure.measured),
        "paper_reference": dict(figure.reference),
    }
    if figure.series is not None:
        payload["series"] = {label: list(points) for label, points in figure.series.items()}
    return payload


def write_json(data: dict[str, Any], path: str | Path) -> Path:
    """Write JSON-ready data to ``path`` (pretty-printed, sorted keys)."""
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
