"""Aggregation of experiment series into the paper's reported statistics.

Section 5 reports, per experiment series: average job execution time and
cost for each algorithm, total and per-job alternative counts, the
average number of slots processed, and the average batch size of the
*counted* iterations.  :func:`summarize` computes all of them from an
:class:`~repro.sim.experiment.ExperimentResult`; the comparison ratios
(AMP's time gain, AMP's cost premium) come out of
:meth:`ExperimentSummary.ratios`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.criteria import Criterion
from repro.core.errors import InvalidRequestError
from repro.sim.experiment import ExperimentConfig, ExperimentResult, IterationComparison

__all__ = [
    "AlgorithmStats",
    "ComparisonRatios",
    "ExperimentSummary",
    "merge_results",
    "summarize",
    "mean",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (explicit, not NaN)."""
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class AlgorithmStats:
    """Per-algorithm aggregates over the counted experiments."""

    mean_job_time: float
    mean_job_cost: float
    total_alternatives: int
    mean_alternatives_per_job: float

    @classmethod
    def over(cls, samples: Sequence[IterationComparison], *, algorithm: str) -> "AlgorithmStats":
        picked = [getattr(sample, algorithm) for sample in samples]
        total_jobs = sum(sample.job_count for sample in samples)
        total_alternatives = sum(p.total_alternatives for p in picked)
        return cls(
            mean_job_time=mean([p.mean_job_time for p in picked]),
            mean_job_cost=mean([p.mean_job_cost for p in picked]),
            total_alternatives=total_alternatives,
            mean_alternatives_per_job=(
                total_alternatives / total_jobs if total_jobs else 0.0
            ),
        )


@dataclass(frozen=True)
class ComparisonRatios:
    """The headline ALP-vs-AMP ratios of Sections 5-6.

    Attributes:
        amp_time_gain: Relative time advantage of AMP,
            ``(ALP time − AMP time) / ALP time`` (paper: ~0.35 in
            time minimization, ~0.15 in cost minimization).
        amp_cost_premium: Relative extra cost of AMP,
            ``(AMP cost − ALP cost) / ALP cost`` (paper: ~0.15 in time
            minimization, ~0.09 in cost minimization).
        alternatives_factor: How many times more alternatives AMP finds
            per job (paper: ~34.28 / 7.39 ≈ 4.6).
    """

    amp_time_gain: float
    amp_cost_premium: float
    alternatives_factor: float


@dataclass(frozen=True)
class ExperimentSummary:
    """All Section 5 statistics of one experiment series."""

    objective: Criterion
    attempted: int
    counted: int
    dropped_uncovered: int
    dropped_infeasible: int
    alp: AlgorithmStats
    amp: AlgorithmStats
    mean_slots_per_experiment: float
    mean_slots_per_counted_experiment: float
    mean_jobs_per_counted_experiment: float

    def ratios(self) -> ComparisonRatios:
        """The ALP-vs-AMP comparison ratios (0.0 where undefined)."""
        time_gain = (
            (self.alp.mean_job_time - self.amp.mean_job_time) / self.alp.mean_job_time
            if self.alp.mean_job_time
            else 0.0
        )
        cost_premium = (
            (self.amp.mean_job_cost - self.alp.mean_job_cost) / self.alp.mean_job_cost
            if self.alp.mean_job_cost
            else 0.0
        )
        factor = (
            self.amp.mean_alternatives_per_job / self.alp.mean_alternatives_per_job
            if self.alp.mean_alternatives_per_job
            else 0.0
        )
        return ComparisonRatios(
            amp_time_gain=time_gain,
            amp_cost_premium=cost_premium,
            alternatives_factor=factor,
        )

    def as_rows(self) -> list[tuple[str, str, str]]:
        """Tabular view ``(metric, ALP, AMP)`` for reports and the CLI."""
        ratios = self.ratios()
        return [
            ("average job execution time", f"{self.alp.mean_job_time:.2f}", f"{self.amp.mean_job_time:.2f}"),
            ("average job execution cost", f"{self.alp.mean_job_cost:.2f}", f"{self.amp.mean_job_cost:.2f}"),
            ("total alternatives found", str(self.alp.total_alternatives), str(self.amp.total_alternatives)),
            (
                "alternatives per job",
                f"{self.alp.mean_alternatives_per_job:.2f}",
                f"{self.amp.mean_alternatives_per_job:.2f}",
            ),
            ("AMP time gain", "-", f"{100 * ratios.amp_time_gain:.1f}%"),
            ("AMP cost premium", "-", f"{100 * ratios.amp_cost_premium:.1f}%"),
        ]


def merge_results(
    shards: Sequence[ExperimentResult],
    *,
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    """Merge shard results of one sharded series into a single result.

    Shards must be given in iteration order (the
    :class:`~repro.sim.experiment.ParallelRunner` submits and collects
    them that way); samples are concatenated and the counters summed, so
    the merged result is identical to running the whole series in one
    process.

    Args:
        shards: Per-shard results, in series order.
        config: Config recorded on the merged result; defaults to the
            first shard's config.
    """
    if not shards:
        raise InvalidRequestError("cannot merge an empty shard sequence")
    samples: list[IterationComparison] = []
    for shard in shards:
        samples.extend(shard.samples)
    return ExperimentResult(
        config=config if config is not None else shards[0].config,
        samples=samples,
        attempted=sum(shard.attempted for shard in shards),
        dropped_uncovered=sum(shard.dropped_uncovered for shard in shards),
        dropped_infeasible=sum(shard.dropped_infeasible for shard in shards),
        total_slots_processed=sum(shard.total_slots_processed for shard in shards),
        total_jobs_attempted=sum(shard.total_jobs_attempted for shard in shards),
    )


def summarize(result: ExperimentResult) -> ExperimentSummary:
    """Aggregate an experiment series into the paper's statistics."""
    samples = result.samples
    return ExperimentSummary(
        objective=result.config.objective,
        attempted=result.attempted,
        counted=result.counted,
        dropped_uncovered=result.dropped_uncovered,
        dropped_infeasible=result.dropped_infeasible,
        alp=AlgorithmStats.over(samples, algorithm="alp"),
        amp=AlgorithmStats.over(samples, algorithm="amp"),
        mean_slots_per_experiment=(
            result.total_slots_processed / result.attempted if result.attempted else 0.0
        ),
        mean_slots_per_counted_experiment=mean(
            [float(sample.slot_count) for sample in samples]
        ),
        mean_jobs_per_counted_experiment=mean(
            [float(sample.job_count) for sample in samples]
        ),
    )
